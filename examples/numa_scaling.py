#!/usr/bin/env python3
"""Beyond the paper: vProbe on larger NUMA machines.

The paper evaluates on two sockets; nothing in vProbe's design is
two-node specific.  This study runs Credit vs vProbe on synthetic
2-, 3- and 4-node hosts (two cores per node, one LLC each) under an
LLC-thrashing workload and reports how the gap evolves: more nodes
mean more wrong places a NUMA-blind balancer can put a VCPU, so the
remote-access gap widens with scale.

Run with::

    python examples/numa_scaling.py
"""

from repro.core import vprobe
from repro.hardware import symmetric_topology
from repro.metrics import format_table, summarize
from repro.workloads import synthetic_profile
from repro.xen import CreditScheduler, Domain, Machine, SimConfig
from repro.xen.memalloc import place_split

GIB = 1024**3


def run_machine(num_nodes: int, policy) -> tuple[float, float]:
    """Runtime and remote ratio of a thrashing workload on N nodes."""
    topo = symmetric_topology(num_nodes, 2)
    machine = Machine(
        topo, policy, SimConfig(seed=7, sample_period_s=0.5, max_time_s=60.0)
    )
    num_vcpus = 4 * num_nodes  # 2x oversubscription
    profile = synthetic_profile("llc-t", total_instructions=8e8)
    machine.add_domain(
        Domain.homogeneous(
            "vm", num_nodes * GIB, place_split(num_vcpus, num_nodes),
            profile, num_vcpus,
        )
    )
    machine.run()
    stats = summarize(machine).domain("vm")
    return stats.mean_finish_time_s or float("nan"), stats.remote_ratio


def main() -> None:
    rows = []
    for nodes in (2, 3, 4):
        credit_t, credit_r = run_machine(nodes, CreditScheduler())
        vprobe_t, vprobe_r = run_machine(nodes, vprobe())
        rows.append(
            (
                nodes,
                credit_t,
                vprobe_t,
                (1 - vprobe_t / credit_t) * 100.0,
                credit_r * 100.0,
                vprobe_r * 100.0,
            )
        )
        print(f"  {nodes} nodes done")

    print()
    print(
        format_table(
            [
                "nodes",
                "credit (s)",
                "vprobe (s)",
                "improvement (%)",
                "credit remote (%)",
                "vprobe remote (%)",
            ],
            rows,
        )
    )
    print(
        "\nAlgorithm 2's node order generalises to distance-then-id and"
        "\nAlgorithm 1's MIN-NODE fill keeps the spread even on any node"
        "\ncount — the gap typically widens as nodes are added."
    )


if __name__ == "__main__":
    main()
