#!/usr/bin/env python3
"""Trace study: watch the schedulers work, window by window.

Runs the same soplex scenario under Credit and vProbe and prints each
0.5 s window's remote-access ratio, cross-node migration rate and
memory-intensive VCPU imbalance.  Under Credit the remote ratio drifts
and stays high; under vProbe the first sampling period (t = 1 s) snaps
VCPUs to their affinity nodes and the ratio collapses — the paper's
mechanism made visible in time.

Run with::

    python examples/scheduler_trace.py [app]
"""

import sys

from repro.experiments import ScenarioConfig, spec_scenario
from repro.experiments.scenarios import make_scheduler
from repro.metrics import format_table, trace_run


def trace_for(app: str, scheduler: str):
    cfg = ScenarioConfig(work_scale=0.2, seed=1)
    machine = spec_scenario(app, make_scheduler(scheduler), cfg)
    return trace_run(machine, interval_s=0.5)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "soplex"

    for scheduler in ("credit", "vprobe"):
        print(f"\n--- {scheduler} on {app!r} ---")
        trace = trace_for(app, scheduler)
        ratios = trace.window_remote_ratio("vm1")
        rates = trace.window_migration_rate()
        imbalance = trace.node_imbalance()
        rows = [
            (
                f"{trace.times()[i]:.1f}-{trace.times()[i + 1]:.1f}",
                "idle" if ratios[i] is None else ratios[i] * 100.0,
                "n/a" if rates[i] is None else rates[i],
                imbalance[i] if i < len(imbalance) else 0,
            )
            for i in range(len(ratios))
        ]
        print(
            format_table(
                [
                    "window (s)",
                    "remote (%)",
                    "cross-migr/s",
                    "intensive imbalance",
                ],
                rows,
                float_fmt="{:.1f}",
            )
        )

    print(
        "\nReading the traces: vProbe's first sampling period fires at"
        "\nt=1.0s — from the next window on, its remote ratio should sit"
        "\nfar below Credit's, and its memory-intensive VCPUs should stay"
        "\nbalanced across the two sockets (imbalance near 0)."
    )


if __name__ == "__main__":
    main()
