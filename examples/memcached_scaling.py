#!/usr/bin/env python3
"""Memcached scaling study: where each mechanism earns its keep.

Sweeps memslap concurrency as in the paper's Fig. 6 and prints the
normalised runtime of vProbe and its two ablations.  At low concurrency
the servers block often and wake-time placement (the LB mechanism)
dominates; as concurrency grows the servers' cache footprint explodes
and balancing LLC pressure across sockets (the partitioning mechanism)
carries more of the win — the interplay §V-B3 discusses.

Run with::

    python examples/memcached_scaling.py [low] [high] [steps]
"""

import sys

import numpy as np

from repro.experiments import ScenarioConfig, compare, memcached_scenario
from repro.metrics import format_table
from repro.workloads import memcached_profile


def main() -> None:
    low = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    high = int(sys.argv[2]) if len(sys.argv) > 2 else 112
    steps = int(sys.argv[3]) if len(sys.argv) > 3 else 4
    concurrencies = [int(c) for c in np.linspace(low, high, steps)]

    rows = []
    for conc in concurrencies:
        cfg = ScenarioConfig(work_scale=0.08, seed=3)
        results = compare(
            lambda p, c, cc=conc: memcached_scenario(cc, p, c),
            cfg,
            ("credit", "vprobe", "vcpu-p", "lb"),
        )
        base = results["credit"].domain("vm1").mean_finish_time_s
        profile = memcached_profile(conc)
        rows.append(
            (
                conc,
                profile.working_set_bytes / 1024**2,
                profile.blocking.duty_cycle,
                results["vprobe"].domain("vm1").mean_finish_time_s / base,
                results["vcpu-p"].domain("vm1").mean_finish_time_s / base,
                results["lb"].domain("vm1").mean_finish_time_s / base,
            )
        )
        print(f"  c={conc} done")

    print()
    print(
        format_table(
            [
                "concurrency",
                "server WS (MiB)",
                "duty cycle",
                "vprobe",
                "vcpu-p",
                "lb",
            ],
            rows,
        )
    )
    print(
        "\nColumns 4-6 are runtimes normalised to Credit (lower is"
        " better).\nAs the working set crosses the 12 MiB socket LLC,"
        " vProbe's gains\ngrow — the paper's best case is 31.3% at 80"
        " concurrent calls."
    )


if __name__ == "__main__":
    main()
