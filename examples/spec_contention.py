#!/usr/bin/env python3
"""SPEC CPU2006 contention study: all five schedulers on one workload.

Reproduces one column of the paper's Fig. 4 in full — normalised
execution time, total and remote memory accesses for Credit, vProbe,
VCPU-P, LB and BRM — and explains each scheduler's result with the
secondary statistics the paper discusses (§V-B5): migration counts,
LLC miss rates and scheduler overhead.

Run with::

    python examples/spec_contention.py [app] [seed]
"""

import sys

from repro.experiments import ScenarioConfig, compare, spec_scenario
from repro.metrics import format_table


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 1

    cfg = ScenarioConfig(work_scale=0.2, seed=seed)
    print(f"Comparing all five schedulers on {app!r} (seed={seed})...")
    results = compare(lambda p, c: spec_scenario(app, p, c), cfg)

    credit = results["credit"].domain("vm1")
    rows = []
    for name, summary in results.items():
        vm1 = summary.domain("vm1")
        machine = summary.machine_stats
        rows.append(
            (
                name,
                vm1.mean_finish_time_s / credit.mean_finish_time_s,
                vm1.total_accesses / credit.total_accesses,
                (
                    vm1.remote_accesses / credit.remote_accesses
                    if credit.remote_accesses
                    else float("nan")
                ),
                vm1.llc_miss_rate * 100.0,
                machine.migrations,
                machine.cross_node_migrations,
                machine.overhead_fraction * 100.0,
            )
        )

    print()
    print(
        format_table(
            [
                "scheduler",
                "norm time",
                "norm total",
                "norm remote",
                "miss rate (%)",
                "migrations",
                "cross-node",
                "overhead (%)",
            ],
            rows,
        )
    )

    print(
        "\nReading the table (cf. §V-B5):\n"
        " * vprobe should have the lowest normalised time AND the lowest\n"
        "   remote accesses: partitioning balances LLC pressure while the\n"
        "   NUMA-aware balancer keeps VCPUs near their memory;\n"
        " * vcpu-p (partitioning only) loses part of the benefit between\n"
        "   sampling periods because the stock balancer keeps scattering\n"
        "   memory-intensive VCPUs across nodes;\n"
        " * lb (NUMA-aware balancing only) keeps locality but can let the\n"
        "   LLC-heavy VCPUs pile up, sometimes raising total accesses;\n"
        " * brm reduces both access counts but pays a large overhead for\n"
        "   its system-wide lock — watch its overhead column."
    )


if __name__ == "__main__":
    main()
