#!/usr/bin/env python3
"""Kill-and-resume smoke test: SIGTERM a report mid-grid, resume it.

Exercises the whole crash-safe execution contract end to end:

1. run ``python -m repro report <dir> --fast`` in a subprocess;
2. SIGTERM it once the grid journal shows completed cells — the run
   must exit with code 75 (``EX_TEMPFAIL``, "interrupted but
   resumable");
3. relaunch with ``--resume`` — the run must exit 0, serving every
   journaled cell without recomputation;
4. run the identical report uninterrupted into a second directory and
   assert every final ``.txt``/``.json`` report is **byte-identical**
   to the resumed run's, and that every grid cell was either resumed
   from the journal or computed fresh (no cell lost, none doubled).

Run with::

    python examples/kill_resume_smoke.py [outdir]

CI runs this on every push (the "Kill-and-resume smoke" job).  On a
fast machine the first pass may finish before the signal lands; the
script then still verifies the resume pass replays from the journal.
"""

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

#: The report jobs the smoke drives (two cheap ones keep CI snappy).
ONLY = ("fig3", "table3")

EXIT_RESUMABLE = 75


def report_cmd(outdir: pathlib.Path) -> list:
    cmd = [sys.executable, "-m", "repro", "report", str(outdir), "--fast"]
    for prefix in ONLY:
        cmd += ["--only", prefix]
    return cmd


def journal_done_keys(outdir: pathlib.Path) -> list:
    """Keys of completed cell records, in journal order (with repeats —
    a key appearing twice means a journaled cell was recomputed)."""
    path = outdir / "journal.jsonl"
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    keys = []
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue
        if record.get("kind") == "cell" and record.get("status") == "done":
            keys.append(record.get("key"))
    return keys


def journal_cells(outdir: pathlib.Path) -> int:
    """Completed cell records currently journaled (defensive count)."""
    return len(journal_done_keys(outdir))


def report_files(outdir: pathlib.Path) -> dict:
    """Final report artifacts: name -> bytes (recovery.json excluded)."""
    files = {}
    for path in sorted(outdir.iterdir()):
        if path.suffix in (".txt", ".json") and path.name != "recovery.json":
            files[path.name] = path.read_bytes()
    return files


def main() -> int:
    base = (
        pathlib.Path(sys.argv[1])
        if len(sys.argv) > 1
        else pathlib.Path(tempfile.mkdtemp(prefix="kill-resume-"))
    )
    interrupted_dir = base / "interrupted"
    clean_dir = base / "clean"

    # -- 1. start the report and SIGTERM it mid-grid -------------------
    proc = subprocess.Popen(report_cmd(interrupted_dir))
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline and proc.poll() is None:
        if journal_cells(interrupted_dir) >= 1:
            break
        time.sleep(0.05)
    finished_early = proc.poll() is not None
    if not finished_early:
        proc.send_signal(signal.SIGTERM)
    code = proc.wait()
    if finished_early:
        print("note: report finished before the signal; resume-only check")
        assert code == 0, f"uninterrupted report failed with {code}"
    else:
        assert code == EXIT_RESUMABLE, (
            f"SIGTERM'd report exited {code}, expected {EXIT_RESUMABLE}"
        )
    cells_before = journal_cells(interrupted_dir)
    print(f"interrupted with {cells_before} cells journaled (exit {code})")

    # -- 2. resume ------------------------------------------------------
    resume = subprocess.run(report_cmd(interrupted_dir) + ["--resume"])
    assert resume.returncode == 0, f"--resume exited {resume.returncode}"

    # -- 3. journal replay is byte-stable ------------------------------
    # Delete the rendered artifacts (keeping the journal) and resume
    # again: every job re-renders purely from journaled summaries and
    # must reproduce the exact bytes — including table3, whose host
    # wall-clock phase profile only replays because the journal stores
    # the full canonical summary.
    resumed_files = report_files(interrupted_dir)
    for name in resumed_files:
        (interrupted_dir / name).unlink()
    rerender = subprocess.run(report_cmd(interrupted_dir) + ["--resume"])
    assert rerender.returncode == 0, f"re-render exited {rerender.returncode}"
    rerendered_files = report_files(interrupted_dir)
    assert rerendered_files == resumed_files, (
        "re-rendering from the journal changed bytes: "
        f"{[n for n in resumed_files if rerendered_files.get(n) != resumed_files[n]]}"
    )

    # -- 4. sim-deterministic artifacts match a clean run --------------
    # (table3 reports *host* wall-clock phase times, which legitimately
    # differ between independent runs; everything simulated must not.)
    baseline = subprocess.run(report_cmd(clean_dir))
    assert baseline.returncode == 0, f"baseline exited {baseline.returncode}"
    clean_files = report_files(clean_dir)
    assert set(resumed_files) == set(clean_files), (
        f"artifact sets differ: {set(resumed_files) ^ set(clean_files)}"
    )
    deterministic = [n for n in clean_files if not n.startswith("table3")]
    mismatched = [n for n in deterministic if resumed_files[n] != clean_files[n]]
    assert not mismatched, f"resumed reports differ from clean run: {mismatched}"

    # -- 4. no cell lost, none doubled, none recomputed ----------------
    total = journal_cells(clean_dir)
    resumed_keys = journal_done_keys(interrupted_dir)
    assert len(resumed_keys) == total, (
        f"journal holds {len(resumed_keys)} cells after resume, grid has {total}"
    )
    doubled = {k for k in resumed_keys if resumed_keys.count(k) > 1}
    assert not doubled, (
        f"{len(doubled)} journaled cells were recomputed on resume: "
        f"{sorted(doubled)[:4]}"
    )
    recovery = json.loads((interrupted_dir / "recovery.json").read_text())
    replayed = recovery["counters"]["journal_hits"]
    print(
        f"resume ok: {cells_before} cells survived the kill "
        f"({replayed} replayed through the runner, the rest via skipped "
        f"jobs), {total} cells total, none recomputed; "
        f"{len(clean_files)} report files byte-identical"
    )
    return 0


if __name__ == "__main__":
    # The subprocesses need the same import path this script runs with.
    src = pathlib.Path(__file__).resolve().parents[1] / "src"
    if src.is_dir():
        existing = os.environ.get("PYTHONPATH", "")
        os.environ["PYTHONPATH"] = (
            f"{src}{os.pathsep}{existing}" if existing else str(src)
        )
    raise SystemExit(main())
