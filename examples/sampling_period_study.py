#!/usr/bin/env python3
"""Sampling-period study: why the paper picks 1 second.

Sweeps vProbe's sampling period over the paper's Fig. 8 range on the
``mix`` workload and prints the runtime curve.  Short periods pay for
constant re-partitioning (migrations with cold caches, flip-flopping
marginal assignments); long periods schedule on stale memory-access
characteristics once application phases move the hot data.

Also demonstrates the §VI dynamic-bounds extension at the chosen
period.

Run with::

    python examples/sampling_period_study.py
"""

from repro.core import Bounds
from repro.experiments import ScenarioConfig, fig8
from repro.experiments.ablation import run_bounds_ablation
from repro.metrics import format_table


def main() -> None:
    cfg = ScenarioConfig(work_scale=0.2, seed=0)

    print("Sweeping the sampling period on the mix workload...")
    result = fig8.run(cfg)
    print()
    print(result.format())
    best = result.best_period()
    print(
        f"\nBest period: {best:.1f}s — the paper settles on 1s after the"
        " same experiment."
    )

    print("\nDynamic vs static classification bounds (§VI extension):")
    ablation = run_bounds_ablation(cfg)
    print()
    print(ablation.format())
    print(
        f"\n(The static bounds low={Bounds().low:.0f}, high={Bounds().high:.0f}"
        " were hand-tuned in §IV-A for exactly this kind of mix, so"
        " parity means the quantile tracker found them on its own.)"
    )


if __name__ == "__main__":
    main()
