#!/usr/bin/env python3
"""Quickstart: vProbe vs the stock Credit scheduler in five minutes.

Builds the paper's §V-A setup for one memory-intensive SPEC workload
(soplex in VM1/VM2 plus VM3's hungry loops), runs it under Credit and
under vProbe with the same seed, and prints the comparison the paper's
Fig. 4 is made of: execution time, total/remote memory accesses and
migration behaviour.

Run with::

    python examples/quickstart.py [app] [work_scale]

where ``app`` is any profile name (default soplex; try mcf, lu, sp...)
and ``work_scale`` shrinks the workload for faster runs (default 0.15,
about 5 simulated seconds).
"""

import sys

from repro.experiments import ScenarioConfig, compare, npb_scenario, spec_scenario
from repro.metrics import format_table, improvement_pct
from repro.workloads import NPB_PROFILES


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "soplex"
    work_scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.15

    cfg = ScenarioConfig(work_scale=work_scale, seed=42)
    if app in NPB_PROFILES:
        builder = lambda p, c: npb_scenario(app, p, c)
    else:
        builder = lambda p, c: spec_scenario(app, p, c)

    print(f"Running {app!r} under Credit and vProbe (work_scale={work_scale})...")
    results = compare(builder, cfg, ("credit", "vprobe"))

    rows = []
    for name, summary in results.items():
        vm1 = summary.domain("vm1")
        machine = summary.machine_stats
        rows.append(
            (
                name,
                vm1.mean_finish_time_s,
                vm1.total_accesses / 1e6,
                vm1.remote_accesses / 1e6,
                vm1.remote_ratio * 100.0,
                machine.cross_node_migrations,
                machine.overhead_fraction * 100.0,
            )
        )
    print()
    print(
        format_table(
            [
                "scheduler",
                "runtime (s)",
                "total acc (M)",
                "remote acc (M)",
                "remote (%)",
                "cross-migr",
                "overhead (%)",
            ],
            rows,
        )
    )

    credit_t = results["credit"].domain("vm1").mean_finish_time_s
    vprobe_t = results["vprobe"].domain("vm1").mean_finish_time_s
    print(
        f"\nvProbe improvement over Credit: "
        f"{improvement_pct(vprobe_t, credit_t):.1f}% "
        f"(paper reports up to 45.2% across its workloads)"
    )


if __name__ == "__main__":
    main()
