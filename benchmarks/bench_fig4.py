"""Regenerate Figure 4: SPEC CPU2006 under the five schedulers (§V-B1).

Published shapes asserted here:

* vProbe has the best (or tied-best) execution time on every workload;
  the paper's headline is 32.5 % over Credit on soplex;
* both ablations (VCPU-P, LB) land between vProbe and Credit on
  average;
* BRM does not beat Credit meaningfully despite reducing remote
  accesses — its lock overhead is an order of magnitude above vProbe's;
* vProbe shows the lowest remote-access counts of the Credit family.
"""

import statistics

from repro.experiments import ScenarioConfig, fig4

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.18, seed=1)


def test_fig4_spec_comparison(benchmark, save_result):
    result = run_once(benchmark, lambda: fig4.run(CFG))
    save_result("fig4_spec_cpu2006", result.format())

    workloads = result.workloads

    def mean_norm(scheduler):
        return statistics.mean(
            result.norm_exec_time(w, scheduler) for w in workloads
        )

    # vProbe clearly improves over Credit on average and is never badly
    # beaten on any single workload.
    assert mean_norm("vprobe") < 0.92
    assert all(result.norm_exec_time(w, "vprobe") < 1.05 for w in workloads)

    # Ablations sit between the full system and the baseline.
    assert mean_norm("vprobe") < mean_norm("vcpu-p") < 1.05
    assert mean_norm("vprobe") < mean_norm("lb") < 1.05

    # BRM: no real win over Credit (lock contention, §V-B5).
    assert mean_norm("brm") > 0.97

    # Remote-access panel: vProbe lowest on average.
    def mean_remote(scheduler):
        return statistics.mean(
            result.norm_remote_accesses(w, scheduler) for w in workloads
        )

    assert mean_remote("vprobe") < 0.7
    assert mean_remote("vprobe") <= mean_remote("vcpu-p")

    # Overhead: BRM pays for its lock; vProbe stays negligible.
    for w in workloads:
        assert result.cell(w, "brm").overhead_fraction > 0.01
        assert result.cell(w, "vprobe").overhead_fraction < 1e-3

    best_workload, best_pct = result.best_improvement("vprobe")
    save_result(
        "fig4_headline",
        f"best vProbe improvement over Credit: {best_pct:.1f}% on "
        f"{best_workload} (paper: 32.5% on soplex)",
    )
