"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own VCPU-P/LB ablations (regenerated in
bench_fig4/bench_fig5), these cover:

* dynamic classification bounds (§VI future work) vs the static
  low=3/high=20;
* the value of classification itself (bounds pushed so high that no
  VCPU ever counts as memory-intensive, disabling partitioning).
"""

from repro.experiments import ScenarioConfig, ablation

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.15, seed=5)


def test_dynamic_bounds_ablation(benchmark, save_result):
    result = run_once(benchmark, lambda: ablation.run_bounds_ablation(CFG))
    save_result("ablation_dynamic_bounds", result.format())

    static = result.runtime_s["static-bounds"]
    dynamic = result.runtime_s["dynamic-bounds"]
    # The extension must be competitive with the hand-tuned bounds on
    # the mix workload (the paper tuned the static values for exactly
    # this kind of mix, so parity is the expected outcome).
    assert dynamic < 1.15 * static


def test_page_migration_ablation(benchmark, save_result):
    result = run_once(
        benchmark, lambda: ablation.run_page_migration_ablation(CFG)
    )
    save_result("ablation_page_migration", result.format())

    plain = result.runtime_s["vcpu-only"]
    combined = result.runtime_s["vcpu+page-migration"]
    # Moving forced-remote VCPUs' pages must cut their remote share...
    assert (
        result.remote_ratio["vcpu+page-migration"]
        <= result.remote_ratio["vcpu-only"] + 0.02
    )
    # ...without wrecking runtime (the copy cost is bounded).
    assert combined < 1.1 * plain


def test_classification_value_ablation(benchmark, save_result):
    result = run_once(
        benchmark, lambda: ablation.run_classification_ablation(CFG)
    )
    save_result("ablation_classification", result.format())

    standard = result.runtime_s["standard-classes"]
    friendly = result.runtime_s["all-friendly"]
    # Blinding the classifier removes partitioning; the standard
    # configuration must not lose to it.
    assert standard < 1.05 * friendly
