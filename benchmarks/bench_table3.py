"""Regenerate Table III: vProbe's "overhead time" percentage (§V-C1).

Published values: 0.00847 / 0.01206 / 0.01619 / 0.01062 % for 1-4 VMs
— i.e. always far below 0.1 %.  The reproduction asserts the magnitude
(every configuration well under 0.1 %, within ~10x of the paper's
numbers) and reports the per-source breakdown (PMU collection vs the
partitioning pass).
"""

from repro.experiments import ScenarioConfig, table3
from repro.metrics.report import format_table

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.15, seed=0)


def test_table3_overhead_time(benchmark, save_result):
    result = run_once(benchmark, lambda: table3.run(CFG))
    save_result("table3_overhead", result.format())

    for n, pct in zip(result.vm_counts, result.overhead_pct):
        # The paper's central claim: negligible overhead, << 0.1 %.
        assert 0.0 < pct < 0.1, f"{n} VMs: overhead {pct:.4f}%"
        # Same order of magnitude as the published figures.
        paper = table3.PAPER_OVERHEAD_PCT[n]
        assert pct < 10 * paper

    breakdown_rows = [
        (n, bd.get("pmu", 0.0), bd.get("partition", 0.0))
        for n, bd in zip(result.vm_counts, result.breakdown)
    ]
    save_result(
        "table3_breakdown",
        format_table(
            ["VMs", "pmu (s)", "partition (s)"],
            breakdown_rows,
            float_fmt="{:.6f}",
        ),
    )
