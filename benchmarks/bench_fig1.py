"""Regenerate Figure 1: remote-access ratios under stock Credit (§II-B).

Paper: >80 % remote for every application except soplex (77.41 %) on
the real two-socket host.  Model expectation (see EXPERIMENTS.md): the
ratio concentrates at 35-55 % — uniformly high and far above what any
NUMA-aware policy leaves, preserving the motivation.
"""

from repro.experiments import ScenarioConfig, fig1

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.15, seed=0)


def test_fig1_remote_ratios(benchmark, save_result):
    result = run_once(benchmark, lambda: fig1.run(CFG))
    save_result("fig1_remote_ratios", result.format())

    ratios = result.remote_ratio
    assert set(ratios) == set(fig1.FIG1_APPS)
    # Every memory-intensive application leaves a substantial remote
    # fraction under Credit — the recoverable headroom of §II-B.
    for app, ratio in ratios.items():
        assert ratio > 0.25, f"{app}: remote ratio {ratio:.3f} unexpectedly low"
    # And the average is high.
    mean_ratio = sum(ratios.values()) / len(ratios)
    assert mean_ratio > 0.33
