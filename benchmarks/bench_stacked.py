"""Benchmark + acceptance gate for the lane-stacked grid engine.

``test_stacked_grid_dispatch`` runs the canonical stacking workload —
a 16-seed, single-scheduler solo-``lu`` grid (one cell per seed; the
axis lane stacking exists for) — three ways, cold each time:

* **per-cell vector**: each cell solo through the vector engine,
* **per-cell batched**: each cell solo through the batched engine,
* **stacked**: all 16 cells as lanes of one :func:`run_stacked` call,

and records the wall/CPU clocks plus a lane-scaling curve
(L in {1, 4, 8, 16}: the same 16 cells dispatched as 16/L stacks of L
lanes) to ``benchmarks/BENCH_stacked.json``.

The **hard gate is parity**: every stacked lane's canonical
:class:`~repro.metrics.collectors.RunSummary` JSON must equal its solo
batched run's, bit for bit.  The timing floors are *regression floors*,
not the issue's aspirational targets: the original goal of >= 2x over
per-cell batched (>= 3x over per-cell vector) is not reachable on this
kernel and is documented as such — the stacked kernel's per-iteration
cost (~190 us, ~125 ufunc dispatches over 18 constant rows + 12
accumulator rows) amortises across lanes, but the solo batched engine
*already* amortises per-epoch Python over multi-epoch horizons, and
each lane's boundary phases (scheduler passes, machine-layer events)
run unstacked — an Amdahl ceiling measured at ~0.7-1.2x depending on
scenario (see DESIGN.md §10).  What stacking buys end to end today is
dispatch-shape flexibility at parity, with its best ratios (~1.1-1.15x
vs per-cell vector) on quiet single-VM scenarios like this one.  The
floors below catch *regressions* (a stacked run collapsing to half the
batched engine's speed) while leaving margin for CI hosts.
"""

import json
import pathlib
import time

from repro.experiments import ScenarioConfig, make_scheduler
from repro.experiments.scenarios import solo_scenario
from repro.metrics.collectors import summarize
from repro.xen.stacked import run_stacked

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_stacked.json"

SCENARIO = "solo lu, 16 seeds x vprobe, work_scale=0.05, cold, jobs=1"
SEEDS = 16
WORK_SCALE = 0.05
LANE_CURVE = (1, 4, 8, 16)

#: Regression floors on CPU time, min-of-2 interleaved cold rounds.
#: Honest measured ratios on this scenario are ~1.0-1.15x; the floors
#: sit far enough below to absorb CI noise while still catching a
#: structural slowdown in the stacked kernel.
MIN_STACKED_VS_BATCHED = 0.6
MIN_STACKED_VS_VECTOR = 0.7


def _build(engine: str, seed: int):
    cfg = ScenarioConfig(work_scale=WORK_SCALE, seed=seed, engine=engine)
    return solo_scenario("lu", make_scheduler("vprobe"), cfg)


def _canonical(machine) -> str:
    summary = summarize(machine).to_dict()
    summary.pop("phase_profile", None)
    summary.pop("horizon_stats", None)
    return json.dumps(summary, sort_keys=True)


def _run_per_cell(engine: str):
    """Cold per-cell dispatch: build + run each seed solo."""
    start = time.perf_counter()
    cpu_start = time.process_time()
    machines = []
    for seed in range(SEEDS):
        machine = _build(engine, seed)
        machine.run()
        machines.append(machine)
    return (
        time.perf_counter() - start,
        time.process_time() - cpu_start,
        machines,
    )


def _run_stacks(lanes: int):
    """Cold stacked dispatch: the 16 seeds as 16/lanes stacks."""
    start = time.perf_counter()
    cpu_start = time.process_time()
    machines = []
    for base in range(0, SEEDS, lanes):
        stack = [_build("stacked", seed) for seed in range(base, base + lanes)]
        results = run_stacked(stack)
        assert all(r.ok for r in results)
        machines.extend(stack)
    return (
        time.perf_counter() - start,
        time.process_time() - cpu_start,
        machines,
    )


def test_stacked_grid_dispatch():
    """Parity gate + honest lane-scaling record for stacked dispatch."""
    # Warm-up round each (allocator, import, branch caches), then two
    # interleaved timed rounds keeping each shape's CPU-time minimum so
    # a background-load spike cannot skew one side's ratio.
    _run_per_cell("vector")
    walls, cpus = {}, {}
    machines = {}
    for _ in range(2):
        for shape, runner in (
            ("vector", lambda: _run_per_cell("vector")),
            ("batched", lambda: _run_per_cell("batched")),
            ("stacked", lambda: _run_stacks(SEEDS)),
        ):
            wall, cpu, ms = runner()
            if shape not in cpus or cpu < cpus[shape]:
                walls[shape], cpus[shape], machines[shape] = wall, cpu, ms

    # Hard gate: every stacked lane is bitwise its solo batched run.
    for seed, (stacked_m, batched_m) in enumerate(
        zip(machines["stacked"], machines["batched"])
    ):
        assert _canonical(stacked_m) == _canonical(batched_m), (
            f"stacked lane for seed {seed} diverged from solo batched"
        )

    vs_batched = cpus["batched"] / cpus["stacked"]
    vs_vector = cpus["vector"] / cpus["stacked"]

    # Lane-scaling curve: the same grid as 16/L stacks of L lanes.
    curve = {}
    for lanes in LANE_CURVE:
        wall, cpu, ms = _run_stacks(lanes)
        wall2, cpu2, _ = _run_stacks(lanes)
        curve[str(lanes)] = {
            "stacks": SEEDS // lanes,
            "wall_s": round(min(wall, wall2), 3),
            "cpu_s": round(min(cpu, cpu2), 3),
            "vs_batched": round(cpus["batched"] / min(cpu, cpu2), 2),
        }

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenario": SCENARIO,
                "per_cell_vector": {
                    "wall_s": round(walls["vector"], 3),
                    "cpu_s": round(cpus["vector"], 3),
                },
                "per_cell_batched": {
                    "wall_s": round(walls["batched"], 3),
                    "cpu_s": round(cpus["batched"], 3),
                },
                "stacked_16_lanes": {
                    "wall_s": round(walls["stacked"], 3),
                    "cpu_s": round(cpus["stacked"], 3),
                    "vs_batched": round(vs_batched, 2),
                    "vs_vector": round(vs_vector, 2),
                },
                "lane_scaling": curve,
                "note": (
                    "parity is the hard gate; the >=2x-over-batched "
                    "target is unreachable on this kernel (Amdahl "
                    "ceiling, see DESIGN.md §10) so the timing floors "
                    "are regression floors at "
                    f"{MIN_STACKED_VS_BATCHED}/{MIN_STACKED_VS_VECTOR}"
                ),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert vs_batched >= MIN_STACKED_VS_BATCHED, (
        f"stacked dispatch {vs_batched:.2f}x vs per-cell batched "
        f"({cpus['batched']:.2f}s -> {cpus['stacked']:.2f}s CPU) "
        f"fell below the {MIN_STACKED_VS_BATCHED}x regression floor"
    )
    assert vs_vector >= MIN_STACKED_VS_VECTOR, (
        f"stacked dispatch {vs_vector:.2f}x vs per-cell vector "
        f"({cpus['vector']:.2f}s -> {cpus['stacked']:.2f}s CPU) "
        f"fell below the {MIN_STACKED_VS_VECTOR}x regression floor"
    )
