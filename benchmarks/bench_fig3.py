"""Regenerate Figure 3: solo LLC miss rate and RPTI per application.

Paper anchors (Fig. 3b): povray 0.48, ep 2.01, lu 15.38, mg 16.33,
milc 21.68, libquantum 22.41 — and the derived bounds low=3, high=20.
The measured RPTI must match those values almost exactly (the PMU
measures the calibrated profiles through the live machine model), and
the miss-rate ordering LLC-FR < LLC-FI < LLC-T must hold.
"""

import pytest

from repro.experiments import ScenarioConfig, fig3
from repro.xen.vcpu import VcpuType

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.05, seed=0)


def test_fig3_solo_calibration(benchmark, save_result):
    result = run_once(benchmark, lambda: fig3.run(CFG))
    save_result("fig3_llc_missrate_rpti", result.format())

    for row in result.rows:
        # Fig. 3(b): measured RPTI reproduces the paper to ~1 %.
        assert row.rpti == pytest.approx(row.paper_rpti, rel=0.02), row.app
        # Classification under the §IV-A bounds matches the paper.
        assert row.vcpu_type is fig3.PAPER_CLASS[row.app], row.app

    # Fig. 3(a) ordering: friendly < fitting < thrashing miss rates.
    by_class = {}
    for row in result.rows:
        by_class.setdefault(row.vcpu_type, []).append(row.miss_rate)
    assert max(by_class[VcpuType.LLC_FR]) < min(by_class[VcpuType.LLC_FI])
    assert max(by_class[VcpuType.LLC_FI]) < min(by_class[VcpuType.LLC_T])
