"""Regenerate Figure 7: redis under redis-benchmark load (§V-B4).

Published shapes asserted here:

* vProbe delivers the highest (or tied-highest) ``get`` throughput
  across the connection sweep (paper headline: 26.0 % at 2 000
  connections);
* BRM sits near Credit (lock contention eats its placement gains);
* vProbe's remote-access counts stay below Credit's everywhere.
"""

import statistics

from repro.experiments import ScenarioConfig, fig7

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.18, seed=4)

#: Reduced sweep (3 of the paper's 5 points).
CONNECTIONS = (2000, 6000, 10000)


def test_fig7_redis_sweep(benchmark, save_result):
    result = run_once(benchmark, lambda: fig7.run(CFG, connections=CONNECTIONS))
    save_result("fig7_redis", result.format())

    grid = result.grid
    points = grid.workloads

    def gain(w, s):
        """Throughput of s over Credit (>1 is better)."""
        return result.throughput(w, s) / result.throughput(w, "credit")

    # vProbe's throughput beats Credit on average and never collapses.
    assert statistics.mean(gain(w, "vprobe") for w in points) > 1.04
    assert all(gain(w, "vprobe") > 0.97 for w in points)
    # Gains grow with connection count (footprint crosses the LLC).
    assert gain(points[-1], "vprobe") > gain(points[0], "vprobe")

    # BRM: no meaningful throughput win over Credit.
    assert statistics.mean(gain(w, "brm") for w in points) < 1.02

    # Remote accesses: vProbe below Credit at every point.
    assert all(
        grid.norm_remote_accesses(w, "vprobe") < 0.9 for w in points
    )

    best = max(points, key=lambda w: gain(w, "vprobe"))
    save_result(
        "fig7_headline",
        f"best vProbe throughput gain over Credit: "
        f"{(gain(best, 'vprobe') - 1) * 100:.1f}% at {best} connections "
        f"(paper: 26.0% at n=2000)",
    )
