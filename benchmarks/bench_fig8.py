"""Regenerate Figure 8: sampling-period sensitivity (§V-C2).

Published shape: a U — the mix workload's runtime worsens both when the
period shrinks toward 0.1 s (per-period migration/overhead costs) and
when it grows toward 10 s (stale affinity/classification); the best
setting is the paper's chosen 1 s.
"""

from repro.experiments import ScenarioConfig, fig8

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.2, seed=0)

PERIODS = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


def test_fig8_sampling_period_sweep(benchmark, save_result):
    result = run_once(benchmark, lambda: fig8.run(CFG, periods=PERIODS))
    save_result("fig8_sampling_period", result.format())

    # The optimum lies in the paper's sweet spot (0.5-2 s), not at
    # either extreme of the sweep.
    assert 0.5 <= result.best_period() <= 2.0

    best = min(result.runtime_s)
    # Both extremes pay a visible penalty over the optimum.
    assert result.runtime_at(0.1) > best * 1.02
    assert result.runtime_at(10.0) > best * 1.02

    save_result(
        "fig8_headline",
        f"best sampling period: {result.best_period():.1f}s "
        f"(paper chooses 1 s); runtime at 0.1s/10s is "
        f"{result.runtime_at(0.1) / best:.2f}x / "
        f"{result.runtime_at(10.0) / best:.2f}x the optimum",
    )
