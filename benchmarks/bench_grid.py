"""Benchmarks for the result cache and the chunked grid dispatch.

``test_warm_report_speedup`` is the acceptance gate for the
content-addressed cache: it regenerates the full ``--fast`` report
twice against one shared cache directory, asserts the warm pass is at
least 10x faster with **zero** cache misses, and asserts every ``.json``
report is byte-identical between the cold and warm runs (the cache
round-trips summaries exactly; a hit can never change a figure).

``test_chunked_dispatch`` measures what chunked submission buys on a
32-seed sweep of short cells — one executor round-trip per chunk
instead of per cell.  The measurement is recorded (chunking must not
*lose*), not gated: absolute IPC costs vary too much across CI hosts
for a hard ratio.

Both write their numbers to ``benchmarks/BENCH_grid.json``, the
committed before/after record.
"""

import contextlib
import dataclasses
import io
import json
import pathlib
import time
from functools import partial

from repro.cache import ResultCache
from repro.experiments.parallel import ParallelRunner, default_jobs
from repro.experiments.report_all import regenerate_all
from repro.experiments.scenarios import ScenarioConfig, solo_scenario

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_grid.json"


def _read_bench() -> dict:
    try:
        return json.loads(BENCH_JSON.read_text())
    except (OSError, ValueError):
        return {}


def _write_bench(key: str, value: dict) -> None:
    data = _read_bench()
    data[key] = value
    BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_warm_report_speedup(tmp_path):
    """Warm ``--fast`` report: >= 10x faster, 0 misses, same bytes."""
    cache = ResultCache(tmp_path / "cache")
    jobs = min(4, default_jobs())

    def report(outdir: pathlib.Path):
        start = time.perf_counter()
        with contextlib.redirect_stdout(io.StringIO()):
            stats = regenerate_all(outdir, fast=True, jobs=jobs, cache=cache)
        return time.perf_counter() - start, stats

    cold_s, cold = report(tmp_path / "cold")
    warm_s, warm = report(tmp_path / "warm")
    speedup = cold_s / warm_s

    # recovery.json is the run's *own* accounting (cache hit/miss
    # counters), which legitimately differs between a cold and a warm
    # pass; the byte-identity gate is about the figures.
    mismatched = [
        f.name
        for f in sorted((tmp_path / "cold").glob("*.json"))
        if f.name != "recovery.json"
        and f.read_bytes() != (tmp_path / "warm" / f.name).read_bytes()
    ]

    _write_bench(
        "warm_report",
        {
            "scenario": f"repro report --fast --jobs {jobs}, shared cache dir",
            "cold_wall_s": round(cold_s, 3),
            "warm_wall_s": round(warm_s, 4),
            "speedup": round(speedup, 1),
            "cold": cold,
            "warm": warm,
        },
    )

    assert warm["cache_misses"] == 0, f"warm run missed: {warm}"
    assert warm["cache_hits"] == cold["cache_hits"] + cold["cache_misses"]
    assert not mismatched, f"cold/warm reports differ: {mismatched}"
    assert speedup >= 10.0, (
        f"warm report speedup {speedup:.1f}x "
        f"({cold_s:.1f}s -> {warm_s:.3f}s) fell below 10x"
    )


def test_chunked_dispatch():
    """Chunked vs per-cell dispatch on a 32-seed x 2-scheduler sweep.

    Cells are deliberately tiny (a few ms of simulation) so the
    per-future submission/result round-trip is a visible fraction of
    the wall time — the regime chunking exists for.
    """
    cfg = ScenarioConfig(work_scale=0.005, seed=0)
    builder = partial(solo_scenario, "lu")
    cells = [
        (builder, sched, dataclasses.replace(cfg, seed=seed))
        for seed in range(32)
        for sched in ("credit", "vprobe")
    ]
    # At least two workers even on a one-core host: the quantity under
    # test is executor round-trips per cell, not parallel compute.
    jobs = max(2, min(4, default_jobs()))

    def sweep(chunksize):
        runner = ParallelRunner(jobs, chunksize=chunksize)
        start = time.perf_counter()
        results = runner.run_cells(cells)
        return time.perf_counter() - start, results

    # Warm the pool/fork machinery once so neither side pays it, then
    # keep each side's best of three rounds (spawn-time noise dominates
    # single measurements at this scale).
    sweep(None)
    per_cell_s, per_cell = sweep(1)
    chunked_s, chunked = sweep(None)
    for _ in range(2):
        per_cell_s = min(per_cell_s, sweep(1)[0])
        chunked_s = min(chunked_s, sweep(None)[0])

    _write_bench(
        "chunked_dispatch",
        {
            "scenario": (
                f"solo lu, 32 seeds x 2 schedulers = {len(cells)} cells, "
                f"jobs={jobs}"
            ),
            "per_cell_wall_s": round(per_cell_s, 3),
            "chunked_wall_s": round(chunked_s, 3),
            "speedup": round(per_cell_s / chunked_s, 2),
        },
    )

    # Correctness is the hard gate; the timing is a recorded measurement.
    assert chunked == per_cell
