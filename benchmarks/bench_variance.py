"""Reproduction-noise study: how stable are the headline results?

The paper reports single numbers per configuration; a simulation can
quantify the placement-luck noise behind them.  This bench runs the
soplex comparison over several seeds (fully paired) and reports each
scheduler's mean runtime, standard deviation and mean remote ratio —
asserting that the published ordering (vProbe < ablations < Credit,
BRM not better than Credit) holds *on the seed average*, not just on a
lucky draw.
"""

from repro.experiments import ScenarioConfig, compare_mean, spec_scenario
from repro.metrics.report import format_table

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.15)
SEEDS = (0, 1, 2)


def test_soplex_ordering_holds_on_seed_average(benchmark, save_result):
    result = run_once(
        benchmark,
        lambda: compare_mean(
            lambda p, c: spec_scenario("soplex", p, c),
            CFG,
            seeds=SEEDS,
        ),
    )

    rows = [
        (
            name,
            stats.mean_runtime_s,
            stats.stdev_runtime_s,
            stats.relative_stdev * 100.0,
            stats.mean_remote_ratio * 100.0,
        )
        for name, stats in result.items()
    ]
    save_result(
        "variance_soplex",
        format_table(
            [
                "scheduler",
                "mean runtime (s)",
                "stdev (s)",
                "rel stdev (%)",
                "mean remote (%)",
            ],
            rows,
        ),
    )

    mean = {name: stats.mean_runtime_s for name, stats in result.items()}
    # Published ordering on the average:
    assert mean["vprobe"] < mean["vcpu-p"]
    assert mean["vprobe"] < mean["lb"]
    assert mean["vprobe"] < 0.9 * mean["credit"]
    assert mean["brm"] > 0.95 * mean["credit"]

    # Remote-access ordering on the average.
    remote = {name: stats.mean_remote_ratio for name, stats in result.items()}
    assert remote["vprobe"] < remote["credit"]
    assert remote["vprobe"] <= min(remote["vcpu-p"], remote["lb"]) + 0.02

    # Noise is bounded: the comparison is meaningful at these scales.
    for name, stats in result.items():
        assert stats.relative_stdev < 0.25, name
