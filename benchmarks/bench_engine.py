"""Micro-benchmarks of the simulator's hot paths.

These time the engine itself (not a paper experiment) so performance
regressions in the contention solve or the scheduler pass are caught:
per the project's optimisation rules, measure before optimising.

``test_engine_speedup`` is the acceptance gate for the vectorized
engine: it times the reference and vector engines back to back with
``time.perf_counter`` (so it runs even under ``--benchmark-disable``),
asserts the vector engine is at least 3x faster per epoch, and writes
the measured before/after numbers to ``benchmarks/BENCH_engine.json``.
"""

import json
import pathlib
import time

from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.hardware.cache import CacheDemand, CacheModel, waterfill_shares

MIB = 1024**2

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_engine.json"

#: The engine-comparison scenario: the Fig. 4 soplex workload at full
#: scale — 24 VCPUs over 8 PCPUs under vProbe, the configuration whose
#: epoch loop dominates every experiment's wall time.
SPEEDUP_SCENARIO = "spec soplex, 24 VCPUs / 8 PCPUs, vprobe, work_scale=1.0"


def _steady_machine(engine: str):
    """A warmed-up machine (past initial placement) on ``engine``."""
    cfg = ScenarioConfig(work_scale=1.0, seed=0, engine=engine)
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)
    return machine


def _us_per_epoch(machine, epochs: int) -> float:
    """Wall time of ``epochs`` steady-state steps, in us/epoch."""
    step = machine._step_epoch
    start = time.perf_counter()
    for _ in range(epochs):
        step()
    return (time.perf_counter() - start) / epochs * 1e6


def test_epoch_step_throughput(benchmark):
    """Steady-state cost of one simulated epoch (24 VCPUs, 8 PCPUs)."""
    machine = _steady_machine("vector")

    benchmark(machine._step_epoch)


def test_epoch_step_throughput_reference(benchmark):
    """The same epoch cost through the reference (dict) engine."""
    machine = _steady_machine("reference")

    benchmark(machine._step_epoch)


def test_engine_speedup():
    """Vector engine is >= 3x the reference engine, measured paired.

    Reference and vector measurements interleave (ref, vec, ref, vec,
    ...) and each side keeps its minimum, so a background-load spike
    during one round cannot skew the ratio.  The result is written to
    ``BENCH_engine.json`` as the committed before/after record.
    """
    rounds = 4
    epochs = 2000
    ref_machine = _steady_machine("reference")
    vec_machine = _steady_machine("vector")
    # One untimed round each to warm allocator and branch caches.
    _us_per_epoch(ref_machine, 200)
    _us_per_epoch(vec_machine, 200)
    ref_us = float("inf")
    vec_us = float("inf")
    for _ in range(rounds):
        ref_us = min(ref_us, _us_per_epoch(ref_machine, epochs))
        vec_us = min(vec_us, _us_per_epoch(vec_machine, epochs))
    speedup = ref_us / vec_us

    # End-to-end check on a full (scaled-down) scenario run: the same
    # workload from scratch, wall-clocked through Machine.run().
    def run_full(engine: str) -> float:
        cfg = ScenarioConfig(work_scale=0.25, seed=0, engine=engine)
        machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
        start = time.perf_counter()
        machine.run()
        return time.perf_counter() - start

    ref_wall = run_full("reference")
    vec_wall = run_full("vector")

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenario": SPEEDUP_SCENARIO,
                "epoch_microbench": {
                    "epochs_per_round": epochs,
                    "rounds": rounds,
                    "reference_us_per_epoch": round(ref_us, 2),
                    "vector_us_per_epoch": round(vec_us, 2),
                    "speedup": round(speedup, 2),
                },
                "end_to_end": {
                    "scenario": "spec soplex, work_scale=0.25, full run",
                    "reference_wall_s": round(ref_wall, 3),
                    "vector_wall_s": round(vec_wall, 3),
                    "speedup": round(ref_wall / vec_wall, 2),
                },
            },
            indent=2,
        )
        + "\n"
    )

    assert speedup >= 3.0, (
        f"vector engine speedup {speedup:.2f}x "
        f"({ref_us:.1f} -> {vec_us:.1f} us/epoch) fell below 3x"
    )


def test_scenario_wallclock(benchmark):
    """End-to-end wall clock of a full scaled-down scenario run."""

    def run_full():
        cfg = ScenarioConfig(work_scale=0.25, seed=0)
        machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
        machine.run()
        return machine

    benchmark.pedantic(run_full, rounds=1, iterations=1)


def test_llc_solve_cost(benchmark):
    """Cost of one per-socket LLC contention solve (4 co-runners)."""
    model = CacheModel(12 * MIB)
    demands = {
        i: CacheDemand(
            working_set_bytes=(4 + i) * MIB,
            intensity=0.02,
            min_miss_rate=0.1,
            max_miss_rate=0.8,
        )
        for i in range(4)
    }
    model.advance(0.05, demands)

    benchmark(model.solve, demands)


def test_waterfill_cost(benchmark):
    """Water-filling with a capped/uncapped mix."""
    weights = [1.0, 2.0, 0.5, 3.0, 1.5, 0.1, 2.5, 1.0]
    caps = [4.0, 100.0, 2.0, 50.0, 1.0, 10.0, 100.0, 3.0]

    benchmark(waterfill_shares, 24.0, weights, caps)
