"""Micro-benchmarks of the simulator's hot paths.

These time the engine itself (not a paper experiment) so performance
regressions in the contention solve or the scheduler pass are caught:
per the project's optimisation rules, measure before optimising.

``test_engine_speedup`` is the acceptance gate for the fast engines:
it times the reference, vector and batched engines back to back with
``time.perf_counter`` (so it runs even under ``--benchmark-disable``),
asserts the vector engine is at least 3x and the batched engine at
least 2x faster per epoch than the reference, asserts the batched
engine beats the vector engine end to end on the loaded scenario, and
writes the measured numbers — full cold-run wall clocks at
``work_scale=1.0`` plus the batched run's horizon histogram and
fused-tick counters — to ``benchmarks/BENCH_engine.json``.  CI runs
this test as its perf-regression smoke and uploads the JSON as an
artifact.
"""

import json
import pathlib
import time

from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.hardware.cache import CacheDemand, CacheModel, waterfill_shares

MIB = 1024**2

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_engine.json"

#: The engine-comparison scenario: the Fig. 4 soplex workload at full
#: scale — 24 VCPUs over 8 PCPUs under vProbe, the configuration whose
#: epoch loop dominates every experiment's wall time.
SPEEDUP_SCENARIO = "spec soplex, 24 VCPUs / 8 PCPUs, vprobe, work_scale=1.0"

#: Every engine variant, slowest first.
ENGINES = ("reference", "vector", "batched")

#: Perf-regression floors enforced against the reference engine's
#: per-epoch cost.  The batched floor is deliberately below the
#: vector floor: on the fully loaded SPEC scenario event density
#: (slice expiries, wakes, phase changes) keeps most macro-step
#: horizons short, so batching wins only modestly over the singleton
#: vector path there — its large wins are on quieter scenarios.
MIN_VECTOR_SPEEDUP = 3.0
MIN_BATCHED_SPEEDUP = 2.0

#: End-to-end floor for the batched engine against the vector engine
#: on the loaded scenario: CPU time, min-of-2 interleaved cold runs.
#: Measured
#: ~1.25-1.30x: with 24 VCPUs contending for 8 PCPUs nearly every
#: Credit tick rotates an incumbent (only ~1.5% of ticks are quiescent)
#: and wakes truncate horizons to p50 = 3 epochs, so tick fusion's
#: end-to-end win is bounded by event density, not by per-epoch cost —
#: see DESIGN.md §6.  The floor leaves margin for CI machine noise.
MIN_BATCHED_VS_VECTOR = 1.1


def _steady_machine(engine: str):
    """A warmed-up machine (past initial placement) on ``engine``."""
    cfg = ScenarioConfig(work_scale=1.0, seed=0, engine=engine)
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)
    return machine


def _us_per_epoch(machine, epochs: int) -> float:
    """Wall time per steady-state *simulated epoch*, in us.

    Counted off ``epoch_index``, not off stepper calls: one
    ``_step_epoch`` call advances a whole macro-step on the batched
    engine, so dividing by call count would overstate its cost.
    """
    step = machine._step_epoch
    start_epoch = machine.epoch_index
    start = time.perf_counter()
    while machine.epoch_index - start_epoch < epochs:
        step()
    elapsed = time.perf_counter() - start
    return elapsed / (machine.epoch_index - start_epoch) * 1e6


def test_epoch_step_throughput(benchmark):
    """Steady-state cost of one simulated epoch (24 VCPUs, 8 PCPUs)."""
    machine = _steady_machine("vector")

    benchmark(machine._step_epoch)


def test_epoch_step_throughput_reference(benchmark):
    """The same epoch cost through the reference (dict) engine."""
    machine = _steady_machine("reference")

    benchmark(machine._step_epoch)


def test_epoch_step_throughput_batched(benchmark):
    """Cost of one *stepper call* on the batched engine (one macro-step)."""
    machine = _steady_machine("batched")

    benchmark(machine._step_epoch)


def test_engine_speedup():
    """Fast engines beat the reference per epoch, measured paired.

    All three engines' measurements interleave (ref, vec, bat, ref,
    ...) and each keeps its minimum, so a background-load spike during
    one round cannot skew the ratios.  The result — microbench and
    full cold-run wall clocks at ``work_scale=1.0`` — is written to
    ``BENCH_engine.json`` as the committed before/after record.
    """
    rounds = 6
    epochs = 2000
    machines = {engine: _steady_machine(engine) for engine in ENGINES}
    # One untimed round each to warm allocator and branch caches.
    for machine in machines.values():
        _us_per_epoch(machine, 200)
    best = {engine: float("inf") for engine in ENGINES}
    for _ in range(rounds):
        for engine in ENGINES:
            best[engine] = min(best[engine], _us_per_epoch(machines[engine], epochs))
    vector_speedup = best["reference"] / best["vector"]
    batched_speedup = best["reference"] / best["batched"]

    # End-to-end cold runs: the same workload from scratch at full
    # scale, wall-clocked through Machine.run() — initial placement,
    # warm-up churn and steady state included.
    def run_full(engine: str):
        cfg = ScenarioConfig(work_scale=1.0, seed=0, engine=engine)
        machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
        start = time.perf_counter()
        cpu_start = time.process_time()
        machine.run()
        cpu = time.process_time() - cpu_start
        return time.perf_counter() - start, cpu, machine

    walls = {}
    cpus = {}
    batched_machine = None
    for engine in ENGINES:
        walls[engine], cpus[engine], machine = run_full(engine)
        if engine == "batched":
            batched_machine = machine
    # The batched-vs-vector ratio is a gate, so it compares CPU time
    # (immune to background load) over the min of two interleaved
    # rounds: a load spike during a single cold run would otherwise
    # fail the floor spuriously.
    for engine in ("vector", "batched"):
        wall, cpu, _ = run_full(engine)
        walls[engine] = min(walls[engine], wall)
        cpus[engine] = min(cpus[engine], cpu)
    batched_vs_vector = cpus["vector"] / cpus["batched"]

    horizon = batched_machine._engine.horizon_stats()
    assert horizon is not None
    # The whole point of macro-stepping: the batched run must cover its
    # epochs in strictly fewer advance_batch calls than epochs stepped.
    assert horizon["batches"] < horizon["epochs"], (
        f"batched engine made {horizon['batches']} advance_batch calls "
        f"for {horizon['epochs']} epochs — horizons never exceeded 1"
    )

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenario": SPEEDUP_SCENARIO,
                "epoch_microbench": {
                    "epochs_per_round": epochs,
                    "rounds": rounds,
                    "reference_us_per_epoch": round(best["reference"], 2),
                    "vector_us_per_epoch": round(best["vector"], 2),
                    "batched_us_per_epoch": round(best["batched"], 2),
                    "vector_speedup": round(vector_speedup, 2),
                    "batched_speedup": round(batched_speedup, 2),
                },
                "end_to_end": {
                    "scenario": "spec soplex, work_scale=1.0, cold full run",
                    "reference_wall_s": round(walls["reference"], 3),
                    "vector_wall_s": round(walls["vector"], 3),
                    "batched_wall_s": round(walls["batched"], 3),
                    "vector_speedup": round(
                        walls["reference"] / walls["vector"], 2
                    ),
                    "batched_speedup": round(
                        walls["reference"] / walls["batched"], 2
                    ),
                    "vector_cpu_s": round(cpus["vector"], 3),
                    "batched_cpu_s": round(cpus["batched"], 3),
                    "batched_vs_vector": round(batched_vs_vector, 2),
                },
                "horizon": horizon,
            },
            indent=2,
        )
        + "\n"
    )

    assert vector_speedup >= MIN_VECTOR_SPEEDUP, (
        f"vector engine speedup {vector_speedup:.2f}x "
        f"({best['reference']:.1f} -> {best['vector']:.1f} us/epoch) "
        f"fell below {MIN_VECTOR_SPEEDUP}x"
    )
    assert batched_speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched engine speedup {batched_speedup:.2f}x "
        f"({best['reference']:.1f} -> {best['batched']:.1f} us/epoch) "
        f"fell below {MIN_BATCHED_SPEEDUP}x"
    )
    assert batched_vs_vector >= MIN_BATCHED_VS_VECTOR, (
        f"batched engine end-to-end {batched_vs_vector:.2f}x vs vector "
        f"({cpus['vector']:.2f}s -> {cpus['batched']:.2f}s CPU) "
        f"fell below {MIN_BATCHED_VS_VECTOR}x"
    )


def test_scenario_wallclock(benchmark):
    """End-to-end wall clock of a full scaled-down scenario run."""

    def run_full():
        cfg = ScenarioConfig(work_scale=0.25, seed=0)
        machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
        machine.run()
        return machine

    benchmark.pedantic(run_full, rounds=1, iterations=1)


def test_llc_solve_cost(benchmark):
    """Cost of one per-socket LLC contention solve (4 co-runners)."""
    model = CacheModel(12 * MIB)
    demands = {
        i: CacheDemand(
            working_set_bytes=(4 + i) * MIB,
            intensity=0.02,
            min_miss_rate=0.1,
            max_miss_rate=0.8,
        )
        for i in range(4)
    }
    model.advance(0.05, demands)

    benchmark(model.solve, demands)


def test_waterfill_cost(benchmark):
    """Water-filling with a capped/uncapped mix."""
    weights = [1.0, 2.0, 0.5, 3.0, 1.5, 0.1, 2.5, 1.0]
    caps = [4.0, 100.0, 2.0, 50.0, 1.0, 10.0, 100.0, 3.0]

    benchmark(waterfill_shares, 24.0, weights, caps)
