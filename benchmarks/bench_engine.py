"""Micro-benchmarks of the simulator's hot paths.

These time the engine itself (not a paper experiment) so performance
regressions in the contention solve or the scheduler pass are caught:
per the project's optimisation rules, measure before optimising.
"""

from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.hardware.cache import CacheDemand, CacheModel, waterfill_shares

MIB = 1024**2


def test_epoch_step_throughput(benchmark):
    """Steady-state cost of one simulated epoch (24 VCPUs, 8 PCPUs)."""
    cfg = ScenarioConfig(work_scale=1.0, seed=0)
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)  # warm up past initial placement

    benchmark(machine._step_epoch)


def test_llc_solve_cost(benchmark):
    """Cost of one per-socket LLC contention solve (4 co-runners)."""
    model = CacheModel(12 * MIB)
    demands = {
        i: CacheDemand(
            working_set_bytes=(4 + i) * MIB,
            intensity=0.02,
            min_miss_rate=0.1,
            max_miss_rate=0.8,
        )
        for i in range(4)
    }
    model.advance(0.05, demands)

    benchmark(model.solve, demands)


def test_waterfill_cost(benchmark):
    """Water-filling with a capped/uncapped mix."""
    weights = [1.0, 2.0, 0.5, 3.0, 1.5, 0.1, 2.5, 1.0]
    caps = [4.0, 100.0, 2.0, 50.0, 1.0, 10.0, 100.0, 3.0]

    benchmark(waterfill_shares, 24.0, weights, caps)
