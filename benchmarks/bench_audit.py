"""Benchmark guard for the runtime invariant checker.

The audit layer's contract (see :mod:`repro.audit.invariants`) has
three measurable clauses, each pinned here:

* **enabled is cheap** — a checker at its default cadence (``every=32``)
  costs less than 5 % of the steady-state epoch loop.  Like the
  profiler guard, a naive A/B wall-clock comparison cannot resolve a
  few-percent effect on a shared host (epoch cost drifts with
  simulated state and run-to-run noise is larger than the effect), so
  the guard times the two stable quantities instead: the amortised
  cost of the per-epoch hook calls (a tight loop over
  ``after_schedule``/``after_epoch`` on frozen machine state, which
  includes one full five-check boundary per ``every`` calls) plus the
  forced sampling-boundary checks, divided by the measured epoch
  cost.  Numbers go to ``benchmarks/BENCH_audit.json``;
* **disabled is free** — a checker with every invariant disabled
  performs *exactly zero* checks over a whole run (the epoch hooks may
  fire, but no invariant is ever evaluated);
* **reads only** — an audited run's summary is bitwise identical to an
  unaudited one, so attaching the checker can never change a result.

Like the profiler guard this times with ``time.perf_counter`` directly,
so it still runs under ``--benchmark-disable``.
"""

import json
import pathlib
import time

from repro.audit.invariants import InvariantChecker
from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.metrics.collectors import summarize
from repro.obs.manifest import canonical_dumps

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_audit.json"

#: Allowed overhead of default-cadence auditing on the epoch microbench.
MAX_OVERHEAD_FRACTION = 0.05

ENGINES = ("vector", "batched")


def _steady_machine(engine: str):
    """A warmed-up machine (past initial placement) on ``engine``."""
    cfg = ScenarioConfig(work_scale=1.0, seed=0, engine=engine, label="bench audit")
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)
    return machine


def _us_per_epoch(machine, epochs: int) -> float:
    """Wall time per steady-state simulated epoch, in us."""
    step = machine._step_epoch
    start_epoch = machine.epoch_index
    start = time.perf_counter()
    while machine.epoch_index - start_epoch < epochs:
        step()
    elapsed = time.perf_counter() - start
    return elapsed / (machine.epoch_index - start_epoch) * 1e6


def _amortized_hook_us(machine, checker, iterations: int) -> float:
    """Amortised cost of one epoch's audit hook calls, in us.

    Calls the two hooks on frozen machine state: the checker's own
    cadence counter makes one call in ``every`` a full five-check
    boundary, exactly the real per-epoch mix.
    """
    start = time.perf_counter()
    for _ in range(iterations):
        checker.after_schedule(machine)
        checker.after_epoch(machine, False)
    return (time.perf_counter() - start) / iterations * 1e6


def test_audit_overhead_under_5pct():
    """Default-cadence invariant checking costs < 5% per epoch."""
    rounds = 3
    epochs = 2000
    hook_iters = 20_000

    record = {
        "scenario": "spec soplex, 24 VCPUs / 8 PCPUs, vprobe",
        "cadence": InvariantChecker().every,
        "budget_fraction": MAX_OVERHEAD_FRACTION,
        "engines": {},
    }
    failures = []
    for engine in ENGINES:
        machine = _steady_machine(engine)
        epoch_us = float("inf")
        for _ in range(rounds):
            epoch_us = min(epoch_us, _us_per_epoch(machine, epochs))

        # Hook costs on a frozen steady state (machine paused mid-run).
        hooked = _steady_machine(engine)
        checker = InvariantChecker()  # default cadence, every invariant
        cadence_us = min(
            _amortized_hook_us(hooked, checker, hook_iters) for _ in range(rounds)
        )
        # Sampling-period boundaries force a full check regardless of
        # cadence; bill them at their real per-epoch frequency.
        boundary = InvariantChecker(every=1)
        boundary_us = min(
            _amortized_hook_us(hooked, boundary, hook_iters // 10)
            for _ in range(rounds)
        )
        overhead_us = cadence_us + boundary_us / hooked._epochs_per_sample
        overhead = overhead_us / epoch_us

        record["engines"][engine] = {
            "epoch_us": round(epoch_us, 2),
            "cadence_us_per_epoch": round(cadence_us, 3),
            "boundary_us": round(boundary_us, 3),
            "epochs_per_sample": hooked._epochs_per_sample,
            "checks_run": checker.checks_run,
            "overhead_fraction": round(overhead, 5),
        }
        if overhead >= MAX_OVERHEAD_FRACTION:
            failures.append(
                f"{engine}: default-cadence auditing costs {overhead * 100.0:.2f}% "
                f"of the epoch loop ({overhead_us:.2f} of {epoch_us:.2f} us/epoch)"
            )
        assert checker.checks_run > 0, f"{engine}: auditor never ran a check"

    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    assert not failures, (
        "; ".join(failures) + f"; budget is {MAX_OVERHEAD_FRACTION * 100.0:.0f}%"
    )


def test_disabled_audit_runs_exactly_zero_checks():
    """All-disabled checker over a full run: checks_run stays 0."""
    cfg = ScenarioConfig(work_scale=0.05, seed=0, max_time_s=0.5)
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    checker = InvariantChecker(enabled=())
    machine.run(audit=checker)
    assert checker.checks_run == 0


def test_audited_summary_bitwise_identical():
    """Attaching the checker never changes a run's result bytes."""
    texts = {}
    for label, audit in (("plain", None), ("audited", InvariantChecker(every=1))):
        cfg = ScenarioConfig(work_scale=0.05, seed=0, max_time_s=0.5)
        machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
        machine.run(audit=audit)
        texts[label] = canonical_dumps(
            summarize(machine).to_dict(include_profile=False)
        )
    assert texts["plain"] == texts["audited"]
