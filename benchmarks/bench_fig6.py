"""Regenerate Figure 6: memcached under memslap load (§V-B3).

Published shapes asserted here:

* vProbe is the best scheduler across the concurrency sweep, with its
  largest wins in the saturated region (paper: 31.3 % at 80 calls);
* the gains grow from the low-concurrency to the high-concurrency end
  (LLC footprint grows with connections);
* BRM trails the other NUMA-aware schedulers.
"""

import statistics

from repro.experiments import ScenarioConfig, fig6

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.08, seed=3)

#: Reduced sweep (4 of the paper's 7 points) keeps the bench tractable.
CONCURRENCIES = (16, 48, 80, 112)


def test_fig6_memcached_sweep(benchmark, save_result):
    result = run_once(
        benchmark, lambda: fig6.run(CFG, concurrencies=CONCURRENCIES)
    )
    save_result("fig6_memcached", result.format())

    points = result.workloads

    def norm(w, s):
        return result.norm_exec_time(w, s)

    # vProbe never loses to Credit and wins clearly on average.
    assert all(norm(w, "vprobe") < 1.02 for w in points)
    assert statistics.mean(norm(w, "vprobe") for w in points) < 0.9

    # Saturated region: strong wins (paper's 31.3% best case at c=80).
    saturated = [w for w in points if int(w.split("=")[1]) >= 80]
    assert min(norm(w, "vprobe") for w in saturated) < 0.8

    # BRM is the weakest of the NUMA-aware approaches on average.
    def mean_norm(s):
        return statistics.mean(norm(w, s) for w in points)

    assert mean_norm("brm") > mean_norm("vprobe")
    assert mean_norm("brm") > mean_norm("lb")

    best_point, best_pct = result.best_improvement("vprobe")
    save_result(
        "fig6_headline",
        f"best vProbe improvement over Credit: {best_pct:.1f}% at "
        f"{best_point} concurrent calls (paper: 31.3% at c=80)",
    )
