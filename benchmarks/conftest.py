"""Shared helpers for the benchmark harness.

Each ``bench_*`` module regenerates one of the paper's tables/figures at
a reduced-but-representative scale, asserts the published *shape*
(orderings, crossovers, factors), saves the rendered table under
``benchmarks/results/`` and reports the regeneration wall time through
pytest-benchmark.
"""

from __future__ import annotations

import pathlib

import pytest

#: Where regenerated tables are written.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Create (once) and return the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered experiment table to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        # Also echo to stdout so `pytest -s` shows it inline.
        print(f"\n=== {name} ===\n{text}")

    return _save


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
