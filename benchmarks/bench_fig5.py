"""Regenerate Figure 5: NPB kernels under the five schedulers (§V-B2).

Published shapes asserted here:

* vProbe best on average (headline: 45.2 % over Credit on sp);
* LB can *raise* total memory accesses on some kernels (it ignores LLC
  contention) while still reducing remote accesses;
* BRM again at or below Credit.
"""

import statistics

from repro.experiments import ScenarioConfig, fig5

from conftest import run_once

CFG = ScenarioConfig(work_scale=0.18, seed=2)


def test_fig5_npb_comparison(benchmark, save_result):
    result = run_once(benchmark, lambda: fig5.run(CFG))
    save_result("fig5_npb", result.format())

    workloads = result.workloads

    def mean_norm(metric, scheduler):
        fn = {
            "time": result.norm_exec_time,
            "total": result.norm_total_accesses,
            "remote": result.norm_remote_accesses,
        }[metric]
        return statistics.mean(fn(w, scheduler) for w in workloads)

    # Panel (a): the full system wins on average and never loses badly.
    assert mean_norm("time", "vprobe") < 0.93
    assert all(result.norm_exec_time(w, "vprobe") < 1.05 for w in workloads)
    assert mean_norm("time", "vprobe") < mean_norm("time", "vcpu-p")
    assert mean_norm("time", "brm") > 0.97

    # Panel (c): vProbe cuts remote accesses hard.
    assert mean_norm("remote", "vprobe") < 0.7

    # LB ignores LLC contention: on at least one kernel its *total*
    # access count meets or exceeds Credit's (the bt/lu/sp effect).
    assert any(
        result.norm_total_accesses(w, "lb") >= 0.99 for w in workloads
    )

    best_workload, best_pct = result.best_improvement("vprobe")
    save_result(
        "fig5_headline",
        f"best vProbe improvement over Credit: {best_pct:.1f}% on "
        f"{best_workload} (paper: 45.2% on sp)",
    )
