"""Benchmark guard for the always-on phase profiler.

The profiler's contract (see :mod:`repro.obs.profiler`) is that it is
cheap enough to leave enabled everywhere: two ``perf_counter_ns`` reads
and one dict update per span.  A naive A/B wall-clock comparison of a
profiled vs unprofiled run cannot resolve a ~1% effect on a shared
host (run-to-run noise is several percent), so the guard measures the
two stable quantities instead and multiplies them:

* **span cost** — a tight loop of ``start()``/``stop()`` pairs (and of
  ``count()`` bumps), which times the profiler itself to a few ns;
* **span rate** — how many spans one steady-state epoch actually
  records, read off the profiler's own call counters (deterministic).

Their product, as a fraction of the measured epoch cost, is the
always-on overhead; the test pins it below 3 % for both fast engines
— the batched engine adds a ``horizon`` span per stepper call but
amortises every span over a whole macro-step, so its span *rate* per
epoch is lower — and writes the numbers to
``benchmarks/BENCH_profiler.json``.  Like ``test_engine_speedup`` it
times with ``time.perf_counter`` directly so it still runs under
``--benchmark-disable``.
"""

import json
import pathlib
import time

from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.obs.profiler import PhaseProfiler

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_profiler.json"

#: Allowed always-on profiling overhead on the epoch microbench.
MAX_OVERHEAD_FRACTION = 0.03

#: Engines the guard covers (the reference engine shares the vector
#: engine's span schedule, so profiling it adds nothing).
ENGINES = ("vector", "batched")


def _steady_machine(engine: str):
    """A warmed-up machine (past initial placement) on ``engine``."""
    cfg = ScenarioConfig(
        work_scale=1.0, seed=0, engine=engine, label="bench profiler"
    )
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)
    return machine


def _us_per_epoch(machine, epochs: int) -> float:
    """Wall time per steady-state *simulated epoch*, in us.

    Counted off ``epoch_index`` so macro-steps (batched engine) are
    priced per epoch advanced, not per stepper call.
    """
    step = machine._step_epoch
    start_epoch = machine.epoch_index
    start = time.perf_counter()
    while machine.epoch_index - start_epoch < epochs:
        step()
    elapsed = time.perf_counter() - start
    return elapsed / (machine.epoch_index - start_epoch) * 1e6


def _span_cost_us(iterations: int = 200_000) -> float:
    """Cost of one start/stop pair on a steady-state phase, in us."""
    prof = PhaseProfiler()
    prof.stop("calibration", prof.start())  # first hit allocates the slot
    start = time.perf_counter()
    for _ in range(iterations):
        prof.stop("calibration", prof.start())
    return (time.perf_counter() - start) / iterations * 1e6


def _count_cost_us(iterations: int = 200_000) -> float:
    """Cost of one ``count()`` bump, in us."""
    prof = PhaseProfiler()
    prof.count("calibration")
    start = time.perf_counter()
    for _ in range(iterations):
        prof.count("calibration")
    return (time.perf_counter() - start) / iterations * 1e6


def test_profiler_overhead_under_3pct():
    """Always-on profiling costs < 3% of the steady-state epoch loop."""
    rounds = 3
    epochs = 2000

    span_us = min(_span_cost_us() for _ in range(rounds))
    count_us = min(_count_cost_us() for _ in range(rounds))

    record = {
        "scenario": "spec soplex, 24 VCPUs / 8 PCPUs, vprobe",
        "span_cost_us": round(span_us, 4),
        "count_cost_us": round(count_us, 4),
        "budget_fraction": MAX_OVERHEAD_FRACTION,
        "engines": {},
    }
    failures = []
    for engine in ENGINES:
        machine = _steady_machine(engine)
        prof = machine.profiler
        _us_per_epoch(machine, 200)  # warm allocator and branch caches

        prof.clear()
        epoch_us = float("inf")
        measured_epochs = 0
        for _ in range(rounds):
            epoch_us = min(epoch_us, _us_per_epoch(machine, epochs))
            measured_epochs += epochs
        spans = sum(s.calls for s in prof.snapshot().values())
        counts = sum(prof.counters().values())
        spans_per_epoch = spans / measured_epochs
        counts_per_epoch = counts / measured_epochs
        overhead_us = spans_per_epoch * span_us + counts_per_epoch * count_us
        overhead = overhead_us / epoch_us

        record["engines"][engine] = {
            "epochs": measured_epochs,
            "epoch_us": round(epoch_us, 2),
            "spans_per_epoch": round(spans_per_epoch, 3),
            "counts_per_epoch": round(counts_per_epoch, 3),
            "overhead_us_per_epoch": round(overhead_us, 3),
            "overhead_fraction": round(overhead, 5),
        }
        if overhead >= MAX_OVERHEAD_FRACTION:
            failures.append(
                f"{engine}: always-on profiling costs {overhead * 100.0:.2f}% "
                f"of the epoch loop ({overhead_us:.2f} of {epoch_us:.2f} "
                f"us/epoch: {spans_per_epoch:.1f} spans x {span_us:.3f} us + "
                f"{counts_per_epoch:.1f} counts x {count_us:.3f} us)"
            )

    BENCH_JSON.write_text(json.dumps(record, indent=2) + "\n")

    assert not failures, (
        "; ".join(failures)
        + f"; budget is {MAX_OVERHEAD_FRACTION * 100.0:.0f}%"
    )
