"""Benchmark guard for the always-on phase profiler.

The profiler's contract (see :mod:`repro.obs.profiler`) is that it is
cheap enough to leave enabled everywhere: two ``perf_counter_ns`` reads
and one dict update per span.  A naive A/B wall-clock comparison of a
profiled vs unprofiled run cannot resolve a ~1% effect on a shared
host (run-to-run noise is several percent), so the guard measures the
two stable quantities instead and multiplies them:

* **span cost** — a tight loop of ``start()``/``stop()`` pairs (and of
  ``count()`` bumps), which times the profiler itself to a few ns;
* **span rate** — how many spans one steady-state epoch actually
  records, read off the profiler's own call counters (deterministic).

Their product, as a fraction of the measured epoch cost, is the
always-on overhead; the test pins it below 3 % and writes the numbers
to ``benchmarks/BENCH_profiler.json``.  Like ``test_engine_speedup``
it times with ``time.perf_counter`` directly so it still runs under
``--benchmark-disable``.
"""

import json
import pathlib
import time

from repro.experiments import ScenarioConfig, make_scheduler, spec_scenario
from repro.obs.profiler import PhaseProfiler

BENCH_JSON = pathlib.Path(__file__).parent / "BENCH_profiler.json"

#: Allowed always-on profiling overhead on the epoch microbench.
MAX_OVERHEAD_FRACTION = 0.03


def _steady_machine():
    """A warmed-up vector-engine machine (past initial placement)."""
    cfg = ScenarioConfig(work_scale=1.0, seed=0, label="bench profiler")
    machine = spec_scenario("soplex", make_scheduler("vprobe"), cfg)
    machine.run(max_time_s=0.05)
    return machine


def _us_per_epoch(machine, epochs: int) -> float:
    """Wall time of ``epochs`` steady-state steps, in us/epoch."""
    step = machine._step_epoch
    start = time.perf_counter()
    for _ in range(epochs):
        step()
    return (time.perf_counter() - start) / epochs * 1e6


def _span_cost_us(iterations: int = 200_000) -> float:
    """Cost of one start/stop pair on a steady-state phase, in us."""
    prof = PhaseProfiler()
    prof.stop("calibration", prof.start())  # first hit allocates the slot
    start = time.perf_counter()
    for _ in range(iterations):
        prof.stop("calibration", prof.start())
    return (time.perf_counter() - start) / iterations * 1e6


def _count_cost_us(iterations: int = 200_000) -> float:
    """Cost of one ``count()`` bump, in us."""
    prof = PhaseProfiler()
    prof.count("calibration")
    start = time.perf_counter()
    for _ in range(iterations):
        prof.count("calibration")
    return (time.perf_counter() - start) / iterations * 1e6


def test_profiler_overhead_under_3pct():
    """Always-on profiling costs < 3% of the steady-state epoch loop."""
    rounds = 3
    epochs = 2000
    machine = _steady_machine()
    prof = machine.profiler
    _us_per_epoch(machine, 200)  # warm allocator and branch caches

    prof.clear()
    epoch_us = float("inf")
    for _ in range(rounds):
        epoch_us = min(epoch_us, _us_per_epoch(machine, epochs))
    total_epochs = rounds * epochs
    spans_per_epoch = sum(s.calls for s in prof.snapshot().values()) / total_epochs
    counts_per_epoch = sum(prof.counters().values()) / total_epochs

    span_us = min(_span_cost_us() for _ in range(rounds))
    count_us = min(_count_cost_us() for _ in range(rounds))
    overhead_us = spans_per_epoch * span_us + counts_per_epoch * count_us
    overhead = overhead_us / epoch_us

    BENCH_JSON.write_text(
        json.dumps(
            {
                "scenario": "spec soplex, 24 VCPUs / 8 PCPUs, vprobe, vector engine",
                "epochs": total_epochs,
                "epoch_us": round(epoch_us, 2),
                "span_cost_us": round(span_us, 4),
                "count_cost_us": round(count_us, 4),
                "spans_per_epoch": round(spans_per_epoch, 3),
                "counts_per_epoch": round(counts_per_epoch, 3),
                "overhead_us_per_epoch": round(overhead_us, 3),
                "overhead_fraction": round(overhead, 5),
                "budget_fraction": MAX_OVERHEAD_FRACTION,
            },
            indent=2,
        )
        + "\n"
    )

    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"always-on profiling costs {overhead * 100.0:.2f}% of the epoch "
        f"loop ({overhead_us:.2f} of {epoch_us:.2f} us/epoch: "
        f"{spans_per_epoch:.1f} spans x {span_us:.3f} us + "
        f"{counts_per_epoch:.1f} counts x {count_us:.3f} us); "
        f"budget is {MAX_OVERHEAD_FRACTION * 100.0:.0f}%"
    )
