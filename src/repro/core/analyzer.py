"""The PMU data analyzer (§III-B), hardened against lying telemetry.

At the end of each sampling period it closes every VCPU's counter
window and derives:

* **memory node affinity** (Eq. 1): the id of the node whose memory the
  VCPU accessed most during the period — ``argmax_i N(vc, i)``;
* **LLC access pressure** (Eq. 2) and **type** (Eq. 3).

The derived values are written into the VCPU's ``node_affinity``,
``llc_pressure`` and ``vcpu_type`` fields — the exact fields §IV-B adds
to Xen's ``csched_vcpu``.  Everything is computed from hypervisor-level
counters only: the guest is never consulted, preserving the
transparency requirement.

Real PMUs multiplex counters, drop samples and saturate, so windows
are read through :meth:`Machine.read_pmu_window` (the fault layer) and
the analyzer additionally tracks, per VCPU:

* **staleness** — consecutive sampling periods without a usable window
  (dropped by the fault layer, or empty because the VCPU never ran);
* **confidence** — an exponential moving average of window hits, in
  [0, 1]: each usable window pulls it toward 1, each missed one decays
  it by ``confidence_decay``.  It starts at 1 — the paper's implicit
  assumption of working telemetry — so only sustained evidence of an
  outage revokes trust; a low threshold therefore distinguishes "the
  PMU is flaky but alive" (confidence hovers near the hit rate) from
  "the PMU is gone" (confidence decays geometrically toward 0).
  Schedulers use it to fall back to telemetry-free behaviour instead
  of acting on stale fields;
* **type hysteresis** — with ``hysteresis_windows`` > 1, a VCPU must
  classify into a new Eq. 3 class for that many consecutive windows
  before its committed ``vcpu_type`` switches, so one corrupted sample
  cannot trigger a partitioning migration;
* **plausibility rejection** (``reject_implausible``) — a window whose
  counters are physically impossible is discarded as if it had been
  dropped.  A VCPU cannot retire more than ``period * clock / CPI_base``
  instructions in a period (memory stalls only ever slow it down), and
  no program sustains an LLC access pressure beyond a few times the
  Eq. 3 thrashing bound; corrupted counters routinely violate both.
  Genuine windows never do, so the filter is inert on healthy
  telemetry — but it converts detectable garbage into honest gaps,
  which the staleness/confidence machinery already handles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

import numpy as np

from repro.core.classify import Bounds, TypeHysteresis, classify, llc_access_pressure
from repro.xen.vcpu import Vcpu, VcpuState, VcpuType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["VcpuSample", "PmuAnalyzer"]


@dataclass(frozen=True, slots=True)
class VcpuSample:
    """One VCPU's derived characteristics for a sampling period.

    ``fresh`` is False when the period produced no usable window (the
    VCPU never ran, or the fault layer dropped the sample); the derived
    fields then carry the previous, possibly stale values.
    """

    vcpu_key: int
    instructions: float
    llc_refs: float
    node_affinity: Optional[int]
    llc_pressure: float
    vcpu_type: VcpuType
    fresh: bool = True
    staleness: int = 0
    confidence: float = 1.0


class PmuAnalyzer:
    """Derives per-VCPU memory-access characteristics from PMU windows.

    Parameters
    ----------
    bounds:
        Classification bounds (Eq. 3); replaceable per period when the
        dynamic-bounds extension is active.
    hysteresis_windows:
        Consecutive windows a VCPU must spend in a new Eq. 3 class
        before its committed type switches.  1 (default) reproduces
        the paper's immediate reclassification bit for bit.
    confidence_decay:
        EMA weight in (0, 1): a missed window multiplies confidence by
        ``decay``, a usable one moves it to ``decay*c + (1-decay)``.
        Smaller values react faster in both directions.
    reject_implausible:
        Discard windows with physically impossible counters (see the
        module docstring) instead of classifying on them.
    max_plausible_pressure:
        Sanity ceiling for Eq. 2 pressure when ``reject_implausible``
        is on; defaults to 3x the classification ``high`` bound.
    """

    #: headroom on the physical instruction ceiling (timing slop)
    SANITY_MARGIN = 1.05

    def __init__(
        self,
        bounds: Bounds | None = None,
        hysteresis_windows: int = 1,
        confidence_decay: float = 0.5,
        reject_implausible: bool = False,
        max_plausible_pressure: Optional[float] = None,
    ) -> None:
        self.bounds = bounds or Bounds()
        self.hysteresis = TypeHysteresis(hysteresis_windows)
        if not 0.0 < confidence_decay < 1.0:
            raise ValueError(
                f"confidence_decay must be in (0, 1), got {confidence_decay}"
            )
        self.confidence_decay = confidence_decay
        self.reject_implausible = reject_implausible
        if max_plausible_pressure is not None and max_plausible_pressure <= 0:
            raise ValueError(
                f"max_plausible_pressure must be > 0, got {max_plausible_pressure}"
            )
        self.max_plausible_pressure = (
            max_plausible_pressure
            if max_plausible_pressure is not None
            else 3.0 * self.bounds.high
        )
        #: windows discarded by the plausibility filter so far
        self.samples_rejected = 0
        self._staleness: Dict[int, int] = {}
        self._confidence: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Confidence
    # ------------------------------------------------------------------
    def staleness(self, vcpu_key: int) -> int:
        """Consecutive periods without a usable window for this VCPU."""
        return self._staleness.get(vcpu_key, 0)

    def confidence(self, vcpu_key: int) -> float:
        """How much the VCPU's derived fields can be trusted, in [0, 1].

        1 before the VCPU is first observed (telemetry is presumed
        working, as the paper assumes); thereafter the hit-rate EMA.
        """
        return self._confidence.get(vcpu_key, 1.0)

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def analyze(self, machine: "Machine") -> List[VcpuSample]:
        """Close all counter windows and refresh VCPU characteristics.

        VCPUs without a usable window this period (blocked, starved, or
        sample dropped by the fault layer) keep their previous affinity
        and classification — the paper's prototype behaves the same way
        since stale fields are simply not overwritten until new counter
        data arrives — and their staleness grows.

        Returns the per-VCPU samples (for logging and the dynamic-bounds
        extension).
        """
        samples: List[VcpuSample] = []
        max_hz = 0.0
        if self.reject_implausible:
            max_hz = max(node.clock_hz for node in machine.topology.nodes)
        for vcpu in machine.vcpus:
            if vcpu.state is VcpuState.DONE:
                continue
            window = machine.read_pmu_window(vcpu.key)
            usable = window is not None and window.instructions > 0
            if usable and self.reject_implausible:
                ceiling = (
                    machine.config.sample_period_s
                    * max_hz
                    / vcpu.workload.profile.cpi_base
                    * self.SANITY_MARGIN
                )
                pressure = llc_access_pressure(
                    window.llc_refs, window.instructions
                )
                if (
                    window.instructions > ceiling
                    or pressure > self.max_plausible_pressure
                ):
                    self.samples_rejected += 1
                    machine.log.emit(
                        machine.time,
                        "pmu_sample_rejected",
                        vcpu=vcpu.name,
                        instructions=window.instructions,
                        pressure=pressure,
                    )
                    # Eq. 1 affinity is an argmax of per-node access
                    # counts — scale-invariant, so multiplicative
                    # corruption cannot forge it.  Keep that update;
                    # only the ratio-based Eq. 2/3 fields are tainted.
                    vcpu.node_affinity = self._node_affinity(
                        vcpu, window.node_accesses
                    )
                    usable = False
            if not usable:
                stale = self._staleness.get(vcpu.key, 0) + 1
                self._staleness[vcpu.key] = stale
                self._confidence[vcpu.key] = (
                    self.confidence_decay * self._confidence.get(vcpu.key, 1.0)
                )
                samples.append(
                    VcpuSample(
                        vcpu_key=vcpu.key,
                        instructions=0.0,
                        llc_refs=0.0,
                        node_affinity=vcpu.node_affinity,
                        llc_pressure=vcpu.llc_pressure,
                        vcpu_type=vcpu.vcpu_type,
                        fresh=False,
                        staleness=stale,
                        confidence=self.confidence(vcpu.key),
                    )
                )
                continue
            self._staleness[vcpu.key] = 0
            self._confidence[vcpu.key] = (
                self.confidence_decay * self._confidence.get(vcpu.key, 1.0)
                + (1.0 - self.confidence_decay)
            )
            affinity = self._node_affinity(vcpu, window.node_accesses)
            pressure = llc_access_pressure(window.llc_refs, window.instructions)
            raw_type = classify(pressure, self.bounds)
            vtype = self.hysteresis.update(vcpu.key, vcpu.vcpu_type, raw_type)
            vcpu.node_affinity = affinity
            vcpu.llc_pressure = pressure
            vcpu.vcpu_type = vtype
            samples.append(
                VcpuSample(
                    vcpu_key=vcpu.key,
                    instructions=window.instructions,
                    llc_refs=window.llc_refs,
                    node_affinity=affinity,
                    llc_pressure=pressure,
                    vcpu_type=vtype,
                    fresh=True,
                    staleness=0,
                    confidence=self.confidence(vcpu.key),
                )
            )
        return samples

    @staticmethod
    def _node_affinity(vcpu: Vcpu, node_accesses: np.ndarray) -> Optional[int]:
        """Eq. 1: the node with the most accessed pages this period."""
        total = float(node_accesses.sum())
        if total <= 0:
            return vcpu.node_affinity
        return int(np.argmax(node_accesses))
