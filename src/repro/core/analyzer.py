"""The PMU data analyzer (§III-B).

At the end of each sampling period it closes every VCPU's counter
window and derives:

* **memory node affinity** (Eq. 1): the id of the node whose memory the
  VCPU accessed most during the period — ``argmax_i N(vc, i)``;
* **LLC access pressure** (Eq. 2) and **type** (Eq. 3).

The derived values are written into the VCPU's ``node_affinity``,
``llc_pressure`` and ``vcpu_type`` fields — the exact fields §IV-B adds
to Xen's ``csched_vcpu``.  Everything is computed from hypervisor-level
counters only: the guest is never consulted, preserving the
transparency requirement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.core.classify import Bounds, classify, llc_access_pressure
from repro.xen.vcpu import Vcpu, VcpuState, VcpuType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["VcpuSample", "PmuAnalyzer"]


@dataclass(frozen=True, slots=True)
class VcpuSample:
    """One VCPU's derived characteristics for a sampling period."""

    vcpu_key: int
    instructions: float
    llc_refs: float
    node_affinity: Optional[int]
    llc_pressure: float
    vcpu_type: VcpuType


class PmuAnalyzer:
    """Derives per-VCPU memory-access characteristics from PMU windows.

    Parameters
    ----------
    bounds:
        Classification bounds (Eq. 3); replaceable per period when the
        dynamic-bounds extension is active.
    """

    def __init__(self, bounds: Bounds | None = None) -> None:
        self.bounds = bounds or Bounds()

    def analyze(self, machine: "Machine") -> List[VcpuSample]:
        """Close all counter windows and refresh VCPU characteristics.

        VCPUs that retired no instructions this period (blocked or
        starved) keep their previous affinity and classification — the
        paper's prototype behaves the same way since stale fields are
        simply not overwritten until new counter data arrives.

        Returns the per-VCPU samples (for logging and the dynamic-bounds
        extension).
        """
        samples: List[VcpuSample] = []
        for vcpu in machine.vcpus:
            if vcpu.state is VcpuState.DONE:
                continue
            window = machine.pmu.end_window(vcpu.key)
            if window.instructions <= 0:
                samples.append(
                    VcpuSample(
                        vcpu_key=vcpu.key,
                        instructions=0.0,
                        llc_refs=0.0,
                        node_affinity=vcpu.node_affinity,
                        llc_pressure=vcpu.llc_pressure,
                        vcpu_type=vcpu.vcpu_type,
                    )
                )
                continue
            affinity = self._node_affinity(vcpu, window.node_accesses)
            pressure = llc_access_pressure(window.llc_refs, window.instructions)
            vtype = classify(pressure, self.bounds)
            vcpu.node_affinity = affinity
            vcpu.llc_pressure = pressure
            vcpu.vcpu_type = vtype
            samples.append(
                VcpuSample(
                    vcpu_key=vcpu.key,
                    instructions=window.instructions,
                    llc_refs=window.llc_refs,
                    node_affinity=affinity,
                    llc_pressure=pressure,
                    vcpu_type=vtype,
                )
            )
        return samples

    @staticmethod
    def _node_affinity(vcpu: Vcpu, node_accesses: np.ndarray) -> Optional[int]:
        """Eq. 1: the node with the most accessed pages this period."""
        total = float(node_accesses.sum())
        if total <= 0:
            return vcpu.node_affinity
        return int(np.argmax(node_accesses))
