"""Dynamic VCPU-type bounds (the §VI future-work extension).

The paper fixes ``low = 3`` and ``high = 20`` for its host and notes
that adapting them to the running workload "will make vProbe more
adaptable to different real-world applications".  This module
implements the natural quantile-tracking realisation of that idea:

* each sampling period, collect the LLC access pressures of all VCPUs
  that ran;
* estimate the distribution's ``low_q`` and ``high_q`` quantiles;
* blend them into the current bounds with exponential smoothing so a
  single noisy period cannot flip every classification;
* never let the bounds collapse: ``low`` is kept at least
  ``min_separation`` below ``high`` and both stay inside configured
  floors/ceilings so an all-friendly or all-thrashing mix degrades to
  the static behaviour instead of oscillating.

The ablation bench ``benchmarks/bench_ablation.py`` compares static
vs dynamic bounds on workload mixes whose pressure distribution drifts.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.classify import Bounds
from repro.util.validation import check_fraction, check_positive

__all__ = ["DynamicBounds"]


class DynamicBounds:
    """Quantile-tracking adaptation of the Eq. 3 bounds.

    Parameters
    ----------
    initial:
        Starting bounds (the paper's static values by default).
    low_q / high_q:
        Target quantiles of the observed pressure distribution for the
        low and high bound.
    smoothing:
        Exponential-smoothing weight of the *new* estimate in [0, 1];
        small values adapt slowly and stably.
    min_separation:
        Minimum gap kept between low and high.
    floor / ceiling:
        Hard limits for the adapted bounds.
    min_samples:
        Below this many pressure samples the period is skipped (too
        little signal to re-estimate a distribution).
    """

    def __init__(
        self,
        initial: Bounds | None = None,
        low_q: float = 0.25,
        high_q: float = 0.75,
        smoothing: float = 0.3,
        min_separation: float = 2.0,
        floor: float = 0.5,
        ceiling: float = 60.0,
        min_samples: int = 4,
    ) -> None:
        self.bounds = initial or Bounds()
        self.low_q = check_fraction(low_q, "low_q")
        self.high_q = check_fraction(high_q, "high_q")
        if low_q >= high_q:
            raise ValueError(f"low_q must be < high_q, got {low_q} >= {high_q}")
        self.smoothing = check_fraction(smoothing, "smoothing")
        self.min_separation = check_positive(min_separation, "min_separation")
        self.floor = check_positive(floor, "floor")
        self.ceiling = check_positive(ceiling, "ceiling")
        if floor >= ceiling:
            raise ValueError("floor must be < ceiling")
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_samples = min_samples
        self.updates = 0

    def update(self, pressures: Sequence[float]) -> Bounds:
        """Fold one period's pressure observations into the bounds.

        Returns the (possibly unchanged) current bounds.
        """
        if len(pressures) < self.min_samples:
            return self.bounds
        arr = np.asarray(pressures, dtype=float)
        if np.any(arr < 0):
            raise ValueError("pressures must be non-negative")
        new_low = float(np.quantile(arr, self.low_q))
        new_high = float(np.quantile(arr, self.high_q))

        s = self.smoothing
        low = (1 - s) * self.bounds.low + s * new_low
        high = (1 - s) * self.bounds.high + s * new_high

        low = min(max(low, self.floor), self.ceiling - self.min_separation)
        high = min(max(high, low + self.min_separation), self.ceiling)

        self.bounds = Bounds(low=low, high=high)
        self.updates += 1
        return self.bounds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DynamicBounds(low={self.bounds.low:.2f}, high={self.bounds.high:.2f}, "
            f"updates={self.updates})"
        )
