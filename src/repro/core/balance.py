"""NUMA-aware load balance (§III-D, Algorithm 2).

When a PCPU goes idle it steals work, but unlike Credit's NUMA-blind
scan it:

1. visits the **local node first** and only then remote nodes — keeping
   memory-intensive VCPUs near their pages and preserving the LLC
   balance the partitioner established;
2. within a node, checks PCPUs in **descending ``workload``** order
   (the §IV-B per-PCPU run-queue counter) — relieving the most loaded
   peer reduces context switching and keeps PCPU loads even;
3. from the chosen queue steals the runnable VCPU with the **smallest
   LLC access pressure** — moving a cache-light VCPU disturbs the LLC
   contention balance the least, and if the steal does cross nodes, a
   low-pressure VCPU also generates the fewest new remote accesses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Optional

from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["numa_aware_steal", "node_visit_order"]


def node_visit_order(machine: "Machine", home_node: int) -> Iterable[int]:
    """Node scan order: local node, then remote nodes (nearest first).

    On the paper's two-socket host "nearest first" is trivial; for
    larger synthetic topologies nodes are visited by distance then id,
    matching the ``nextNode()`` iteration of Algorithm 2.
    """
    topo = machine.topology
    remote = sorted(
        topo.remote_nodes(home_node),
        key=lambda n: (topo.distance(home_node, n), n),
    )
    yield home_node
    yield from remote


def numa_aware_steal(
    machine: "Machine",
    pcpu: Pcpu,
    now: float,
    pressure_of: Optional[Callable[[Vcpu], float]] = None,
) -> Optional[Vcpu]:
    """Algorithm 2: pick a VCPU for a PCPU that needs work.

    Triggered at the same points as Credit's balancer: when ``pcpu``
    goes idle, or when its best local candidate has OVER priority.
    Unlike Credit, Algorithm 2 places no priority condition on the
    victim — line 4 of the paper's pseudocode considers *all* runnable
    VCPUs and picks the smallest LLC pressure (on a tie, the earliest
    in the victim queue's order wins — ``min`` keeps the first).  That
    asymmetry is the mechanism's point: when a steal must cross nodes,
    a cache-light (usually CPU-bound, credit-hungry, hence OVER) VCPU
    moves instead of a memory-intensive UNDER one, so the partitioner's
    placement survives between sampling periods.

    Returns the chosen VCPU already removed from its victim queue (the
    machine completes the migration bookkeeping), or None when no
    eligible VCPU exists anywhere.

    ``pressure_of`` overrides the pressure used for victim ranking
    (default: the VCPU's recorded ``llc_pressure``).  The hardened
    vProbe substitutes 0 for VCPUs whose telemetry it no longer
    trusts, so stale pressure readings cannot pin a VCPU in place.
    """
    if pressure_of is None:
        pressure_of = _recorded_pressure
    hot_window = machine.policy.params.cache_hot_s
    for only_cold in (True, False):
        if not only_cold and (pcpu.current is not None or pcpu.queue):
            # Only a PCPU about to idle falls back to cache-hot steals.
            break
        found = _scan_nodes(machine, pcpu, now, only_cold, hot_window, pressure_of)
        if found is not None:
            # Audit hook: the stolen VCPU still records its victim PCPU
            # (the machine rebinds it afterwards), so the checker can
            # verify steal locality against the untouched local queues.
            if machine.auditor is not None:
                machine.auditor.check_steal(
                    machine, pcpu, found, now, only_cold, hot_window
                )
            return found
    return None


def _recorded_pressure(vcpu: Vcpu) -> float:
    return vcpu.llc_pressure


def _scan_nodes(machine, pcpu, now, only_cold, hot_window, pressure_of):
    for node in node_visit_order(machine, pcpu.node):
        # loadList: this node's PCPUs by descending workload counter.
        peers = sorted(
            (machine.pcpus[p] for p in machine.topology.pcpus_of_node(node)),
            key=lambda p: (-p.workload, p.pcpu_id),
        )
        for victim in peers:
            if victim is pcpu or not victim.queue:
                continue
            candidates = [
                v
                for v in victim.queue
                if not only_cold or now - v.last_ran_time >= hot_window
            ]
            if not candidates:
                continue
            vcpu = min(candidates, key=pressure_of)
            victim.queue.remove(vcpu)
            machine.log.emit(
                now,
                "numa_steal",
                vcpu=vcpu.name,
                thief=pcpu.pcpu_id,
                victim=victim.pcpu_id,
                local=victim.node == pcpu.node,
            )
            return vcpu
    return None
