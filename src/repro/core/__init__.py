"""vProbe: the paper's contribution.

Three cooperating mechanisms layered on the Credit scheduler:

* :mod:`repro.core.analyzer` — the PMU data analyzer (§III-B): per
  sampling period, derive each VCPU's *memory node affinity* (Eq. 1),
  *LLC access pressure* (Eq. 2) and *type* (Eq. 3).
* :mod:`repro.core.partition` — VCPU periodical partitioning
  (§III-C, Algorithm 1).
* :mod:`repro.core.balance` — NUMA-aware load balance
  (§III-D, Algorithm 2).

:class:`repro.core.vprobe.VProbeScheduler` assembles them; the factory
functions also build the paper's ablation variants (VCPU-P, LB).
"""

from repro.core.classify import Bounds, TypeHysteresis, classify, llc_access_pressure
from repro.core.analyzer import PmuAnalyzer, VcpuSample
from repro.core.partition import PartitionDecision, periodical_partition
from repro.core.balance import numa_aware_steal
from repro.core.vprobe import (
    VProbeParams,
    VProbeScheduler,
    load_balance_only,
    vcpu_partition_only,
    vprobe,
    vprobe_hardened,
)
from repro.core.bounds import DynamicBounds

__all__ = [
    "Bounds",
    "TypeHysteresis",
    "classify",
    "llc_access_pressure",
    "PmuAnalyzer",
    "VcpuSample",
    "PartitionDecision",
    "periodical_partition",
    "numa_aware_steal",
    "VProbeParams",
    "VProbeScheduler",
    "vprobe",
    "vprobe_hardened",
    "vcpu_partition_only",
    "load_balance_only",
    "DynamicBounds",
]
