"""VCPU periodical partitioning (§III-C, Algorithm 1).

At the end of each sampling period, every memory-intensive VCPU
(LLC-T or LLC-FI) is marked *unassigned* and then reassigned one at a
time:

1. pick **MIN-NODE**, the node with the fewest VCPUs reassigned so far
   (``reassigned_load``);
2. prefer an unassigned **LLC-T** VCPU while any remain, else LLC-FI
   (heaviest pressure class balanced first);
3. within the chosen type, prefer a VCPU whose *memory node affinity*
   is MIN-NODE — it then runs local, costing no remote accesses;
   otherwise take one from the largest affinity group, which keeps the
   remaining groups as balanceable as possible;
4. migrate it to MIN-NODE and bump that node's ``reassigned_load``.

LLC-FR VCPUs are left to the default Credit policy: they are
insensitive to cache and memory placement, so load balance matters
more for them than locality.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Deque, Dict, List, Optional, Tuple

from repro.xen.vcpu import Vcpu, VcpuState, VcpuType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["PartitionDecision", "periodical_partition"]


@dataclass(frozen=True, slots=True)
class PartitionDecision:
    """One Algorithm 1 assignment: a VCPU bound to a node for the period.

    ``affinity`` is the *effective* affinity Algorithm 1 grouped the
    VCPU under: its sampled memory-node affinity, or — for a VCPU the
    analyzer has never sampled — the node it was running on when the
    round started.  Recording the effective value keeps ``local``
    truthful for never-sampled VCPUs assigned to their own node (the
    raw ``None`` affinity used to force ``local=False``, skewing the
    ``partition`` event's ``local=`` count and the page-migration
    streaks built on it).
    """

    vcpu_key: int
    vcpu_type: VcpuType
    affinity: int
    node: int
    local: bool  #: True when node == affinity (no new remote accesses)


def _candidates(
    machine: "Machine",
    eligible: Optional[Callable[[Vcpu], bool]] = None,
) -> List[Vcpu]:
    """Memory-intensive, still-live VCPUs, in stable key order.

    ``eligible`` further filters the pool — the hardened vProbe passes
    its telemetry-confidence gate here so VCPUs with stale or dropped
    PMU data are never migrated on untrusted classifications.
    """
    return [
        v
        for v in machine.vcpus
        if v.state is not VcpuState.DONE
        and v.workload.active
        and v.vcpu_type.memory_intensive
        and (eligible is None or eligible(v))
    ]


def periodical_partition(
    machine: "Machine",
    now: float,
    eligible: Optional[Callable[[Vcpu], bool]] = None,
) -> List[PartitionDecision]:
    """Run Algorithm 1 and perform the resulting migrations.

    Returns the assignment list so the caller (the vProbe policy) can
    charge overhead proportional to the work done and tests can check
    the invariants (even spread, affinity preference).  ``eligible``
    (optional) restricts which VCPUs Algorithm 1 may touch; the
    default considers every memory-intensive live VCPU, as the paper
    specifies.
    """
    num_nodes = machine.topology.num_nodes
    unassigned = _candidates(machine, eligible)

    # groupOfVc(c, p): unassigned VCPUs of type c with affinity p.
    # Affinity None (never sampled) is grouped under the VCPU's current
    # node so brand-new VCPUs still participate.  The effective affinity
    # is captured *here*, per VCPU, because the assignment loop below
    # migrates VCPUs as it goes — by decision time ``vcpu.pcpu`` already
    # points at the target, so recomputing the fallback there would lie.
    groups: Dict[Tuple[VcpuType, int], Deque[Vcpu]] = {}
    effective_affinity: Dict[int, int] = {}
    for vcpu in unassigned:
        affinity = vcpu.node_affinity
        if affinity is None:
            affinity = machine.topology.node_of_pcpu(vcpu.pcpu or 0)
        effective_affinity[vcpu.key] = affinity
        groups.setdefault((vcpu.vcpu_type, affinity), deque()).append(vcpu)

    remaining = {VcpuType.LLC_T: 0, VcpuType.LLC_FI: 0}
    for (vtype, _), dq in groups.items():
        remaining[vtype] += len(dq)

    reassigned_load = [0] * num_nodes
    decisions: List[PartitionDecision] = []

    total = len(unassigned)
    for _ in range(total):
        # MIN-NODE: fewest reassigned VCPUs (ties: lowest id).
        min_node = min(range(num_nodes), key=lambda n: (reassigned_load[n], n))

        # Type preference: LLC-T while any remain, else LLC-FI.
        vtype = VcpuType.LLC_T if remaining[VcpuType.LLC_T] > 0 else VcpuType.LLC_FI

        # Prefer the group local to MIN-NODE; else the largest group.
        local_group = groups.get((vtype, min_node))
        if local_group:
            vcpu = local_group.popleft()
        else:
            best_node = max(
                range(num_nodes),
                key=lambda n: (len(groups.get((vtype, n), ())), -n),
            )
            vcpu = groups[(vtype, best_node)].popleft()
        remaining[vtype] -= 1

        affinity = effective_affinity[vcpu.key]
        target = machine.least_loaded_pcpu(min_node)
        vcpu.assigned_node = min_node
        machine.migrate_vcpu(vcpu, target.pcpu_id, now, reason="partition")
        decisions.append(
            PartitionDecision(
                vcpu_key=vcpu.key,
                vcpu_type=vcpu.vcpu_type,
                affinity=affinity,
                node=min_node,
                local=affinity == min_node,
            )
        )
        reassigned_load[min_node] += 1

    if machine.auditor is not None:
        machine.auditor.check_partition(machine, now, reassigned_load, decisions)

    machine.log.emit(
        now,
        "partition",
        assigned=len(decisions),
        local=sum(1 for d in decisions if d.local),
    )
    return decisions
