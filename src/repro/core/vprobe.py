"""The assembled vProbe scheduler and its ablation variants.

vProbe = Credit scheduler + PMU data analyzer + VCPU periodical
partitioning + NUMA-aware load balance (§III-A, Fig. 2).  The paper's
evaluation additionally runs each mechanism alone:

* **VCPU-P** — partitioning only; load balancing stays NUMA-blind, so
  the balance the partitioner builds erodes between sampling periods;
* **LB** — NUMA-aware load balance only; no partitioning, so LLC-heavy
  VCPUs can still pile onto one socket.

Overhead is charged faithfully (it is the subject of Table III): PMU
save/restore around context switches and 10 ms refreshes, plus the
partitioning pass itself, all consume hypervisor time on the PCPUs
where they run.

A **hardened** variant (``vprobe-h``, :func:`vprobe_hardened`) degrades
gracefully when telemetry lies: classification switches require
``hysteresis_windows`` consecutive agreeing samples, and each VCPU
carries a confidence score that decays while its PMU windows are
dropped or empty.  Below ``min_confidence`` the scheduler stops making
NUMA decisions *for that VCPU* — no partition migrations, Credit wake
placement, zero pressure in steal ranking — so with telemetry fully
dead vProbe-h converges to stock Credit behaviour instead of thrashing
on garbage.  The defaults (windows=1, min_confidence=0) reproduce the
paper's trusting scheduler bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.analyzer import PmuAnalyzer
from repro.core.balance import numa_aware_steal
from repro.core.bounds import DynamicBounds
from repro.core.classify import Bounds
from repro.core.partition import periodical_partition
from repro.xen.credit import CreditParams, CreditScheduler
from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu
from repro.util.validation import check_non_negative

__all__ = [
    "VProbeParams",
    "VProbeScheduler",
    "vprobe",
    "vprobe_hardened",
    "vcpu_partition_only",
    "load_balance_only",
]


@dataclass(frozen=True, slots=True)
class VProbeParams:
    """vProbe tuning knobs beyond the Credit parameters.

    Attributes
    ----------
    bounds:
        Eq. 3 classification bounds (low=3, high=20 per §IV-A).
    enable_partition:
        Run Algorithm 1 each sampling period.
    enable_numa_lb:
        Use Algorithm 2 for idle stealing.
    partition_cost_per_vcpu_s:
        Hypervisor time per VCPU examined by the partitioner.
    dynamic_bounds:
        Enable the §VI future-work extension: adapt ``bounds`` to the
        observed pressure distribution each period.
    page_migration:
        Enable the §VI combined-strategy extension: when Algorithm 1 is
        forced to place a VCPU away from its affinity node (the even
        spread outranks locality), migrate a fraction of its hot pages
        to the assigned node instead of leaving them remote.  Copying
        costs hypervisor time (``page_copy_bandwidth``), which is why
        the paper calls page migration "expensive" relative to VCPU
        migration — the cost is charged and shows up in the overhead
        accounting.
    page_migration_fraction:
        Fraction of the hot slice copied per period for a forced-remote
        VCPU.
    page_copy_bandwidth:
        Effective page-copy bandwidth in bytes/second.
    page_migration_patience:
        Consecutive periods a VCPU must stay forced-remote *on the same
        node* before its pages follow.  Without this hysteresis the
        pages chase Algorithm 1's marginal assignments (which can flip
        node every period) and end up spread across both sockets —
        worse than not migrating at all, and a concrete form of the
        cost the paper's §VI warns about.
    hysteresis_windows:
        Consecutive sampling windows a VCPU must spend in a new Eq. 3
        class before its committed type switches.  1 = the paper's
        immediate reclassification.
    min_confidence:
        Telemetry-confidence threshold in [0, 1] below which the
        scheduler falls back to stock Credit behaviour for a VCPU.
        0 disables the gate (every reading is trusted, as the paper
        assumes).
    confidence_decay:
        EMA weight of the analyzer's confidence score, in (0, 1).
    reject_implausible:
        Discard PMU windows whose counters are physically impossible
        (more instructions than the clock allows, absurd Eq. 2
        pressure) as if they had been dropped.  Inert on healthy
        telemetry; see :class:`~repro.core.analyzer.PmuAnalyzer`.
    """

    bounds: Bounds = Bounds()
    enable_partition: bool = True
    enable_numa_lb: bool = True
    partition_cost_per_vcpu_s: float = 3.0e-6
    dynamic_bounds: bool = False
    page_migration: bool = False
    page_migration_fraction: float = 0.25
    page_copy_bandwidth: float = 2.0e9
    page_migration_patience: int = 2
    hysteresis_windows: int = 1
    min_confidence: float = 0.0
    confidence_decay: float = 0.5
    reject_implausible: bool = False

    def __post_init__(self) -> None:
        check_non_negative(self.partition_cost_per_vcpu_s, "partition_cost_per_vcpu_s")
        check_non_negative(self.page_migration_fraction, "page_migration_fraction")
        if self.page_migration_fraction > 1:
            raise ValueError("page_migration_fraction must be <= 1")
        if self.page_copy_bandwidth <= 0:
            raise ValueError("page_copy_bandwidth must be > 0")
        if self.page_migration_patience < 1:
            raise ValueError("page_migration_patience must be >= 1")
        if self.hysteresis_windows < 1:
            raise ValueError("hysteresis_windows must be >= 1")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ValueError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )
        if not 0.0 < self.confidence_decay < 1.0:
            raise ValueError(
                f"confidence_decay must be in (0, 1), got {self.confidence_decay}"
            )

    @property
    def hardened(self) -> bool:
        """True when any graceful-degradation defence is active."""
        return (
            self.hysteresis_windows > 1
            or self.min_confidence > 0.0
            or self.reject_implausible
        )


class VProbeScheduler(CreditScheduler):
    """NUMA-aware VCPU scheduler (the paper's contribution)."""

    name = "vprobe"
    collects_pmu = True

    def __init__(
        self,
        params: CreditParams | None = None,
        vparams: VProbeParams | None = None,
    ) -> None:
        super().__init__(params)
        self.vparams = vparams or VProbeParams()
        self.analyzer = PmuAnalyzer(
            self.vparams.bounds,
            hysteresis_windows=self.vparams.hysteresis_windows,
            confidence_decay=self.vparams.confidence_decay,
            reject_implausible=self.vparams.reject_implausible,
        )
        self._dynamic = DynamicBounds(self.vparams.bounds) if self.vparams.dynamic_bounds else None
        #: per-VCPU (node, consecutive forced-remote periods) for the
        #: page-migration hysteresis
        self._remote_streak: dict[int, tuple[int, int]] = {}
        # Ablation variants advertise their own name.
        if not self.vparams.enable_partition and self.vparams.enable_numa_lb:
            self.name = "lb"
        elif self.vparams.enable_partition and not self.vparams.enable_numa_lb:
            self.name = "vcpu-p"
        elif self.vparams.hardened:
            self.name = "vprobe-h"

    # ------------------------------------------------------------------
    # Tick fusion
    # ------------------------------------------------------------------
    def tick_is_quiescent(self, tick_index: int) -> bool:
        """Stock Credit ticks, except under hardening.

        vProbe never overrides ``on_tick`` — its probing work rides the
        1 s sampling boundary, which caps every fused horizon anyway —
        so plain variants inherit Credit's stock-arithmetic promise.
        The hardened variant (``vprobe-h``) conservatively refuses:
        its confidence/hysteresis bookkeeping entangles per-VCPU Credit
        fallback with telemetry state, and keeping it off the fused
        path keeps the quiescence proof obligations to the stock
        arithmetic only.
        """
        if self.vparams.hardened:
            return False
        return super().tick_is_quiescent(tick_index)

    # ------------------------------------------------------------------
    # Telemetry trust
    # ------------------------------------------------------------------
    def trusted(self, vcpu: Vcpu) -> bool:
        """Whether this VCPU's telemetry clears the confidence gate.

        Always True when the gate is disabled (``min_confidence=0``) —
        the paper's trusting behaviour.
        """
        if self.vparams.min_confidence <= 0.0:
            return True
        return self.analyzer.confidence(vcpu.key) >= self.vparams.min_confidence

    # ------------------------------------------------------------------
    # Sampling period: analyze, (re)classify, partition
    # ------------------------------------------------------------------
    def on_sample_period(self, now: float) -> None:
        machine = self.machine
        assert machine is not None
        profiler = machine.profiler

        t0 = profiler.start()
        samples = self.analyzer.analyze(machine)

        if self._dynamic is not None:
            pressures = [s.llc_pressure for s in samples if s.instructions > 0]
            self.analyzer.bounds = self._dynamic.update(pressures)
        profiler.stop("analyzer", t0)

        if self.vparams.enable_partition:
            t0 = profiler.start()
            eligible = None
            if self.vparams.min_confidence > 0.0:
                eligible = self.trusted
                # A VCPU whose telemetry went stale must not keep an old
                # partition assignment pinning it to a node the evidence
                # for which has expired — release it back to Credit.
                for vcpu in machine.vcpus:
                    if vcpu.assigned_node is not None and not self.trusted(vcpu):
                        vcpu.assigned_node = None
            decisions = periodical_partition(machine, now, eligible=eligible)
            cost = self.vparams.partition_cost_per_vcpu_s * len(decisions)
            # The partitioning pass runs on one PCPU (dom0's), eating
            # its guest time — the Table III "overhead time".
            machine.charge_overhead("partition", machine.pcpus[0], cost)

            if self.vparams.page_migration:
                self._migrate_pages(machine, now, decisions)
            profiler.stop("partition", t0)

    def _migrate_pages(self, machine, now: float, decisions) -> None:
        """§VI combined strategy: pull forced-remote VCPUs' pages local.

        For each VCPU Algorithm 1 had to place off its affinity node,
        copy a fraction of its hot slice to the assigned node and
        charge the copy time.
        """
        for decision in decisions:
            if decision.local:
                self._remote_streak.pop(decision.vcpu_key, None)
                continue
            node, streak = self._remote_streak.get(decision.vcpu_key, (decision.node, 0))
            streak = streak + 1 if node == decision.node else 1
            self._remote_streak[decision.vcpu_key] = (decision.node, streak)
            if streak < self.vparams.page_migration_patience:
                continue
            vcpu = machine.vcpus[decision.vcpu_key]
            workload = vcpu.workload
            moved = vcpu.domain.placement.migrate_slice(
                workload.slice_id,
                decision.node,
                self.vparams.page_migration_fraction,
                vcpu.domain.slice_bytes,
            )
            if moved <= 0:
                continue
            cost = moved / self.vparams.page_copy_bandwidth
            machine.charge_overhead("page_migration", machine.pcpus[0], cost)
            machine.log.emit(
                now,
                "page_migration",
                vcpu=vcpu.name,
                to_node=decision.node,
                bytes=moved,
            )

    # ------------------------------------------------------------------
    # Idle stealing: Algorithm 2
    # ------------------------------------------------------------------
    def steal(self, pcpu: Pcpu, now: float, under_only: bool = False) -> Optional[Vcpu]:
        # ``under_only`` stays in the policy interface (the machine's
        # call sites pass it, and Credit's balancer honours it) but
        # Algorithm 2 ranks by pressure, not credit priority.
        machine = self.machine
        assert machine is not None
        if self.vparams.enable_numa_lb:
            pressure_of = None
            if self.vparams.min_confidence > 0.0:
                pressure_of = self._gated_pressure
            return numa_aware_steal(machine, pcpu, now, pressure_of=pressure_of)
        return super().steal(pcpu, now, under_only=under_only)

    def _gated_pressure(self, vcpu: Vcpu) -> float:
        """Steal-ranking pressure: 0 when the reading can't be trusted.

        An untrusted VCPU ranks as cache-light, so Algorithm 2 prefers
        moving it — exactly Credit's indifference — rather than letting
        a stale high pressure protect it from migration.
        """
        return vcpu.llc_pressure if self.trusted(vcpu) else 0.0

    # ------------------------------------------------------------------
    # Wake placement: the NUMA-aware balancer also serves wake pulls
    # ------------------------------------------------------------------
    def on_vcpu_wake(self, vcpu: Vcpu, now: float) -> int:
        """Keep a waking VCPU on its node (assigned node if partitioned).

        In Xen, the idler that reacts to a wake tickle pulls the VCPU
        through the same load-balance path Algorithm 2 replaces, so
        with the NUMA-aware balancer enabled a wake lands on the least
        loaded PCPU of the VCPU's current (or partition-assigned) node
        instead of bouncing NUMA-blind.
        """
        machine = self.machine
        assert machine is not None
        if not self.vparams.enable_numa_lb:
            return super().on_vcpu_wake(vcpu, now)
        if self.vparams.min_confidence > 0.0 and not self.trusted(vcpu):
            # No believable affinity data: place the wake exactly the
            # way stock Credit would.
            return super().on_vcpu_wake(vcpu, now)
        if self.vparams.enable_partition and vcpu.assigned_node is not None:
            node = vcpu.assigned_node
        elif vcpu.pcpu is not None:
            node = machine.topology.node_of_pcpu(vcpu.pcpu)
        else:
            node = 0
        return machine.least_loaded_pcpu(node).pcpu_id

    # ------------------------------------------------------------------
    # Context switches: Perfctr-Xen counter save/restore cost
    # ------------------------------------------------------------------
    def on_context_switch(self, pcpu: Pcpu, prev: Optional[Vcpu], nxt: Optional[Vcpu]) -> None:
        machine = self.machine
        assert machine is not None
        machine.charge_overhead("pmu", pcpu, machine.pmu.record_collection())


def vprobe(
    params: CreditParams | None = None,
    bounds: Bounds | None = None,
    dynamic_bounds: bool = False,
    page_migration: bool = False,
) -> VProbeScheduler:
    """Full vProbe: analyzer + partitioning + NUMA-aware load balance.

    ``page_migration`` additionally enables the §VI combined strategy.
    """
    return VProbeScheduler(
        params,
        VProbeParams(
            bounds=bounds or Bounds(),
            dynamic_bounds=dynamic_bounds,
            page_migration=page_migration,
        ),
    )


def vprobe_hardened(
    params: CreditParams | None = None,
    bounds: Bounds | None = None,
    hysteresis_windows: int = 2,
    min_confidence: float = 0.02,
    confidence_decay: float = 0.9,
    reject_implausible: bool = False,
) -> VProbeScheduler:
    """vProbe with graceful telemetry degradation (``vprobe-h``).

    Identical to :func:`vprobe` while the PMU behaves; under sample
    dropout, counter noise or saturation it debounces type flips and
    falls back per-VCPU to stock Credit decisions once confidence in
    that VCPU's telemetry decays below ``min_confidence``.  The low
    threshold plus slow decay make the gate a *sustained-outage*
    detector: flaky-but-live telemetry keeps vProbe's mechanisms
    active, only a PMU that has been silent for dozens of consecutive
    periods revokes trust.

    ``reject_implausible`` additionally discards physically impossible
    counter windows.  It is off by default: measurements show it helps
    when corruption is occasional (most windows clean, the filter
    removes the wild outliers) but hurts when corruption dominates —
    the gaps it creates starve classification more than the surviving
    garbage would have cost.
    """
    return VProbeScheduler(
        params,
        VProbeParams(
            bounds=bounds or Bounds(),
            hysteresis_windows=hysteresis_windows,
            min_confidence=min_confidence,
            confidence_decay=confidence_decay,
            reject_implausible=reject_implausible,
        ),
    )


def vcpu_partition_only(
    params: CreditParams | None = None, bounds: Bounds | None = None
) -> VProbeScheduler:
    """The paper's VCPU-P ablation: partitioning, NUMA-blind balancing."""
    return VProbeScheduler(
        params,
        VProbeParams(bounds=bounds or Bounds(), enable_numa_lb=False),
    )


def load_balance_only(
    params: CreditParams | None = None, bounds: Bounds | None = None
) -> VProbeScheduler:
    """The paper's LB ablation: NUMA-aware balancing, no partitioning."""
    return VProbeScheduler(
        params,
        VProbeParams(bounds=bounds or Bounds(), enable_partition=False),
    )
