"""The assembled vProbe scheduler and its ablation variants.

vProbe = Credit scheduler + PMU data analyzer + VCPU periodical
partitioning + NUMA-aware load balance (§III-A, Fig. 2).  The paper's
evaluation additionally runs each mechanism alone:

* **VCPU-P** — partitioning only; load balancing stays NUMA-blind, so
  the balance the partitioner builds erodes between sampling periods;
* **LB** — NUMA-aware load balance only; no partitioning, so LLC-heavy
  VCPUs can still pile onto one socket.

Overhead is charged faithfully (it is the subject of Table III): PMU
save/restore around context switches and 10 ms refreshes, plus the
partitioning pass itself, all consume hypervisor time on the PCPUs
where they run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.analyzer import PmuAnalyzer
from repro.core.balance import numa_aware_steal
from repro.core.bounds import DynamicBounds
from repro.core.classify import Bounds
from repro.core.partition import periodical_partition
from repro.xen.credit import CreditParams, CreditScheduler
from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu
from repro.util.validation import check_non_negative

__all__ = [
    "VProbeParams",
    "VProbeScheduler",
    "vprobe",
    "vcpu_partition_only",
    "load_balance_only",
]


@dataclass(frozen=True, slots=True)
class VProbeParams:
    """vProbe tuning knobs beyond the Credit parameters.

    Attributes
    ----------
    bounds:
        Eq. 3 classification bounds (low=3, high=20 per §IV-A).
    enable_partition:
        Run Algorithm 1 each sampling period.
    enable_numa_lb:
        Use Algorithm 2 for idle stealing.
    partition_cost_per_vcpu_s:
        Hypervisor time per VCPU examined by the partitioner.
    dynamic_bounds:
        Enable the §VI future-work extension: adapt ``bounds`` to the
        observed pressure distribution each period.
    page_migration:
        Enable the §VI combined-strategy extension: when Algorithm 1 is
        forced to place a VCPU away from its affinity node (the even
        spread outranks locality), migrate a fraction of its hot pages
        to the assigned node instead of leaving them remote.  Copying
        costs hypervisor time (``page_copy_bandwidth``), which is why
        the paper calls page migration "expensive" relative to VCPU
        migration — the cost is charged and shows up in the overhead
        accounting.
    page_migration_fraction:
        Fraction of the hot slice copied per period for a forced-remote
        VCPU.
    page_copy_bandwidth:
        Effective page-copy bandwidth in bytes/second.
    page_migration_patience:
        Consecutive periods a VCPU must stay forced-remote *on the same
        node* before its pages follow.  Without this hysteresis the
        pages chase Algorithm 1's marginal assignments (which can flip
        node every period) and end up spread across both sockets —
        worse than not migrating at all, and a concrete form of the
        cost the paper's §VI warns about.
    """

    bounds: Bounds = Bounds()
    enable_partition: bool = True
    enable_numa_lb: bool = True
    partition_cost_per_vcpu_s: float = 3.0e-6
    dynamic_bounds: bool = False
    page_migration: bool = False
    page_migration_fraction: float = 0.25
    page_copy_bandwidth: float = 2.0e9
    page_migration_patience: int = 2

    def __post_init__(self) -> None:
        check_non_negative(self.partition_cost_per_vcpu_s, "partition_cost_per_vcpu_s")
        check_non_negative(self.page_migration_fraction, "page_migration_fraction")
        if self.page_migration_fraction > 1:
            raise ValueError("page_migration_fraction must be <= 1")
        if self.page_copy_bandwidth <= 0:
            raise ValueError("page_copy_bandwidth must be > 0")
        if self.page_migration_patience < 1:
            raise ValueError("page_migration_patience must be >= 1")


class VProbeScheduler(CreditScheduler):
    """NUMA-aware VCPU scheduler (the paper's contribution)."""

    name = "vprobe"
    collects_pmu = True

    def __init__(
        self,
        params: CreditParams | None = None,
        vparams: VProbeParams | None = None,
    ) -> None:
        super().__init__(params)
        self.vparams = vparams or VProbeParams()
        self.analyzer = PmuAnalyzer(self.vparams.bounds)
        self._dynamic = DynamicBounds(self.vparams.bounds) if self.vparams.dynamic_bounds else None
        #: per-VCPU (node, consecutive forced-remote periods) for the
        #: page-migration hysteresis
        self._remote_streak: dict[int, tuple[int, int]] = {}
        # Ablation variants advertise their own name.
        if not self.vparams.enable_partition and self.vparams.enable_numa_lb:
            self.name = "lb"
        elif self.vparams.enable_partition and not self.vparams.enable_numa_lb:
            self.name = "vcpu-p"

    # ------------------------------------------------------------------
    # Sampling period: analyze, (re)classify, partition
    # ------------------------------------------------------------------
    def on_sample_period(self, now: float) -> None:
        machine = self.machine
        assert machine is not None

        samples = self.analyzer.analyze(machine)

        if self._dynamic is not None:
            pressures = [s.llc_pressure for s in samples if s.instructions > 0]
            self.analyzer.bounds = self._dynamic.update(pressures)

        if self.vparams.enable_partition:
            decisions = periodical_partition(machine, now)
            cost = self.vparams.partition_cost_per_vcpu_s * len(decisions)
            # The partitioning pass runs on one PCPU (dom0's), eating
            # its guest time — the Table III "overhead time".
            machine.charge_overhead("partition", machine.pcpus[0], cost)

            if self.vparams.page_migration:
                self._migrate_pages(machine, now, decisions)

    def _migrate_pages(self, machine, now: float, decisions) -> None:
        """§VI combined strategy: pull forced-remote VCPUs' pages local.

        For each VCPU Algorithm 1 had to place off its affinity node,
        copy a fraction of its hot slice to the assigned node and
        charge the copy time.
        """
        for decision in decisions:
            if decision.local:
                self._remote_streak.pop(decision.vcpu_key, None)
                continue
            node, streak = self._remote_streak.get(decision.vcpu_key, (decision.node, 0))
            streak = streak + 1 if node == decision.node else 1
            self._remote_streak[decision.vcpu_key] = (decision.node, streak)
            if streak < self.vparams.page_migration_patience:
                continue
            vcpu = machine.vcpus[decision.vcpu_key]
            workload = vcpu.workload
            moved = vcpu.domain.placement.migrate_slice(
                workload.slice_id,
                decision.node,
                self.vparams.page_migration_fraction,
                vcpu.domain.slice_bytes,
            )
            if moved <= 0:
                continue
            cost = moved / self.vparams.page_copy_bandwidth
            machine.charge_overhead("page_migration", machine.pcpus[0], cost)
            machine.log.emit(
                now,
                "page_migration",
                vcpu=vcpu.name,
                to_node=decision.node,
                bytes=moved,
            )

    # ------------------------------------------------------------------
    # Idle stealing: Algorithm 2
    # ------------------------------------------------------------------
    def steal(self, pcpu: Pcpu, now: float, under_only: bool = False) -> Optional[Vcpu]:
        machine = self.machine
        assert machine is not None
        if self.vparams.enable_numa_lb:
            return numa_aware_steal(machine, pcpu, now, under_only=under_only)
        return super().steal(pcpu, now, under_only=under_only)

    # ------------------------------------------------------------------
    # Wake placement: the NUMA-aware balancer also serves wake pulls
    # ------------------------------------------------------------------
    def on_vcpu_wake(self, vcpu: Vcpu, now: float) -> int:
        """Keep a waking VCPU on its node (assigned node if partitioned).

        In Xen, the idler that reacts to a wake tickle pulls the VCPU
        through the same load-balance path Algorithm 2 replaces, so
        with the NUMA-aware balancer enabled a wake lands on the least
        loaded PCPU of the VCPU's current (or partition-assigned) node
        instead of bouncing NUMA-blind.
        """
        machine = self.machine
        assert machine is not None
        if not self.vparams.enable_numa_lb:
            return super().on_vcpu_wake(vcpu, now)
        if self.vparams.enable_partition and vcpu.assigned_node is not None:
            node = vcpu.assigned_node
        elif vcpu.pcpu is not None:
            node = machine.topology.node_of_pcpu(vcpu.pcpu)
        else:
            node = 0
        return machine.least_loaded_pcpu(node).pcpu_id

    # ------------------------------------------------------------------
    # Context switches: Perfctr-Xen counter save/restore cost
    # ------------------------------------------------------------------
    def on_context_switch(self, pcpu: Pcpu, prev: Optional[Vcpu], nxt: Optional[Vcpu]) -> None:
        machine = self.machine
        assert machine is not None
        machine.charge_overhead("pmu", pcpu, machine.pmu.record_collection())


def vprobe(
    params: CreditParams | None = None,
    bounds: Bounds | None = None,
    dynamic_bounds: bool = False,
    page_migration: bool = False,
) -> VProbeScheduler:
    """Full vProbe: analyzer + partitioning + NUMA-aware load balance.

    ``page_migration`` additionally enables the §VI combined strategy.
    """
    return VProbeScheduler(
        params,
        VProbeParams(
            bounds=bounds or Bounds(),
            dynamic_bounds=dynamic_bounds,
            page_migration=page_migration,
        ),
    )


def vcpu_partition_only(
    params: CreditParams | None = None, bounds: Bounds | None = None
) -> VProbeScheduler:
    """The paper's VCPU-P ablation: partitioning, NUMA-blind balancing."""
    return VProbeScheduler(
        params,
        VProbeParams(bounds=bounds or Bounds(), enable_numa_lb=False),
    )


def load_balance_only(
    params: CreditParams | None = None, bounds: Bounds | None = None
) -> VProbeScheduler:
    """The paper's LB ablation: NUMA-aware balancing, no partitioning."""
    return VProbeScheduler(
        params,
        VProbeParams(bounds=bounds or Bounds(), enable_partition=False),
    )
