"""VCPU classification by LLC access pressure (§III-B2, Eq. 2-3).

The paper measures *LLC access pressure*::

    R_LLCref = LLC_ref / Instr_retired * alpha        (Eq. 2)

with alpha = 1000, i.e. LLC references per kilo-instruction — chosen
over the LLC *miss* rate because the miss rate is unstable under
interference while the reference rate is a property of the program.
Two bounds split VCPUs into three classes (Eq. 3)::

    LLC-FR  if R < low           (friendly: negligible LLC demand)
    LLC-FI  if low <= R < high   (fitting: hurt by contention)
    LLC-T   if R >= high         (thrashing: misses heavily anyway)

§IV-A derives low = 3 and high = 20 from solo measurements of povray
(0.48), ep (2.01), lu (15.38), mg (16.33), milc (21.68) and
libquantum (22.41).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.xen.vcpu import VcpuType
from repro.util.validation import check_non_negative, check_positive

__all__ = ["DEFAULT_ALPHA", "Bounds", "llc_access_pressure", "classify"]

#: Eq. 2 scale constant: pressure = references per 1000 instructions.
DEFAULT_ALPHA = 1000.0


@dataclass(frozen=True, slots=True)
class Bounds:
    """The (low, high) classification bounds of Eq. 3.

    Defaults are the §IV-A empirical values for the E5620 host.
    """

    low: float = 3.0
    high: float = 20.0

    def __post_init__(self) -> None:
        check_non_negative(self.low, "low")
        check_positive(self.high, "high")
        if self.low >= self.high:
            raise ValueError(
                f"bounds must satisfy low < high, got low={self.low}, high={self.high}"
            )


def llc_access_pressure(
    llc_refs: float, instructions: float, alpha: float = DEFAULT_ALPHA
) -> float:
    """Eq. 2: LLC references per ``alpha`` instructions.

    Returns 0 when no instructions retired in the window (a VCPU that
    never ran cannot be judged and defaults to the friendly class).
    """
    check_non_negative(llc_refs, "llc_refs")
    check_non_negative(instructions, "instructions")
    check_positive(alpha, "alpha")
    if instructions <= 0:
        return 0.0
    return llc_refs / instructions * alpha


def classify(pressure: float, bounds: Bounds | None = None) -> VcpuType:
    """Eq. 3: map an LLC access pressure onto a VCPU type."""
    check_non_negative(pressure, "pressure")
    b = bounds or Bounds()
    if pressure < b.low:
        return VcpuType.LLC_FR
    if pressure < b.high:
        return VcpuType.LLC_FI
    return VcpuType.LLC_T
