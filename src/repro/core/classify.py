"""VCPU classification by LLC access pressure (§III-B2, Eq. 2-3).

The paper measures *LLC access pressure*::

    R_LLCref = LLC_ref / Instr_retired * alpha        (Eq. 2)

with alpha = 1000, i.e. LLC references per kilo-instruction — chosen
over the LLC *miss* rate because the miss rate is unstable under
interference while the reference rate is a property of the program.
Two bounds split VCPUs into three classes (Eq. 3)::

    LLC-FR  if R < low           (friendly: negligible LLC demand)
    LLC-FI  if low <= R < high   (fitting: hurt by contention)
    LLC-T   if R >= high         (thrashing: misses heavily anyway)

§IV-A derives low = 3 and high = 20 from solo measurements of povray
(0.48), ep (2.01), lu (15.38), mg (16.33), milc (21.68) and
libquantum (22.41).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set, Tuple

from repro.xen.vcpu import VcpuType
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "DEFAULT_ALPHA",
    "Bounds",
    "llc_access_pressure",
    "classify",
    "TypeHysteresis",
]

#: Eq. 2 scale constant: pressure = references per 1000 instructions.
DEFAULT_ALPHA = 1000.0


@dataclass(frozen=True, slots=True)
class Bounds:
    """The (low, high) classification bounds of Eq. 3.

    Defaults are the §IV-A empirical values for the E5620 host.
    """

    low: float = 3.0
    high: float = 20.0

    def __post_init__(self) -> None:
        check_non_negative(self.low, "low")
        check_positive(self.high, "high")
        if self.low >= self.high:
            raise ValueError(
                f"bounds must satisfy low < high, got low={self.low}, high={self.high}"
            )


def llc_access_pressure(
    llc_refs: float, instructions: float, alpha: float = DEFAULT_ALPHA
) -> float:
    """Eq. 2: LLC references per ``alpha`` instructions.

    Returns 0 when no instructions retired in the window (a VCPU that
    never ran cannot be judged and defaults to the friendly class).
    """
    check_non_negative(llc_refs, "llc_refs")
    check_non_negative(instructions, "instructions")
    check_positive(alpha, "alpha")
    if instructions <= 0:
        return 0.0
    return llc_refs / instructions * alpha


def classify(pressure: float, bounds: Bounds | None = None) -> VcpuType:
    """Eq. 3: map an LLC access pressure onto a VCPU type."""
    check_non_negative(pressure, "pressure")
    b = bounds or Bounds()
    if pressure < b.low:
        return VcpuType.LLC_FR
    if pressure < b.high:
        return VcpuType.LLC_FI
    return VcpuType.LLC_T


class TypeHysteresis:
    """Debounce Eq. 3 classifications: commit a switch only after the
    raw class disagrees with the committed one for ``windows``
    consecutive samples.

    Eq. 3 is a pair of hard thresholds; under noisy or saturated
    counters a VCPU near a bound flips class every sampling period,
    and each flip can trigger a partitioning migration — telemetry
    jitter becomes placement thrash.  Hysteresis makes a flip cost K
    agreeing windows: one corrupted sample can no longer move a VCPU.

    A key's *first* sample always commits immediately: before it there
    is no committed classification to defend, only the synthetic
    default every VCPU is born with, and making the first real
    observation wait K windows would just delay partitioning at
    startup (badly so under dropout, where accumulating K consecutive
    agreeing windows can take most of a run).

    ``windows=1`` commits every sample immediately, reproducing plain
    :func:`classify` bit for bit (the naive-vProbe default).
    """

    def __init__(self, windows: int = 1) -> None:
        if windows < 1:
            raise ValueError(f"windows must be >= 1, got {windows}")
        self.windows = windows
        #: per-key (candidate type, consecutive windows seen) while a
        #: switch is pending
        self._pending: Dict[int, Tuple[VcpuType, int]] = {}
        #: keys that have committed at least one observed sample
        self._seen: Set[int] = set()

    def update(self, key: int, committed: VcpuType, raw: VcpuType) -> VcpuType:
        """Fold one raw classification into ``key``'s committed type.

        Returns the type the caller should adopt: ``raw`` on the first
        observed sample or once it has held for ``windows`` consecutive
        samples, else ``committed``.
        """
        if key not in self._seen:
            self._seen.add(key)
            self._pending.pop(key, None)
            return raw
        if raw is committed:
            self._pending.pop(key, None)
            return committed
        candidate, streak = self._pending.get(key, (raw, 0))
        streak = streak + 1 if candidate is raw else 1
        if streak >= self.windows:
            self._pending.pop(key, None)
            return raw
        self._pending[key] = (raw, streak)
        return committed

    def reset(self, key: int) -> None:
        """Forget everything about ``key`` (e.g. VCPU destroyed)."""
        self._pending.pop(key, None)
        self._seen.discard(key)

    def pending(self, key: int) -> Tuple[VcpuType, int] | None:
        """The (candidate, streak) pending for ``key``, if any."""
        return self._pending.get(key)
