"""repro — a reproduction of *vProbe: Scheduling Virtual Machines on
NUMA Systems* (Wu et al., IEEE CLUSTER 2016).

The package builds, from scratch, everything the paper's evaluation
needs: a NUMA machine model with shared LLCs, memory controllers and
interconnect (:mod:`repro.hardware`); analytic application profiles
calibrated to the paper's measurements (:mod:`repro.workloads`); a
Xen-4.0.1-style hypervisor substrate with the Credit scheduler and an
epoch-based simulator (:mod:`repro.xen`); the vProbe scheduler and its
ablations (:mod:`repro.core`); the BRM comparison baseline
(:mod:`repro.baselines`); metrics (:mod:`repro.metrics`); and one
experiment module per table/figure (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import quick_comparison
>>> rows = quick_comparison("soplex", schedulers=("credit", "vprobe"))
"""

from repro.hardware import (
    LatencySpec,
    NUMATopology,
    symmetric_topology,
    xeon_e5620,
)
from repro.workloads import (
    ApplicationProfile,
    NPB_PROFILES,
    SPEC_PROFILES,
    get_profile,
    hungry_loop,
    memcached_profile,
    redis_profile,
    scaled_profile,
    synthetic_profile,
)
from repro.xen import (
    CreditParams,
    CreditScheduler,
    Domain,
    Machine,
    MemoryPlacement,
    SimConfig,
    SimResult,
)
from repro.core import (
    Bounds,
    DynamicBounds,
    VProbeScheduler,
    load_balance_only,
    vcpu_partition_only,
    vprobe,
)
from repro.baselines import BRMScheduler
from repro.cache import ResultCache, resolve_cache
from repro.metrics import RunSummary, summarize
from repro.experiments import make_scheduler, quick_comparison
from repro.obs import (
    PhaseProfiler,
    PhaseStat,
    diff_traces,
    read_trace,
    validate_trace_file,
    write_trace,
)

__version__ = "1.2.0"

__all__ = [
    "__version__",
    # hardware
    "NUMATopology",
    "xeon_e5620",
    "symmetric_topology",
    "LatencySpec",
    # workloads
    "ApplicationProfile",
    "SPEC_PROFILES",
    "NPB_PROFILES",
    "get_profile",
    "hungry_loop",
    "memcached_profile",
    "redis_profile",
    "synthetic_profile",
    "scaled_profile",
    # xen
    "Domain",
    "MemoryPlacement",
    "Machine",
    "SimConfig",
    "SimResult",
    "CreditScheduler",
    "CreditParams",
    # core
    "Bounds",
    "DynamicBounds",
    "VProbeScheduler",
    "vprobe",
    "vcpu_partition_only",
    "load_balance_only",
    # baselines
    "BRMScheduler",
    # metrics & experiments
    "RunSummary",
    "summarize",
    "make_scheduler",
    "quick_comparison",
    # result cache
    "ResultCache",
    "resolve_cache",
    # observability
    "PhaseProfiler",
    "PhaseStat",
    "write_trace",
    "read_trace",
    "diff_traces",
    "validate_trace_file",
]
