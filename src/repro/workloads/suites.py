"""Application profiles for the paper's benchmark suites.

Calibration anchors (paper Fig. 3, measured solo on the E5620):

=============  =======  ==========================
Application    RPTI     Class (bounds low=3, high=20)
=============  =======  ==========================
povray (SPEC)  0.48     LLC-FR
ep (NPB)       2.01     LLC-FR
lu (NPB)       15.38    LLC-FI
mg (NPB)       16.33    LLC-FI
milc (SPEC)    21.68    LLC-T
libquantum     22.41    LLC-T
=============  =======  ==========================

The remaining applications (soplex, mcf, bt, cg, sp) are not given RPTI
values in the paper; their parameters are set from their well-known
characterisation literature so that they land in the class the paper's
experiments imply (all are treated as memory-intensive) and keep the
published orderings.

Working sets, miss-rate floors/ceilings and MLP are chosen so that a
solo, locally-pinned run reproduces the Fig. 3 miss-rate ordering:
negligible for the LLC-FR pair, moderate for the LLC-FI pair (they fit
in the 12 MiB socket LLC alone), and high for the LLC-T pair (they
thrash even alone).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.workloads.appmodel import ApplicationProfile, BlockingSpec, PhaseSpec

__all__ = [
    "SPEC_PROFILES",
    "NPB_PROFILES",
    "ALL_PROFILES",
    "EXTRA_PROFILES",
    "get_profile",
    "profile_names",
    "hungry_loop",
    "DEFAULT_TOTAL_INSTRUCTIONS",
]

MIB = 1024**2

#: Default work per VCPU: ~8-15 s solo on the modelled 2.4 GHz core.
DEFAULT_TOTAL_INSTRUCTIONS = 20e9

#: Phase behaviour shared by the memory-intensive applications: phases
#: of a few seconds that occasionally move the hot slice (and therefore
#: the node affinity) — the staleness source for the Fig. 8 sweep.
_MEM_PHASES = PhaseSpec(mean_duration_s=2.5, ws_jitter=0.2, intensity_jitter=0.1, rotate_prob=0.35)

#: Mild phases for compute-bound codes.
_CPU_PHASES = PhaseSpec(mean_duration_s=4.0, ws_jitter=0.1, intensity_jitter=0.05, rotate_prob=0.1)

#: Guest-OS background noise: even CPU-bound guests block briefly for
#: timer interrupts, page-cache writeback and the occasional syscall
#: (~3% blocked time).  These short idles are what trigger Xen's
#: balancer in practice and thus the migration churn of §II-B.
_OS_NOISE = BlockingSpec(run_burst_s=0.040, block_s=0.002)


def _profile(
    name: str,
    cpi: float,
    rpti: float,
    ws_mib: float,
    min_mr: float,
    max_mr: float,
    shape: float,
    mlp: float,
    phases: PhaseSpec,
) -> ApplicationProfile:
    return ApplicationProfile(
        name=name,
        cpi_base=cpi,
        rpti=rpti,
        working_set_bytes=ws_mib * MIB,
        min_miss_rate=min_mr,
        max_miss_rate=max_mr,
        curve_shape=shape,
        mlp=mlp,
        total_instructions=DEFAULT_TOTAL_INSTRUCTIONS,
        slice_concentration=0.85,
        blocking=_OS_NOISE,
        phase=phases,
        touch_rate=0.02 if phases is _CPU_PHASES else 0.10,
    )


#: SPEC CPU2006 single-threaded applications used in §V-B1 and Fig. 3.
#: LLC-FI members keep working sets at or under the 12 MiB socket LLC
#: (they fit alone, thrash when sharing); LLC-T members exceed it.
SPEC_PROFILES: Dict[str, ApplicationProfile] = {
    "povray": _profile("povray", 0.80, 0.48, 1.0, 0.02, 0.30, 1.0, 2.0, _CPU_PHASES),
    "soplex": _profile("soplex", 0.80, 18.50, 10.0, 0.12, 0.82, 1.1, 2.8, _MEM_PHASES),
    "libquantum": _profile("libquantum", 0.70, 22.41, 32.0, 0.50, 0.90, 1.0, 5.0, _MEM_PHASES),
    "mcf": _profile("mcf", 1.00, 24.00, 40.0, 0.45, 0.92, 1.0, 2.2, _MEM_PHASES),
    "milc": _profile("milc", 0.90, 21.68, 28.0, 0.40, 0.88, 1.0, 3.5, _MEM_PHASES),
}

#: NPB multi-threaded kernels used in §V-B2 and Fig. 3 (class-B-like).
NPB_PROFILES: Dict[str, ApplicationProfile] = {
    "ep": _profile("ep", 0.85, 2.01, 2.0, 0.02, 0.35, 1.0, 2.0, _CPU_PHASES),
    "bt": _profile("bt", 0.80, 14.00, 6.0, 0.05, 0.70, 1.3, 3.5, _MEM_PHASES),
    "cg": _profile("cg", 0.85, 19.00, 11.0, 0.10, 0.85, 1.1, 2.8, _MEM_PHASES),
    "lu": _profile("lu", 0.75, 15.38, 7.0, 0.05, 0.75, 1.3, 3.5, _MEM_PHASES),
    "mg": _profile("mg", 0.80, 16.33, 9.0, 0.07, 0.78, 1.3, 3.5, _MEM_PHASES),
    "sp": _profile("sp", 0.78, 17.50, 10.0, 0.07, 0.80, 1.2, 3.2, _MEM_PHASES),
}

#: Applications beyond the paper's evaluated set, parameterised from
#: their general characterisation literature (working-set sizes, LLC
#: behaviour, memory-level parallelism).  They widen the library for
#: users' own studies; no published vProbe numbers exist for them.
EXTRA_PROFILES: Dict[str, ApplicationProfile] = {
    # NPB kernels not in the paper's Fig. 5 selection.
    "ft": _profile("ft", 0.80, 18.50, 16.0, 0.15, 0.85, 1.1, 4.0, _MEM_PHASES),
    "is": _profile("is", 0.90, 21.00, 20.0, 0.35, 0.90, 1.0, 3.0, _MEM_PHASES),
    "ua": _profile("ua", 0.85, 16.00, 9.0, 0.08, 0.80, 1.1, 3.0, _MEM_PHASES),
    # SPEC CPU2006 members outside the paper's four.
    "lbm": _profile("lbm", 0.75, 23.00, 30.0, 0.55, 0.90, 1.0, 6.0, _MEM_PHASES),
    "omnetpp": _profile("omnetpp", 0.95, 17.00, 11.0, 0.12, 0.80, 1.1, 2.0, _MEM_PHASES),
    "gcc": _profile("gcc", 0.90, 8.00, 5.0, 0.05, 0.60, 1.2, 2.5, _CPU_PHASES),
}

ALL_PROFILES: Dict[str, ApplicationProfile] = {
    **SPEC_PROFILES,
    **NPB_PROFILES,
    **EXTRA_PROFILES,
}


def profile_names() -> Tuple[str, ...]:
    """All suite profile names, sorted."""
    return tuple(sorted(ALL_PROFILES))


def get_profile(name: str) -> ApplicationProfile:
    """Look up a suite profile by name.

    Raises
    ------
    KeyError
        With the list of known names when ``name`` is unknown.
    """
    try:
        return ALL_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown profile {name!r}; known: {', '.join(profile_names())}"
        ) from None


def hungry_loop() -> ApplicationProfile:
    """The CPU-burning busy loop VM3 runs to soak up CPU (§II-B, §V-A).

    Nearly no LLC traffic (classifies LLC-FR), never blocks, never
    finishes — exists purely to keep every PCPU busy so the load
    balancer has work to do.
    """
    return ApplicationProfile(
        name="hungry-loop",
        cpi_base=0.70,
        rpti=0.05,
        working_set_bytes=64 * 1024,
        min_miss_rate=0.01,
        max_miss_rate=0.05,
        curve_shape=1.0,
        mlp=1.0,
        total_instructions=None,
        slice_concentration=0.5,
        phase=None,
        touch_rate=0.0,
    )
