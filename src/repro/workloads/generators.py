"""Synthetic workload generators.

Used by tests and ablation benches to construct applications with a
prescribed LLC class or to rescale suite profiles so an experiment
finishes quickly without changing its relative behaviour.
"""

from __future__ import annotations

from typing import Literal

from repro.workloads.appmodel import ApplicationProfile, PhaseSpec
from repro.util.validation import check_positive

__all__ = ["synthetic_profile", "scaled_profile", "CLASS_PRESETS"]

MIB = 1024**2

#: Parameter presets per LLC class: (rpti, ws_mib, min_mr, max_mr).
#: RPTI values sit safely inside the paper's class bounds (3 and 20).
CLASS_PRESETS = {
    "llc-fr": (1.0, 0.5, 0.02, 0.20),
    "llc-fi": (12.0, 9.0, 0.06, 0.70),
    "llc-t": (25.0, 36.0, 0.45, 0.90),
}


def synthetic_profile(
    llc_class: Literal["llc-fr", "llc-fi", "llc-t"],
    name: str | None = None,
    total_instructions: float | None = 5e9,
    with_phases: bool = True,
) -> ApplicationProfile:
    """Build an application that lands squarely in ``llc_class``.

    Parameters
    ----------
    llc_class:
        Target classification under the paper's default bounds.
    name:
        Profile name; defaults to ``synthetic-<class>``.
    total_instructions:
        Work before completion, or None for an unbounded workload.
    with_phases:
        Whether to give the profile the standard phase dynamics.
    """
    try:
        rpti, ws_mib, min_mr, max_mr = CLASS_PRESETS[llc_class]
    except KeyError:
        raise ValueError(
            f"unknown llc_class {llc_class!r}; expected one of {sorted(CLASS_PRESETS)}"
        ) from None
    phases = (
        PhaseSpec(mean_duration_s=2.0, ws_jitter=0.15, intensity_jitter=0.1, rotate_prob=0.3)
        if with_phases
        else None
    )
    return ApplicationProfile(
        name=name or f"synthetic-{llc_class}",
        cpi_base=1.0,
        rpti=rpti,
        working_set_bytes=ws_mib * MIB,
        min_miss_rate=min_mr,
        max_miss_rate=max_mr,
        curve_shape=1.1,
        mlp=4.0,
        total_instructions=total_instructions,
        phase=phases,
    )


def scaled_profile(profile: ApplicationProfile, work_scale: float) -> ApplicationProfile:
    """Rescale a profile's total work by ``work_scale``.

    Shortening runs speeds experiments and tests without altering any of
    the per-instruction behaviour the schedulers react to.  Unbounded
    profiles are returned unchanged.
    """
    check_positive(work_scale, "work_scale")
    if profile.total_instructions is None:
        return profile
    return profile.with_overrides(
        total_instructions=profile.total_instructions * work_scale
    )
