"""Analytic application model.

An :class:`ApplicationProfile` is the static signature of a program; a
:class:`VcpuWorkload` is the live state of one VCPU executing it
(remaining instructions, current phase, hot memory slice).

The profile fields map one-to-one onto what the paper's machinery
observes or what determines performance on its host:

* ``cpi_base`` — cycles per instruction with a perfect memory system;
* ``rpti`` — LLC references per kilo-instruction, the numerator of
  vProbe's *LLC access pressure* (Eq. 2, α=1000 makes pressure ≈ RPTI);
* ``working_set_bytes`` + miss-rate-curve parameters — LLC behaviour
  (Fig. 3a) and contention sensitivity, defining the LLC-FR/FI/T
  classes of §III-B2;
* ``mlp`` — memory-level parallelism: overlapping misses divide the
  per-miss stall seen by the pipeline;
* ``slice_concentration`` — how strongly a VCPU's accesses focus on its
  own memory slice; this is what makes *memory node affinity* (Eq. 1)
  informative;
* ``blocking`` — run/block alternation for request-driven services;
* ``phase`` — working-set jitter and hot-slice rotation over time, the
  source of staleness that penalises long sampling periods (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from repro.hardware.cache import CacheDemand
from repro.util.validation import (
    check_fraction,
    check_non_negative,
    check_positive,
)

__all__ = ["BlockingSpec", "PhaseSpec", "ApplicationProfile", "VcpuWorkload"]


@dataclass(frozen=True, slots=True)
class BlockingSpec:
    """Run/block alternation for I/O-driven workloads.

    A VCPU runs for an exponentially distributed burst of mean
    ``run_burst_s``, then blocks (waits for network/disk) for a burst of
    mean ``block_s``.  CPU-bound programs have no BlockingSpec.
    """

    run_burst_s: float
    block_s: float

    def __post_init__(self) -> None:
        check_positive(self.run_burst_s, "run_burst_s")
        check_non_negative(self.block_s, "block_s")

    @property
    def duty_cycle(self) -> float:
        """Long-run runnable fraction."""
        return self.run_burst_s / (self.run_burst_s + self.block_s)


@dataclass(frozen=True, slots=True)
class PhaseSpec:
    """Phase dynamics: how the workload's behaviour drifts over time.

    Attributes
    ----------
    mean_duration_s:
        Mean phase length (exponentially distributed).
    ws_jitter:
        Each phase scales the working set by ``1 +- U(0, ws_jitter)``.
    intensity_jitter:
        Same for the LLC reference intensity (RPTI).
    rotate_prob:
        Probability that a phase change moves the VCPU's hot slice to a
        different slice of the VM's memory (shifting its node affinity).
    """

    mean_duration_s: float = 2.0
    ws_jitter: float = 0.2
    intensity_jitter: float = 0.1
    rotate_prob: float = 0.3

    def __post_init__(self) -> None:
        check_positive(self.mean_duration_s, "mean_duration_s")
        check_fraction(self.ws_jitter, "ws_jitter")
        check_fraction(self.intensity_jitter, "intensity_jitter")
        check_fraction(self.rotate_prob, "rotate_prob")


@dataclass(frozen=True, slots=True)
class ApplicationProfile:
    """Static per-application signature (see module docstring)."""

    name: str
    cpi_base: float
    rpti: float
    working_set_bytes: float
    min_miss_rate: float
    max_miss_rate: float
    curve_shape: float = 1.0
    mlp: float = 4.0
    total_instructions: Optional[float] = None
    slice_concentration: float = 0.85
    blocking: Optional[BlockingSpec] = None
    phase: Optional[PhaseSpec] = None
    #: First-touch locality feedback: fraction of the VCPU's memory
    #: slice re-allocated/re-touched per second of running, landing on
    #: the node it currently runs on.  High for allocation-churny
    #: services, low for array codes, zero for pure compute loops.
    touch_rate: float = 0.05

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("profile name must be non-empty")
        check_positive(self.cpi_base, "cpi_base")
        check_non_negative(self.rpti, "rpti")
        check_non_negative(self.working_set_bytes, "working_set_bytes")
        check_fraction(self.min_miss_rate, "min_miss_rate")
        check_fraction(self.max_miss_rate, "max_miss_rate")
        if self.max_miss_rate < self.min_miss_rate:
            raise ValueError("max_miss_rate must be >= min_miss_rate")
        check_positive(self.curve_shape, "curve_shape")
        check_positive(self.mlp, "mlp")
        if self.total_instructions is not None:
            check_positive(self.total_instructions, "total_instructions")
        check_fraction(self.slice_concentration, "slice_concentration")
        check_non_negative(self.touch_rate, "touch_rate")

    @property
    def refs_per_instruction(self) -> float:
        """LLC references per single instruction."""
        return self.rpti / 1000.0

    def cache_demand(
        self, ws_multiplier: float = 1.0, intensity_multiplier: float = 1.0
    ) -> CacheDemand:
        """Instantaneous LLC demand with phase multipliers applied."""
        check_positive(ws_multiplier, "ws_multiplier")
        check_positive(intensity_multiplier, "intensity_multiplier")
        refs_per_cycle = self.refs_per_instruction / self.cpi_base
        return CacheDemand(
            working_set_bytes=self.working_set_bytes * ws_multiplier,
            intensity=refs_per_cycle * intensity_multiplier,
            min_miss_rate=self.min_miss_rate,
            max_miss_rate=self.max_miss_rate,
            curve_shape=self.curve_shape,
        )

    def with_overrides(self, **kwargs) -> "ApplicationProfile":
        """A copy with the given fields replaced (for sweeps/ablations)."""
        return replace(self, **kwargs)

    @property
    def is_finite(self) -> bool:
        """True when the application terminates after a fixed work amount."""
        return self.total_instructions is not None


class VcpuWorkload:
    """Live execution state of one VCPU running a profile.

    Parameters
    ----------
    profile:
        The application signature.
    rng:
        Per-VCPU generator for phase/blocking draws.
    slice_id:
        Which slice of the VM's memory this VCPU's hot pages start in
        (typically its own VCPU index).
    num_slices:
        Slice count in the owning VM (for hot-slice rotation).
    active:
        Inactive workloads model idle guest VCPUs: never runnable.
    """

    def __init__(
        self,
        profile: ApplicationProfile,
        rng: np.random.Generator,
        slice_id: int = 0,
        num_slices: int = 1,
        active: bool = True,
    ) -> None:
        if num_slices <= 0:
            raise ValueError(f"num_slices must be > 0, got {num_slices}")
        if not 0 <= slice_id < num_slices:
            raise ValueError(f"slice_id {slice_id} out of range [0, {num_slices})")
        self.profile = profile
        self.rng = rng
        self.slice_id = slice_id
        self.num_slices = num_slices
        self.active = active

        self.instructions_done = 0.0
        self.ws_multiplier = 1.0
        self.intensity_multiplier = 1.0
        self._next_phase_change = self._draw_phase_end(0.0)
        # cache_demand() is called every epoch but its inputs only
        # change at phase boundaries; memoise on the multipliers.
        self._demand_cache: Optional[CacheDemand] = None
        self._demand_key = (1.0, 1.0)

    # ------------------------------------------------------------------
    # Progress
    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        """True once a finite application has retired all its work."""
        total = self.profile.total_instructions
        return total is not None and self.instructions_done >= total

    @property
    def remaining_instructions(self) -> float:
        """Instructions left (``inf`` for unbounded workloads)."""
        total = self.profile.total_instructions
        if total is None:
            return float("inf")
        return max(0.0, total - self.instructions_done)

    def advance(self, instructions: float) -> None:
        """Retire ``instructions`` of progress."""
        check_non_negative(instructions, "instructions")
        self.instructions_done += instructions

    def cache_demand(self) -> CacheDemand:
        """Current LLC demand (phase multipliers applied, memoised)."""
        key = (self.ws_multiplier, self.intensity_multiplier)
        if self._demand_cache is None or key != self._demand_key:
            self._demand_cache = self.profile.cache_demand(*key)
            self._demand_key = key
        return self._demand_cache

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    @property
    def next_phase_change(self) -> float:
        """Absolute time the next phase change is due (``inf`` if none)."""
        return self._next_phase_change

    def _draw_phase_end(self, now: float) -> float:
        spec = self.profile.phase
        if spec is None:
            return float("inf")
        return now + float(self.rng.exponential(spec.mean_duration_s))

    def maybe_phase_change(self, now: float) -> bool:
        """Apply a phase change if one is due; returns True if applied."""
        spec = self.profile.phase
        if spec is None or now < self._next_phase_change:
            return False
        jit = spec.ws_jitter
        self.ws_multiplier = float(1.0 + self.rng.uniform(-jit, jit))
        jit = spec.intensity_jitter
        self.intensity_multiplier = float(1.0 + self.rng.uniform(-jit, jit))
        if self.num_slices > 1 and self.rng.random() < spec.rotate_prob:
            shift = int(self.rng.integers(1, self.num_slices))
            self.slice_id = (self.slice_id + shift) % self.num_slices
        self._next_phase_change = self._draw_phase_end(now)
        return True

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def draw_run_burst(self) -> float:
        """Length of the next runnable burst in seconds (inf if CPU-bound)."""
        spec = self.profile.blocking
        if spec is None:
            return float("inf")
        return float(self.rng.exponential(spec.run_burst_s))

    def draw_block_time(self) -> float:
        """Length of the next blocked period in seconds (0 if CPU-bound)."""
        spec = self.profile.blocking
        if spec is None or spec.block_s <= 0:
            return 0.0
        return float(self.rng.exponential(spec.block_s))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"VcpuWorkload({self.profile.name!r}, slice={self.slice_id}, "
            f"done={self.instructions_done:.3g})"
        )
