"""Request-driven service models: memcached and redis.

The paper drives memcached with ``memslap`` (16-112 concurrent calls,
50 000 iterations) and redis with ``redis-benchmark`` (2 000-10 000
parallel connections, 100 M ``get`` requests).  We model the *server*
side as profiles whose load-dependent knobs reproduce the published
crossovers:

* **Duty cycle.**  At low concurrency, workers spend much of their time
  blocked waiting for requests; PCPUs idle often, so the idle-steal
  load-balance path dominates performance (the paper finds LB beats
  VCPU-P at 16-32 calls).  As concurrency grows, workers saturate.
* **Working set.**  Connection state and the touched key range grow
  with concurrency, pushing the servers from LLC-fitting toward
  LLC-thrashing — which is why VCPU partitioning wins at high load
  (the paper finds VCPU-P beats LB from ~48 calls up, and throughout
  for redis, whose per-connection footprint is larger).

Both factories return finite-work profiles: total instructions encode
the fixed request count, so the paper's "execution time" (memcached)
and "throughput = requests / runtime" (redis) fall out directly.
"""

from __future__ import annotations

from repro.workloads.appmodel import ApplicationProfile, BlockingSpec, PhaseSpec

__all__ = [
    "memcached_profile",
    "redis_profile",
    "MEMCACHED_INSTR_PER_OP",
    "REDIS_INSTR_PER_OP",
]

MIB = 1024**2
KIB = 1024

#: Server-side instruction cost of one memcached get/set round trip.
MEMCACHED_INSTR_PER_OP = 25e3

#: Server-side instruction cost of one redis ``get``.
REDIS_INSTR_PER_OP = 40e3

#: Service phases: connection churn shifts the hot key range slowly.
_SERVICE_PHASES = PhaseSpec(
    mean_duration_s=3.0, ws_jitter=0.15, intensity_jitter=0.1, rotate_prob=0.25
)


def memcached_profile(
    concurrency: int,
    total_ops: float = 200e3,
    workers: int = 8,
) -> ApplicationProfile:
    """Memcached server profile under ``concurrency`` memslap callers.

    Parameters
    ----------
    concurrency:
        Concurrent client calls (paper sweeps 16..112).
    total_ops:
        Operations each worker VCPU must serve before the run completes
        (the memslap iteration count split over workers).
    workers:
        Worker threads per server (the paper configures 8 ports).
    """
    if concurrency <= 0:
        raise ValueError(f"concurrency must be > 0, got {concurrency}")
    if workers <= 0:
        raise ValueError(f"workers must be > 0, got {workers}")

    # Duty cycle: each worker saturates once ~8 outstanding calls are
    # available to it; below that it blocks between request batches.
    # Even saturated epoll loops still sleep briefly (syscalls, nic
    # interrupts), so the duty cycle is capped below 1.  Run bursts
    # lengthen as load grows — a saturated event loop drains bigger
    # batches between sleeps — so wakeups (and the scheduler's
    # wake-time placement decisions) dominate at low load while
    # placement stability dominates at high load.
    duty = min(0.95, concurrency / (workers * 8.0))
    run_burst = 15e-3 / max(0.05, 1.0 - duty)
    block = run_burst * (1.0 - duty) / max(duty, 0.05)

    # Footprint: base server state plus per-connection buffers and the
    # touched slab range.  16 calls -> ~8 MiB (fits); 112 -> ~32 MiB.
    working_set = 4 * MIB + concurrency * 256 * KIB

    # More concurrent connections also raise pointer-chasing per op.
    rpti = 12.0 + 0.08 * concurrency

    return ApplicationProfile(
        name=f"memcached-c{concurrency}",
        cpi_base=1.0,
        rpti=rpti,
        working_set_bytes=working_set,
        min_miss_rate=0.08,
        max_miss_rate=0.85,
        curve_shape=0.9,
        mlp=3.0,
        total_instructions=total_ops * MEMCACHED_INSTR_PER_OP,
        slice_concentration=0.75,
        blocking=BlockingSpec(run_burst_s=run_burst, block_s=block),
        phase=_SERVICE_PHASES,
        touch_rate=0.25,
    )


def redis_profile(
    connections: int,
    total_requests: float = 400e3,
    servers: int = 4,
) -> ApplicationProfile:
    """Redis server profile under ``connections`` parallel connections.

    Parameters
    ----------
    connections:
        Parallel client connections (paper sweeps 2000..10000).
    total_requests:
        Requests each server VCPU must serve before the run completes.
    servers:
        Redis instances per VM (the paper runs four, single-threaded).
    """
    if connections <= 0:
        raise ValueError(f"connections must be > 0, got {connections}")
    if servers <= 0:
        raise ValueError(f"servers must be > 0, got {servers}")

    # Thousands of connections keep single-threaded redis servers
    # saturated; a small blocked fraction remains from event-loop
    # waits.  As for memcached, batch (run-burst) length grows with
    # load.
    duty = min(0.95, connections / 1000.0)
    run_burst = 20e-3 / max(0.05, 1.0 - duty)
    block = run_burst * (1.0 - duty) / max(duty, 0.05)

    # Per-connection buffers dominate the footprint at this scale:
    # 2000 conns -> ~12 MiB (the socket LLC size), 10000 -> ~35 MiB.
    working_set = 6 * MIB + connections * 3 * KIB

    rpti = 16.0 + 0.0008 * connections

    return ApplicationProfile(
        name=f"redis-n{connections}",
        cpi_base=1.1,
        rpti=rpti,
        working_set_bytes=working_set,
        min_miss_rate=0.10,
        max_miss_rate=0.88,
        curve_shape=0.9,
        mlp=3.0,
        total_instructions=total_requests * REDIS_INSTR_PER_OP,
        slice_concentration=0.75,
        blocking=BlockingSpec(run_burst_s=run_burst, block_s=block),
        phase=_SERVICE_PHASES,
        touch_rate=0.25,
    )
