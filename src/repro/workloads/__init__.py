"""Workload models: analytic application profiles and generators.

The real evaluation runs SPEC CPU2006, NPB, memcached and redis; those
binaries are not reproducible here, so each application is modelled by
the signature the scheduler actually observes — CPI, LLC references per
kilo-instruction (RPTI), working-set size and miss-rate curve, page
footprint, blocking behaviour and phase dynamics — calibrated to the
paper's own Fig. 3 measurements.
"""

from repro.workloads.appmodel import (
    ApplicationProfile,
    BlockingSpec,
    PhaseSpec,
    VcpuWorkload,
)
from repro.workloads.suites import (
    NPB_PROFILES,
    SPEC_PROFILES,
    get_profile,
    hungry_loop,
    profile_names,
)
from repro.workloads.services import memcached_profile, redis_profile
from repro.workloads.generators import synthetic_profile, scaled_profile

__all__ = [
    "ApplicationProfile",
    "BlockingSpec",
    "PhaseSpec",
    "VcpuWorkload",
    "SPEC_PROFILES",
    "NPB_PROFILES",
    "get_profile",
    "profile_names",
    "hungry_loop",
    "memcached_profile",
    "redis_profile",
    "synthetic_profile",
    "scaled_profile",
]
