"""Figure 6: memcached under memslap load (§V-B3).

Memcached servers (eight worker ports) run in VM1 and VM2; memslap
drives them with 16-112 concurrent calls.  Panels mirror Fig. 4.

Published headlines: the best case is 31.3 % over Credit at 80
concurrent calls; LB beats VCPU-P at low concurrency (locality
dominates while LLC contention is mild) and the relation flips as
concurrency — and with it the servers' cache footprint — grows.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.experiments.comparison import ComparisonResult, WorkloadPoint, run_grid
from repro.experiments.scenarios import ScenarioConfig, memcached_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner

__all__ = ["FIG6_CONCURRENCY", "points", "run"]

#: The paper's Fig. 6 x-axis: concurrent memslap calls.
FIG6_CONCURRENCY: Tuple[int, ...] = (16, 32, 48, 64, 80, 96, 112)


def points(concurrencies: Sequence[int] = FIG6_CONCURRENCY) -> list[WorkloadPoint]:
    """Workload points for the Fig. 6 sweep."""
    return [
        WorkloadPoint(
            f"c={conc}", partial(memcached_scenario, conc)
        )
        for conc in concurrencies
    ]


def run(
    cfg: Optional[ScenarioConfig] = None,
    concurrencies: Sequence[int] = FIG6_CONCURRENCY,
    schedulers: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional["ParallelRunner"] = None,
) -> ComparisonResult:
    """Run the Fig. 6 sweep (``jobs > 1`` fans cells across processes)."""
    return run_grid(
        "Figure 6: memcached",
        points(concurrencies),
        cfg,
        schedulers,
        jobs=jobs,
        cache=cache,
        runner=runner,
    )
