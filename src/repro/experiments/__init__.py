"""Experiment harness: one module per table/figure of the paper.

=================  ====================================================
Module             Reproduces
=================  ====================================================
``fig1``           §II-B remote-access ratios under Credit (Fig. 1)
``fig3``           §IV-A solo LLC miss rate / RPTI calibration (Fig. 3)
``fig4``           §V-B1 SPEC CPU2006 comparison (Fig. 4a-c)
``fig5``           §V-B2 NPB comparison (Fig. 5a-c)
``fig6``           §V-B3 memcached concurrency sweep (Fig. 6a-c)
``fig7``           §V-B4 redis connection sweep (Fig. 7a-c)
``table3``         §V-C1 overhead-time percentages (Table III)
``fig8``           §V-C2 sampling-period sweep (Fig. 8)
``fig9_faults``    fault-rate sweep: hardened vs naive vProbe vs Credit
                   (robustness extension, not in the paper)
=================  ====================================================
"""

from functools import partial
from typing import Dict, Iterable, Optional

from repro.experiments import (
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9_faults,
    table3,
)
from repro.experiments.comparison import ComparisonResult, WorkloadPoint, run_grid
from repro.experiments.parallel import ParallelRunner, default_jobs
from repro.experiments.runner import (
    MeanStats,
    ScenarioBuilder,
    compare,
    compare_mean,
    run_one,
)
from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
    memcached_scenario,
    mix_scenario,
    motivation_scenario,
    npb_scenario,
    overhead_scenario,
    redis_scenario,
    solo_scenario,
    spec_scenario,
)

__all__ = [
    "fig1",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9_faults",
    "table3",
    "ablation",
    "ComparisonResult",
    "WorkloadPoint",
    "run_grid",
    "ScenarioBuilder",
    "ScenarioConfig",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "run_one",
    "compare",
    "compare_mean",
    "MeanStats",
    "ParallelRunner",
    "default_jobs",
    "quick_comparison",
    "spec_scenario",
    "mix_scenario",
    "npb_scenario",
    "memcached_scenario",
    "redis_scenario",
    "solo_scenario",
    "motivation_scenario",
    "overhead_scenario",
]


def quick_comparison(
    app: str,
    schedulers: Optional[Iterable[str]] = None,
    work_scale: float = 0.05,
    seed: int = 0,
) -> Dict[str, float]:
    """Run one SPEC/NPB workload under several schedulers.

    Returns VM1's mean execution time per scheduler — the quickest way
    to see the headline effect (``vprobe`` < ``credit``).
    """
    from repro.workloads.suites import NPB_PROFILES

    cfg = ScenarioConfig(work_scale=work_scale, seed=seed)
    if app in NPB_PROFILES:
        builder: ScenarioBuilder = partial(npb_scenario, app)
    else:
        builder = partial(spec_scenario, app)
    summaries = compare(builder, cfg, schedulers or ("credit", "vprobe"))
    return {
        name: summary.domain("vm1").mean_finish_time_s or float("nan")
        for name, summary in summaries.items()
    }
