"""Table III: vProbe's overhead time (§V-C1).

One to four VMs, each with 2 VCPUs and two soplex instances, run under
vProbe; the measured quantity is the percentage of "overhead time" —
PMU collection around context switches and 10 ms refreshes plus the
periodic partitioning pass — relative to guest busy time.

The paper reports 0.008-0.016 %, rising with VM count but *dipping* at
4 VMs: with 8 VCPUs on 8 PCPUs nothing queues, so context switches
(and with them collection events) become rare.  The reproduction
tracks both the magnitude (well under 0.1 %) and that shape.
"""

from __future__ import annotations

from functools import partial

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.experiments.runner import run_one
from repro.experiments.scenarios import ScenarioConfig, overhead_scenario
from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = ["TABLE3_VM_COUNTS", "Table3Result", "run", "PAPER_OVERHEAD_PCT"]

#: VM counts of the paper's Table III.
TABLE3_VM_COUNTS: Tuple[int, ...] = (1, 2, 3, 4)

#: Published "overhead time" percentages.
PAPER_OVERHEAD_PCT: Dict[int, float] = {
    1: 0.00847,
    2: 0.01206,
    3: 0.01619,
    4: 0.01062,
}


@dataclass(frozen=True, slots=True)
class Table3Result:
    """Overhead-time percentage per VM count.

    ``phase_wall_ms`` carries the host wall-clock phase profile of each
    run (:mod:`repro.obs.profiler`), reported next to the simulated
    overhead budget: the paper's column says how much *hypervisor time*
    vProbe charges the guests; the profile says where the *scheduler
    implementation's* time actually goes (analyzer vs partition vs
    balance).  Empty when profiling was disabled.
    """

    vm_counts: Tuple[int, ...]
    overhead_pct: Tuple[float, ...]
    breakdown: Tuple[Dict[str, float], ...]  #: per-source seconds
    phase_wall_ms: Tuple[Dict[str, float], ...] = ()  #: per-phase host ms

    def overhead_at(self, num_vms: int) -> float:
        """Overhead percentage measured for a VM count."""
        for n, pct in zip(self.vm_counts, self.overhead_pct):
            if n == num_vms:
                return pct
        raise KeyError(f"vm count {num_vms} was not measured")

    def format(self) -> str:
        """Render the table with the paper's values alongside."""
        rows = [
            (n, pct, PAPER_OVERHEAD_PCT.get(n, float("nan")))
            for n, pct in zip(self.vm_counts, self.overhead_pct)
        ]
        table = format_table(
            ["VMs", "overhead time (%)", "paper (%)"], rows, float_fmt="{:.5f}"
        )
        if not self.phase_wall_ms:
            return table
        phases = sorted({p for prof in self.phase_wall_ms for p in prof})
        prof_rows = [
            [n] + [prof.get(p, 0.0) for p in phases]
            for n, prof in zip(self.vm_counts, self.phase_wall_ms)
        ]
        profile = format_table(
            ["VMs"] + [f"{p} (host ms)" for p in phases],
            prof_rows,
            float_fmt="{:.2f}",
        )
        return f"{table}\n\nscheduler phase wall-clock (host)\n{profile}"

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "table3",
            {
                "vm_counts": list(self.vm_counts),
                "overhead_pct": list(self.overhead_pct),
                "paper_overhead_pct": {
                    str(n): PAPER_OVERHEAD_PCT[n] for n in self.vm_counts
                },
                "breakdown_s": [dict(b) for b in self.breakdown],
                "phase_wall_ms": [dict(p) for p in self.phase_wall_ms],
            },
        )


def run(
    cfg: Optional[ScenarioConfig] = None,
    vm_counts: Sequence[int] = TABLE3_VM_COUNTS,
    scheduler: str = "vprobe",
    cache: Optional["ResultCache"] = None,
) -> Table3Result:
    """Measure vProbe's overhead-time percentage per VM count."""
    config = cfg or ScenarioConfig(work_scale=0.1)
    pcts = []
    breakdowns = []
    profiles = []
    for n in vm_counts:
        builder = partial(overhead_scenario, n)
        summary = run_one(builder, scheduler, config, cache=cache)
        stats = summary.machine_stats
        pcts.append(stats.overhead_fraction * 100.0)
        breakdowns.append(dict(stats.overhead_s))
        profiles.append(
            {p: s.wall_s * 1e3 for p, s in (summary.phase_profile or {}).items()}
        )
    return Table3Result(
        vm_counts=tuple(vm_counts),
        overhead_pct=tuple(pcts),
        breakdown=tuple(breakdowns),
        phase_wall_ms=tuple(profiles),
    )
