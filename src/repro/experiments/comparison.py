"""Shared machinery for the scheduler-comparison figures (Figs. 4-7).

Each of those figures shows, per workload point, three panels over the
five scheduling approaches: (a) normalised execution time (or raw
throughput for redis), (b) normalised total memory accesses and (c)
normalised remote memory accesses, everything normalised to Credit.
This module runs the grid and holds the results; the per-figure
modules only define the workload axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.experiments.runner import ScenarioBuilder
from repro.experiments.scenarios import SCHEDULER_NAMES, ScenarioConfig
from repro.metrics.collectors import RunSummary
from repro.metrics.report import format_table, improvement_pct

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner

__all__ = ["WorkloadPoint", "ComparisonCell", "ComparisonResult", "run_grid"]


@dataclass(frozen=True, slots=True)
class WorkloadPoint:
    """One x-axis point of a comparison figure."""

    label: str  #: e.g. "soplex", "mix", "c=80"
    builder: ScenarioBuilder


@dataclass(frozen=True, slots=True)
class ComparisonCell:
    """One (workload, scheduler) measurement."""

    workload: str
    scheduler: str
    exec_time_s: float
    total_accesses: float
    remote_accesses: float
    instructions: float
    migrations: int
    cross_node_migrations: int
    overhead_fraction: float

    @classmethod
    def from_summary(cls, workload: str, summary: RunSummary) -> "ComparisonCell":
        """Extract the figure metrics from a run summary (VM1)."""
        d = summary.domain("vm1")
        return cls(
            workload=workload,
            scheduler=summary.policy,
            exec_time_s=d.mean_finish_time_s or float("nan"),
            total_accesses=d.total_accesses,
            remote_accesses=d.remote_accesses,
            instructions=d.instructions,
            migrations=summary.machine_stats.migrations,
            cross_node_migrations=summary.machine_stats.cross_node_migrations,
            overhead_fraction=summary.machine_stats.overhead_fraction,
        )


@dataclass(frozen=True, slots=True)
class ComparisonResult:
    """The full grid of one comparison figure."""

    name: str
    workloads: Tuple[str, ...]
    schedulers: Tuple[str, ...]
    cells: Dict[Tuple[str, str], ComparisonCell]
    baseline: str = "credit"

    def cell(self, workload: str, scheduler: str) -> ComparisonCell:
        """One grid cell."""
        return self.cells[(workload, scheduler)]

    def _normalized(self, metric: str, workload: str, scheduler: str) -> float:
        base = getattr(self.cell(workload, self.baseline), metric)
        value = getattr(self.cell(workload, scheduler), metric)
        if base <= 0:
            return float("nan")
        return value / base

    def norm_exec_time(self, workload: str, scheduler: str) -> float:
        """Panel (a): execution time normalised to Credit."""
        return self._normalized("exec_time_s", workload, scheduler)

    def norm_total_accesses(self, workload: str, scheduler: str) -> float:
        """Panel (b): total memory accesses normalised to Credit."""
        return self._normalized("total_accesses", workload, scheduler)

    def norm_remote_accesses(self, workload: str, scheduler: str) -> float:
        """Panel (c): remote memory accesses normalised to Credit."""
        return self._normalized("remote_accesses", workload, scheduler)

    def improvement_over(
        self, workload: str, scheduler: str, reference: str
    ) -> float:
        """The paper's "X % improvement" of ``scheduler`` vs ``reference``."""
        return improvement_pct(
            self.cell(workload, scheduler).exec_time_s,
            self.cell(workload, reference).exec_time_s,
        )

    def best_improvement(self, scheduler: str = "vprobe") -> Tuple[str, float]:
        """(workload, %) where ``scheduler`` gains most over the baseline."""
        best = max(
            self.workloads,
            key=lambda w: self.improvement_over(w, scheduler, self.baseline),
        )
        return best, self.improvement_over(best, scheduler, self.baseline)

    def panel_table(self, metric: str) -> str:
        """Render one panel as a workload x scheduler table.

        ``metric`` is one of ``"time"``, ``"total"``, ``"remote"``.
        """
        fn = {
            "time": self.norm_exec_time,
            "total": self.norm_total_accesses,
            "remote": self.norm_remote_accesses,
        }[metric]
        rows = [
            [w] + [fn(w, s) for s in self.schedulers] for w in self.workloads
        ]
        return format_table(["workload"] + list(self.schedulers), rows)

    def format(self) -> str:
        """Render all three panels."""
        return "\n\n".join(
            f"{self.name} ({label})\n{self.panel_table(metric)}"
            for label, metric in (
                ("normalized execution time", "time"),
                ("normalized total memory accesses", "total"),
                ("normalized remote memory accesses", "remote"),
            )
        )

    def to_payload(self) -> dict:
        """The grid as a JSON-ready payload (raw cells + panels)."""
        panels = {
            metric: {
                w: {s: fn(w, s) for s in self.schedulers} for w in self.workloads
            }
            for metric, fn in (
                ("time", self.norm_exec_time),
                ("total", self.norm_total_accesses),
                ("remote", self.norm_remote_accesses),
            )
        }
        return {
            "name": self.name,
            "workloads": list(self.workloads),
            "schedulers": list(self.schedulers),
            "baseline": self.baseline,
            "cells": [
                {
                    "workload": c.workload,
                    "scheduler": c.scheduler,
                    "exec_time_s": c.exec_time_s,
                    "total_accesses": c.total_accesses,
                    "remote_accesses": c.remote_accesses,
                    "instructions": c.instructions,
                    "migrations": c.migrations,
                    "cross_node_migrations": c.cross_node_migrations,
                    "overhead_fraction": c.overhead_fraction,
                }
                for (_, _), c in sorted(self.cells.items())
            ],
            "normalized": panels,
        }

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report("comparison", self.to_payload())


def run_grid(
    name: str,
    points: Sequence[WorkloadPoint],
    cfg: Optional[ScenarioConfig] = None,
    schedulers: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional["ParallelRunner"] = None,
) -> ComparisonResult:
    """Run every (workload, scheduler) pair of a comparison figure.

    ``jobs > 1`` fans the independent cells across worker processes
    (each cell reruns the same seeded scenario, so results are
    identical to the serial pass).  ``cache`` serves previously
    computed cells from disk; an explicit ``runner`` (which wins over
    ``jobs``/``cache``) lets ``report_all`` share one runner — and its
    hit/miss/retry accounting — across every figure.

    A comparison figure normalises every cell against the Credit
    baseline, so it cannot render with holes: if the runner quarantined
    any cell (deadline blown, epoch cap hit), this raises
    :class:`~repro.experiments.parallel.GridIncompleteError` naming
    them, and ``report_all`` quarantines the whole job rather than the
    whole report.
    """
    from repro.experiments.parallel import GridIncompleteError, ParallelRunner

    config = cfg or ScenarioConfig()
    names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
    cells: Dict[Tuple[str, str], ComparisonCell] = {}
    if runner is None:
        # Stacked dispatch by default: every (workload, scheduler) row
        # of the figure advances through one shared lane kernel.  The
        # engines are bitwise-identical, so this is a dispatch-shape
        # choice only — summaries, cache keys and report bytes match
        # the per-cell batched path exactly.
        runner = ParallelRunner(jobs, cache=cache, engine="stacked")
    flat = [(p.builder, sched, config) for p in points for sched in names]
    summaries = runner.run_cells(flat)
    if any(s is None for s in summaries):
        raise GridIncompleteError(runner.quarantined, total=len(flat))
    rows = iter(summaries)
    for point in points:
        for sched in names:
            cells[(point.label, sched)] = ComparisonCell.from_summary(
                point.label, next(rows)
            )
    return ComparisonResult(
        name=name,
        workloads=tuple(p.label for p in points),
        schedulers=names,
        cells=cells,
    )
