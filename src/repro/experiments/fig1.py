"""Figure 1: remote-memory-access ratios under the stock Credit scheduler.

§II-B's motivation experiment: VM1/VM2 (8 GB, 8 VCPUs) run a
memory-intensive application (four NPB threads or four SPEC instances)
while VM3's hungry loops soak spare CPU; the measured quantity is the
percentage of VM1's memory accesses served by a remote node.

The paper reports >80 % for every application except soplex (77.41 %).
Our two-node model bounds the achievable ratio differently (see
EXPERIMENTS.md): NUMA-blind mixing concentrates around 40-60 %, still
far above what any NUMA-aware policy produces — the motivation (large
recoverable remote fraction) is preserved even though the absolute
level is testbed-specific.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.experiments.runner import run_one
from repro.experiments.scenarios import ScenarioConfig, motivation_scenario
from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = ["FIG1_APPS", "Fig1Result", "run"]

#: Applications shown in the paper's Fig. 1.
FIG1_APPS: Tuple[str, ...] = (
    "bt",
    "cg",
    "lu",
    "mg",
    "sp",
    "mcf",
    "milc",
    "soplex",
    "libquantum",
)


@dataclass(frozen=True, slots=True)
class Fig1Result:
    """Remote-access ratio per application under Credit."""

    remote_ratio: Dict[str, float]
    scheduler: str = "credit"

    def format(self) -> str:
        """Render the figure's data as a table."""
        rows = [
            (app, ratio * 100.0) for app, ratio in self.remote_ratio.items()
        ]
        return format_table(
            ["application", "remote accesses (%)"], rows, float_fmt="{:.1f}"
        )

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "fig1",
            {"scheduler": self.scheduler, "remote_ratio": dict(self.remote_ratio)},
        )


def run(
    cfg: Optional[ScenarioConfig] = None,
    apps: Sequence[str] = FIG1_APPS,
    scheduler: str = "credit",
    cache: Optional["ResultCache"] = None,
) -> Fig1Result:
    """Measure remote-access ratios for each application.

    Parameters
    ----------
    cfg:
        Scenario configuration; defaults keep runs short.
    apps:
        Applications to measure (the paper's nine by default).
    scheduler:
        Scheduler to run under (Credit in the paper's figure; other
        names are accepted for side-by-side comparisons).
    cache:
        Optional result cache consulted before running each cell.
    """
    config = cfg or ScenarioConfig(work_scale=0.1)
    ratios: Dict[str, float] = {}
    for app in apps:
        builder = partial(motivation_scenario, app)
        summary = run_one(builder, scheduler, config, cache=cache)
        ratios[app] = summary.domain("vm1").remote_ratio
    return Fig1Result(remote_ratio=ratios, scheduler=scheduler)
