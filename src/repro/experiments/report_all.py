"""Regenerate every table and figure in one command.

``python -m repro.experiments.report_all [outdir] [--fast] [--jobs N]
[--cache-dir DIR | --no-cache] [--chunksize N]`` runs the whole
evaluation (Figs. 1, 3-8 and Table III plus the ablations) and writes
each rendered table to ``outdir`` (default ``./results``).  ``--fast``
uses very small scales for a minutes-long smoke pass; the default
scales match the benchmark harness.  ``--jobs N`` fans each comparison
grid's cells across N worker processes (results are identical — every
cell reruns the same seeded scenario); the default is one worker per
core.  With a cache directory (``--cache-dir`` or ``REPRO_CACHE_DIR``)
previously computed cells are served from disk and a warm rerun does
no simulation at all.

This is the scripted equivalent of
``pytest benchmarks/ --benchmark-only`` without the timing machinery —
useful on machines where pytest-benchmark is unavailable.
"""

from __future__ import annotations

import pathlib
import time
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

from repro.experiments import (
    ScenarioConfig,
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9_faults,
    table3,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner

__all__ = ["regenerate_all", "main"]


def _jobs(
    fast: bool,
    jobs: int = 1,
    runner: "Optional[ParallelRunner]" = None,
    cache: "Optional[ResultCache]" = None,
) -> Tuple[Tuple[str, Callable[[], object]], ...]:
    scale = 0.05 if fast else 0.18
    svc_scale = 0.04 if fast else 0.1
    cfg = lambda ws, seed: ScenarioConfig(work_scale=ws, seed=seed)
    return (
        ("fig1_remote_ratios", lambda: fig1.run(cfg(scale * 0.8, 0), cache=cache)),
        ("fig3_llc_missrate_rpti", lambda: fig3.run(cfg(0.05, 0), cache=cache)),
        (
            "fig4_spec_cpu2006",
            lambda: fig4.run(cfg(scale, 1), jobs=jobs, cache=cache, runner=runner),
        ),
        (
            "fig5_npb",
            lambda: fig5.run(cfg(scale, 2), jobs=jobs, cache=cache, runner=runner),
        ),
        (
            "fig6_memcached",
            lambda: fig6.run(
                cfg(svc_scale, 3),
                concurrencies=(16, 48, 80, 112),
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        (
            "fig7_redis",
            lambda: fig7.run(
                cfg(scale, 4),
                connections=(2000, 6000, 10000),
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        ("fig8_sampling_period", lambda: fig8.run(cfg(scale, 0), cache=cache)),
        (
            "fig9_fault_degradation",
            lambda: fig9_faults.run(
                cfg(scale, 0),
                seeds=3 if fast else 5,
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        ("table3_overhead", lambda: table3.run(cfg(scale, 0), cache=cache)),
        (
            "ablation_dynamic_bounds",
            lambda: ablation.run_bounds_ablation(cfg(scale, 5), cache=cache),
        ),
        (
            "ablation_page_migration",
            lambda: ablation.run_page_migration_ablation(cfg(scale, 5), cache=cache),
        ),
    )


def regenerate_all(
    outdir: pathlib.Path,
    fast: bool = False,
    only: "tuple[str, ...] | None" = None,
    jobs: int = 1,
    cache: "Optional[ResultCache]" = None,
    chunksize: Optional[int] = None,
) -> Dict[str, int]:
    """Run every experiment; write one .txt and one .json per result.

    The ``.txt`` is the rendered table (unchanged); the ``.json`` is
    the schema-versioned ``to_json()`` envelope for machine consumers.
    ``only`` optionally restricts to jobs whose name starts with one of
    the given prefixes (used by smoke tests).  ``jobs > 1`` fans each
    comparison grid's cells across worker processes; every grid shares
    one :class:`~repro.experiments.parallel.ParallelRunner` so cache
    hit/miss and crash-retry counts aggregate across the whole report.
    ``cache`` serves previously computed cells from disk — the cached
    payload round-trips exactly, so the ``.json`` outputs of a warm run
    are byte-identical to a cold one.

    Returns the run's accounting: ``cache_hits``, ``cache_misses`` and
    ``retried_cells``.
    """
    from repro.experiments.jsonreport import dump_report
    from repro.experiments.parallel import ParallelRunner

    outdir.mkdir(parents=True, exist_ok=True)
    runner = ParallelRunner(jobs, cache=cache, chunksize=chunksize)
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    for name, job in _jobs(fast, jobs, runner=runner, cache=cache):
        if only is not None and not any(name.startswith(p) for p in only):
            continue
        start = time.perf_counter()
        result = job()
        elapsed = time.perf_counter() - start
        text = result.format()
        (outdir / f"{name}.txt").write_text(text + "\n")
        (outdir / f"{name}.json").write_text(dump_report(result.to_json()) + "\n")
        print(f"[{elapsed:7.1f}s] {name}")
        print(text)
        print()
    stats = {
        "cache_hits": (cache.hits - hits0) if cache is not None else 0,
        "cache_misses": (cache.misses - misses0) if cache is not None else 0,
        "retried_cells": len(runner.total_retried_cells),
    }
    if cache is not None or stats["retried_cells"]:
        print(
            f"cache: {stats['cache_hits']} hits, "
            f"{stats['cache_misses']} misses; "
            f"retried cells: {stats['retried_cells']}"
        )
    return stats


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    import argparse

    from repro.cache.store import resolve_cache
    from repro.experiments.parallel import default_jobs

    parser = argparse.ArgumentParser(
        description="Regenerate every table and figure."
    )
    parser.add_argument(
        "outdir", nargs="?", default="results", type=pathlib.Path
    )
    parser.add_argument("--fast", action="store_true")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per grid (default: one per core)",
    )
    parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR if set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any cache directory, even $REPRO_CACHE_DIR",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache = resolve_cache(args.cache_dir, args.no_cache)
    regenerate_all(
        args.outdir,
        fast=args.fast,
        jobs=max(1, jobs),
        cache=cache,
        chunksize=args.chunksize,
    )
    print(f"all tables written to {args.outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
