"""Regenerate every table and figure in one command.

``python -m repro.experiments.report_all [outdir] [--fast] [--jobs N]
[--cache-dir DIR | --no-cache] [--chunksize N] [--resume]
[--deadline S] [--only PREFIX ...]`` runs the whole evaluation
(Figs. 1, 3-8 and Table III plus the ablations) and writes each
rendered table to ``outdir`` (default ``./results``).  ``--fast`` uses
very small scales for a minutes-long smoke pass; the default scales
match the benchmark harness.  ``--jobs N`` fans each comparison grid's
cells across N worker processes (results are identical — every cell
reruns the same seeded scenario); the default is one worker per core.
With a cache directory (``--cache-dir`` or ``REPRO_CACHE_DIR``)
previously computed cells are served from disk and a warm rerun does
no simulation at all.

**Crash safety.**  Every run keeps a write-ahead journal at
``<outdir>/journal.jsonl``: each completed cell (and each finished
job) is recorded atomically the moment it lands.  SIGINT/SIGTERM exit
with code 75 (:data:`~repro.recovery.shutdown.EXIT_RESUMABLE`) after
flushing the journal and checkpointing any in-flight serial cell to
``<outdir>/checkpoints/``; relaunching with ``--resume`` replays
journaled cells without recomputation and skips jobs whose outputs are
already on disk, so the final report is byte-identical to an
uninterrupted run.  ``--deadline S`` arms a per-cell wall-clock
deadline: overrunning cells are retried with backoff and eventually
*quarantined* (recorded in the journal and ``recovery.json``) instead
of failing the report.

This is the scripted equivalent of
``pytest benchmarks/ --benchmark-only`` without the timing machinery —
useful on machines where pytest-benchmark is unavailable.
"""

from __future__ import annotations

import pathlib
import time
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.experiments import (
    ScenarioConfig,
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9_faults,
    table3,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner
    from repro.recovery.deadline import DeadlinePolicy
    from repro.recovery.shutdown import GracefulShutdown

__all__ = ["regenerate_all", "main"]

#: Schema of the <outdir>/recovery.json run summary.
RECOVERY_SCHEMA = "repro.recovery-report/v1"


def _jobs(
    fast: bool,
    jobs: int = 1,
    runner: "Optional[ParallelRunner]" = None,
    cache: "Optional[ResultCache]" = None,
) -> Tuple[Tuple[str, Callable[[], object]], ...]:
    scale = 0.05 if fast else 0.18
    svc_scale = 0.04 if fast else 0.1
    cfg = lambda ws, seed: ScenarioConfig(work_scale=ws, seed=seed)
    return (
        ("fig1_remote_ratios", lambda: fig1.run(cfg(scale * 0.8, 0), cache=cache)),
        ("fig3_llc_missrate_rpti", lambda: fig3.run(cfg(0.05, 0), cache=cache)),
        (
            "fig4_spec_cpu2006",
            lambda: fig4.run(cfg(scale, 1), jobs=jobs, cache=cache, runner=runner),
        ),
        (
            "fig5_npb",
            lambda: fig5.run(cfg(scale, 2), jobs=jobs, cache=cache, runner=runner),
        ),
        (
            "fig6_memcached",
            lambda: fig6.run(
                cfg(svc_scale, 3),
                concurrencies=(16, 48, 80, 112),
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        (
            "fig7_redis",
            lambda: fig7.run(
                cfg(scale, 4),
                connections=(2000, 6000, 10000),
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        ("fig8_sampling_period", lambda: fig8.run(cfg(scale, 0), cache=cache)),
        (
            "fig9_fault_degradation",
            lambda: fig9_faults.run(
                cfg(scale, 0),
                seeds=3 if fast else 5,
                jobs=jobs,
                cache=cache,
                runner=runner,
            ),
        ),
        ("table3_overhead", lambda: table3.run(cfg(scale, 0), cache=cache)),
        (
            "ablation_dynamic_bounds",
            lambda: ablation.run_bounds_ablation(cfg(scale, 5), cache=cache),
        ),
        (
            "ablation_page_migration",
            lambda: ablation.run_page_migration_ablation(cfg(scale, 5), cache=cache),
        ),
    )


def _write_recovery_report(
    outdir: pathlib.Path,
    runner: "ParallelRunner",
    job_status: Dict[str, str],
    resumed_jobs: List[str],
    interrupted: bool,
    extra_journal_hits: int = 0,
) -> None:
    """Publish <outdir>/recovery.json (best effort, never fatal)."""
    from repro import __version__
    from repro.obs.manifest import canonical_dumps

    payload = {
        "schema": RECOVERY_SCHEMA,
        "version": __version__,
        "interrupted": interrupted,
        "jobs": job_status,
        "resumed_jobs": sorted(resumed_jobs),
        "quarantined_cells": [q.to_dict() for q in runner.total_quarantined],
        "counters": {
            "cache_hits": runner.total_cache_hits,
            "cache_misses": runner.total_cache_misses,
            "journal_hits": runner.total_journal_hits + extra_journal_hits,
            "retried_cells": len(runner.total_retried_cells),
        },
    }
    try:
        (outdir / "recovery.json").write_text(
            canonical_dumps(payload) + "\n", encoding="utf-8"
        )
    except OSError:  # pragma: no cover - defensive
        pass


def regenerate_all(
    outdir: pathlib.Path,
    fast: bool = False,
    only: "tuple[str, ...] | None" = None,
    jobs: int = 1,
    cache: "Optional[ResultCache]" = None,
    chunksize: Optional[int] = None,
    resume: bool = False,
    deadline: "DeadlinePolicy | float | None" = None,
    shutdown: "Optional[GracefulShutdown]" = None,
    stack_lanes: Optional[int] = None,
) -> Dict[str, int]:
    """Run every experiment; write one .txt and one .json per result.

    The ``.txt`` is the rendered table (unchanged); the ``.json`` is
    the schema-versioned ``to_json()`` envelope for machine consumers.
    ``only`` optionally restricts to jobs whose name starts with one of
    the given prefixes (used by smoke tests).  ``jobs > 1`` fans each
    comparison grid's cells across worker processes; every grid shares
    one :class:`~repro.experiments.parallel.ParallelRunner` so cache
    hit/miss and crash-retry counts aggregate across the whole report.
    ``cache`` serves previously computed cells from disk — the cached
    payload round-trips exactly, so the ``.json`` outputs of a warm run
    are byte-identical to a cold one.

    Grid cells dispatch through the lane-stacked engine by default
    (``stack_lanes`` caps lanes per stack; ``1`` disables stacking and
    restores pure per-cell dispatch).  Stacking is a dispatch-shape
    choice only — per-lane summaries are bitwise the solo batched
    run's, so cache keys, journal records and output bytes are
    unaffected.

    Recovery behaviour: the run journals every completed cell and job
    to ``<outdir>/journal.jsonl``; ``resume=True`` replays that journal
    (journaled cells resolve without simulation; jobs that already
    finished — journaled *and* with their output files on disk — are
    skipped outright, and previously quarantined jobs stay
    quarantined).  A ``deadline`` policy quarantines pathological cells
    rather than failing the run: the affected *job* is recorded as
    quarantined (its outputs are withheld — a comparison figure cannot
    render with holes) and every other job still completes.  When a
    :class:`~repro.recovery.shutdown.GracefulShutdown` is supplied the
    run stops at a clean point on SIGINT/SIGTERM, writes
    ``recovery.json`` and lets
    :class:`~repro.recovery.shutdown.ShutdownRequested` propagate so
    the CLI can exit with code 75.

    Returns the run's accounting: ``cache_hits``, ``cache_misses``,
    ``retried_cells``, ``journal_hits``, ``quarantined_cells``,
    ``resumed_jobs`` and ``quarantined_jobs``.
    """
    from repro.experiments.jsonreport import dump_report
    from repro.experiments.parallel import (
        DEFAULT_STACK_LANES,
        GridIncompleteError,
        ParallelRunner,
    )
    from repro.recovery.journal import GridJournal, JournalCache

    outdir.mkdir(parents=True, exist_ok=True)
    journal = GridJournal(outdir / "journal.jsonl", resume=resume)
    # The serial jobs reach their cells through run_one(cache=...);
    # wrapping the cache in the journal makes them resume-covered too.
    job_cache = JournalCache(journal, cache)
    runner = ParallelRunner(
        jobs,
        cache=cache,
        chunksize=chunksize,
        engine="stacked",
        journal=journal,
        deadline=deadline,
        shutdown=shutdown,
        checkpoint_dir=outdir / "checkpoints",
        stack_lanes=stack_lanes if stack_lanes is not None else DEFAULT_STACK_LANES,
    )
    if resume and (journal.loaded_cells or journal.loaded_jobs):
        print(
            f"resuming: journal has {journal.loaded_cells} cells, "
            f"{journal.loaded_jobs} jobs "
            f"({journal.loaded_quarantines} quarantined cells)"
        )
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    job_status: Dict[str, str] = {}
    resumed_jobs: List[str] = []
    interrupted = False
    try:
        for name, job in _jobs(fast, jobs, runner=runner, cache=job_cache):
            if only is not None and not any(name.startswith(p) for p in only):
                continue
            if resume:
                status = journal.job_status(name)
                if (
                    status == "done"
                    and (outdir / f"{name}.txt").exists()
                    and (outdir / f"{name}.json").exists()
                ):
                    resumed_jobs.append(name)
                    job_status[name] = "done"
                    print(f"[  resumed] {name}")
                    continue
                if status == "quarantined":
                    job_status[name] = "quarantined"
                    print(f"[quarantine] {name} (from journal; not retried)")
                    continue
            start = time.perf_counter()
            try:
                result = job()
            except GridIncompleteError as exc:
                journal.record_job(name, status="quarantined")
                job_status[name] = "quarantined"
                print(f"[quarantine] {name}: {exc}")
                continue
            elapsed = time.perf_counter() - start
            text = result.format()
            (outdir / f"{name}.txt").write_text(text + "\n")
            (outdir / f"{name}.json").write_text(dump_report(result.to_json()) + "\n")
            journal.record_job(name, status="done")
            job_status[name] = "done"
            print(f"[{elapsed:7.1f}s] {name}")
            print(text)
            print()
    except BaseException:
        interrupted = True
        raise
    finally:
        _write_recovery_report(
            outdir,
            runner,
            job_status,
            resumed_jobs,
            interrupted,
            extra_journal_hits=job_cache.journal_hits,
        )
    stats = {
        "cache_hits": (cache.hits - hits0) if cache is not None else 0,
        "cache_misses": (cache.misses - misses0) if cache is not None else 0,
        "retried_cells": len(runner.total_retried_cells),
        "journal_hits": runner.total_journal_hits + job_cache.journal_hits,
        "quarantined_cells": len(runner.total_quarantined),
        "resumed_jobs": len(resumed_jobs),
        "quarantined_jobs": sum(
            1 for s in job_status.values() if s == "quarantined"
        ),
    }
    if cache is not None or stats["retried_cells"]:
        print(
            f"cache: {stats['cache_hits']} hits, "
            f"{stats['cache_misses']} misses; "
            f"retried cells: {stats['retried_cells']}"
        )
    if stats["journal_hits"] or stats["resumed_jobs"]:
        print(
            f"journal: {stats['journal_hits']} cells replayed, "
            f"{stats['resumed_jobs']} jobs skipped"
        )
    if stats["quarantined_cells"]:
        print(
            f"quarantined: {stats['quarantined_cells']} cells "
            f"({stats['quarantined_jobs']} jobs withheld) — see recovery.json"
        )
    return stats


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point."""
    import argparse

    from repro.cache.store import resolve_cache
    from repro.experiments.parallel import default_jobs
    from repro.recovery.deadline import DeadlinePolicy
    from repro.recovery.shutdown import (
        EXIT_RESUMABLE,
        GracefulShutdown,
        ShutdownRequested,
    )

    parser = argparse.ArgumentParser(
        description="Regenerate every table and figure."
    )
    parser.add_argument(
        "outdir", nargs="?", default="results", type=pathlib.Path
    )
    parser.add_argument("--fast", action="store_true")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes per grid (default: one per core)",
    )
    parser.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR if set)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any cache directory, even $REPRO_CACHE_DIR",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="replay <outdir>/journal.jsonl; recompute nothing that finished",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-cell wall-clock deadline in seconds "
        "(overruns retry with backoff, then quarantine)",
    )
    parser.add_argument(
        "--deadline-strikes",
        type=int,
        default=3,
        metavar="N",
        help="attempts before an overrunning cell is quarantined (default 3)",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="PREFIX",
        help="run only jobs whose name starts with PREFIX (repeatable)",
    )
    parser.add_argument(
        "--stack-lanes",
        type=int,
        default=None,
        metavar="N",
        help="lane cap per stacked dispatch unit (default 16; 1 disables "
        "lane stacking)",
    )
    args = parser.parse_args(argv)
    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache = resolve_cache(args.cache_dir, args.no_cache)
    deadline = (
        DeadlinePolicy(deadline_s=args.deadline, max_strikes=args.deadline_strikes)
        if args.deadline is not None
        else None
    )
    shutdown = GracefulShutdown()
    try:
        with shutdown:
            regenerate_all(
                args.outdir,
                fast=args.fast,
                only=tuple(args.only) if args.only else None,
                jobs=max(1, jobs),
                cache=cache,
                chunksize=args.chunksize,
                resume=args.resume,
                deadline=deadline,
                shutdown=shutdown,
                stack_lanes=args.stack_lanes,
            )
    except ShutdownRequested as exc:
        print(
            f"\ninterrupted ({exc}); journal flushed — "
            f"relaunch with --resume to continue (exit {EXIT_RESUMABLE})"
        )
        return EXIT_RESUMABLE
    print(f"all tables written to {args.outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
