"""Regenerate every table and figure in one command.

``python -m repro.experiments.report_all [outdir] [--fast] [--jobs N]``
runs the whole evaluation (Figs. 1, 3-8 and Table III plus the
ablations) and writes each rendered table to ``outdir`` (default
``./results``).  ``--fast`` uses very small scales for a minutes-long
smoke pass; the default scales match the benchmark harness.
``--jobs N`` fans each comparison grid's cells across N worker
processes (results are identical — every cell reruns the same seeded
scenario).

This is the scripted equivalent of
``pytest benchmarks/ --benchmark-only`` without the timing machinery —
useful on machines where pytest-benchmark is unavailable.
"""

from __future__ import annotations

import pathlib
import sys
import time
from typing import Callable, Tuple

from repro.experiments import (
    ScenarioConfig,
    ablation,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9_faults,
    table3,
)

__all__ = ["regenerate_all", "main"]


def _jobs(fast: bool, jobs: int = 1) -> Tuple[Tuple[str, Callable[[], object]], ...]:
    scale = 0.05 if fast else 0.18
    svc_scale = 0.04 if fast else 0.1
    cfg = lambda ws, seed: ScenarioConfig(work_scale=ws, seed=seed)
    return (
        ("fig1_remote_ratios", lambda: fig1.run(cfg(scale * 0.8, 0))),
        ("fig3_llc_missrate_rpti", lambda: fig3.run(cfg(0.05, 0))),
        ("fig4_spec_cpu2006", lambda: fig4.run(cfg(scale, 1), jobs=jobs)),
        ("fig5_npb", lambda: fig5.run(cfg(scale, 2), jobs=jobs)),
        (
            "fig6_memcached",
            lambda: fig6.run(
                cfg(svc_scale, 3), concurrencies=(16, 48, 80, 112), jobs=jobs
            ),
        ),
        (
            "fig7_redis",
            lambda: fig7.run(
                cfg(scale, 4), connections=(2000, 6000, 10000), jobs=jobs
            ),
        ),
        ("fig8_sampling_period", lambda: fig8.run(cfg(scale, 0))),
        (
            "fig9_fault_degradation",
            lambda: fig9_faults.run(cfg(scale, 0), seeds=3 if fast else 5, jobs=jobs),
        ),
        ("table3_overhead", lambda: table3.run(cfg(scale, 0))),
        (
            "ablation_dynamic_bounds",
            lambda: ablation.run_bounds_ablation(cfg(scale, 5)),
        ),
        (
            "ablation_page_migration",
            lambda: ablation.run_page_migration_ablation(cfg(scale, 5)),
        ),
    )


def regenerate_all(
    outdir: pathlib.Path,
    fast: bool = False,
    only: "tuple[str, ...] | None" = None,
    jobs: int = 1,
) -> None:
    """Run every experiment; write one .txt and one .json per result.

    The ``.txt`` is the rendered table (unchanged); the ``.json`` is
    the schema-versioned ``to_json()`` envelope for machine consumers.
    ``only`` optionally restricts to jobs whose name starts with one of
    the given prefixes (used by smoke tests).  ``jobs > 1`` fans each
    comparison grid's cells across worker processes.
    """
    from repro.experiments.jsonreport import dump_report

    outdir.mkdir(parents=True, exist_ok=True)
    for name, job in _jobs(fast, jobs):
        if only is not None and not any(name.startswith(p) for p in only):
            continue
        start = time.perf_counter()
        result = job()
        elapsed = time.perf_counter() - start
        text = result.format()
        (outdir / f"{name}.txt").write_text(text + "\n")
        (outdir / f"{name}.json").write_text(dump_report(result.to_json()) + "\n")
        print(f"[{elapsed:7.1f}s] {name}")
        print(text)
        print()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = list(sys.argv[1:] if argv is None else argv)
    fast = "--fast" in args
    if fast:
        args.remove("--fast")
    jobs = 1
    if "--jobs" in args:
        at = args.index("--jobs")
        jobs = int(args[at + 1])
        del args[at : at + 2]
    outdir = pathlib.Path(args[0]) if args else pathlib.Path("results")
    regenerate_all(outdir, fast=fast, jobs=jobs)
    print(f"all tables written to {outdir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
