"""Figure 5: NPB comparison (§V-B2).

Five four-threaded NPB kernels (bt, cg, lu, mg, sp) run identically in
VM1 and VM2 under the five scheduling approaches; VM1 is measured.

Published headline: on sp, vProbe improves 45.2 % over Credit, 15.7 %
over VCPU-P and 9.6 % over LB; LB raises the *total* access count on
bt, lu and sp (it ignores LLC contention) yet still beats VCPU-P
because it preserves locality between sampling periods.
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.experiments.comparison import ComparisonResult, WorkloadPoint, run_grid
from repro.experiments.scenarios import ScenarioConfig, npb_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner

__all__ = ["FIG5_WORKLOADS", "points", "run"]

#: The paper's Fig. 5 x-axis, in order.
FIG5_WORKLOADS: Tuple[str, ...] = ("bt", "cg", "lu", "mg", "sp")


def points(workloads: Sequence[str] = FIG5_WORKLOADS) -> list[WorkloadPoint]:
    """Workload points for the Fig. 5 grid."""
    return [
        WorkloadPoint(name, partial(npb_scenario, name))
        for name in workloads
    ]


def run(
    cfg: Optional[ScenarioConfig] = None,
    workloads: Sequence[str] = FIG5_WORKLOADS,
    schedulers: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional["ParallelRunner"] = None,
) -> ComparisonResult:
    """Run the Fig. 5 grid (``jobs > 1`` fans cells across processes)."""
    return run_grid(
        "Figure 5: NPB",
        points(workloads),
        cfg,
        schedulers,
        jobs=jobs,
        cache=cache,
        runner=runner,
    )
