"""Figure 9 (extension): graceful degradation under telemetry faults.

The paper's evaluation assumes the PMU always tells the truth.  This
sweep asks what each scheduler does when it doesn't: the ``mix``
workload runs with a :class:`~repro.faults.plan.FaultPlan` whose
severity scales with a fault rate ``r`` from 0 to 1, under

* **credit** — never looks at the PMU; its runtime is the flat,
  fault-immune baseline;
* **vprobe** — the paper's scheduler, trusting every sample: corrupted
  counters flip Eq. 3 classifications, so Algorithm 1 migrates VCPUs
  on garbage while dropout starves it of corrections;
* **vprobe-h** — the hardened variant: type hysteresis debounces the
  flips, and once a VCPU's confidence decays below the threshold the
  scheduler reverts to Credit decisions for it.

The expected shape: at ``r=0`` both vProbes beat Credit identically
(hardening costs nothing while telemetry is healthy); as ``r`` grows,
naive vProbe degrades while vProbe-h stays at or below it at every
swept rate, converging toward (not through) the Credit baseline.

Single-seed runtimes of this scenario are chaotic — placement luck
moves a run by up to a second — so every (scheduler, rate) point is
the mean over ``seeds`` paired seeds.  Each (rate, scheduler, seed)
cell is an independent simulation, so the grid fans out on a
:class:`~repro.experiments.parallel.ParallelRunner`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.experiments.parallel import ParallelRunner
from repro.experiments.scenarios import ScenarioConfig, mix_scenario
from repro.faults.plan import FaultPlan
from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = [
    "FIG9_RATES",
    "FIG9_SCHEDULERS",
    "FIG9_SEEDS",
    "fault_plan_for_rate",
    "Fig9Result",
    "run",
]

#: Fault-rate sweep: fraction of sampling windows affected.
FIG9_RATES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Baseline, the paper's scheduler, and the hardened variant.
FIG9_SCHEDULERS: Tuple[str, ...] = ("credit", "vprobe", "vprobe-h")

#: Seeds averaged per sweep point (single seeds are chaotic).
FIG9_SEEDS: int = 10


def fault_plan_for_rate(rate: float) -> FaultPlan:
    """The swept plan: occasional heavy corruption plus some dropout.

    ``rate`` is the probability that a surviving sampling window is
    corrupted with heavy log-normal counter noise (std 2.5 — a wild
    reading, not gentle jitter: real PMU faults are multiplexing
    glitches and overflow, which produce garbage values, not small
    ones).  A fifth of the rate additionally drops windows outright.
    At ``rate=0`` the plan is null and runs are bitwise-identical to
    fault-free ones.
    """
    return FaultPlan(drop_rate=0.2 * rate, noise_std=2.5, noise_rate=rate)


@dataclass(frozen=True, slots=True)
class Fig9Result:
    """Seed-averaged VM1 runtime per (scheduler, fault rate)."""

    rates: Tuple[float, ...]
    schedulers: Tuple[str, ...]
    seeds: int
    #: scheduler -> mean runtime per rate, aligned with ``rates``
    runtime_s: Dict[str, Tuple[float, ...]]
    #: scheduler -> mean injected fault events per rate (0 for credit:
    #: it never opens PMU windows, so there is nothing to drop)
    fault_events: Dict[str, Tuple[float, ...]]

    def runtime(self, scheduler: str, rate: float) -> float:
        """Mean runtime of one point of the sweep."""
        for r, t in zip(self.rates, self.runtime_s[scheduler]):
            if abs(r - rate) < 1e-12:
                return t
        raise KeyError(f"rate {rate} was not swept")

    def format(self) -> str:
        """Render the sweep as a table, one row per fault rate."""
        headers = ["fault rate"] + [f"{s} runtime (s)" for s in self.schedulers]
        rows = []
        for i, rate in enumerate(self.rates):
            rows.append(
                [rate] + [self.runtime_s[s][i] for s in self.schedulers]
            )
        table = format_table(headers, rows, float_fmt="{:.3f}")
        return f"{table}\n(mean over {self.seeds} seeds per point)"

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "fig9",
            {
                "rates": list(self.rates),
                "schedulers": list(self.schedulers),
                "seeds": self.seeds,
                "runtime_s": {s: list(t) for s, t in self.runtime_s.items()},
                "fault_events": {s: list(t) for s, t in self.fault_events.items()},
            },
        )


def run(
    cfg: Optional[ScenarioConfig] = None,
    rates: Sequence[float] = FIG9_RATES,
    schedulers: Sequence[str] = FIG9_SCHEDULERS,
    seeds: int = FIG9_SEEDS,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional[ParallelRunner] = None,
) -> Fig9Result:
    """Sweep fault rates across schedulers on the ``mix`` workload.

    Each sweep point averages ``seeds`` runs seeded ``cfg.seed + i``;
    the same seeds pair across schedulers and rates.
    """
    base = cfg or ScenarioConfig(work_scale=0.25)
    cells = []
    for rate in rates:
        plan = fault_plan_for_rate(rate)
        for name in schedulers:
            for i in range(seeds):
                config = dataclasses.replace(
                    base,
                    seed=base.seed + i,
                    faults=None if plan.is_null() else plan,
                    label=f"fig9 mix faults={rate:g} seed={base.seed + i}",
                )
                cells.append((mix_scenario, name, config))
    if runner is None:
        runner = ParallelRunner(jobs, cache=cache)
    summaries = runner.run_cells(cells)
    runtime: Dict[str, list] = {name: [] for name in schedulers}
    events: Dict[str, list] = {name: [] for name in schedulers}
    at = 0
    for _rate in rates:
        for name in schedulers:
            group = summaries[at : at + seeds]
            at += seeds
            runtime[name].append(
                sum(s.domain("vm1").mean_finish_time_s for s in group) / seeds
            )
            events[name].append(
                sum(
                    s.fault_stats.total_events if s.fault_stats else 0
                    for s in group
                )
                / seeds
            )
    return Fig9Result(
        rates=tuple(rates),
        schedulers=tuple(schedulers),
        seeds=seeds,
        runtime_s={k: tuple(v) for k, v in runtime.items()},
        fault_events={k: tuple(v) for k, v in events.items()},
    )


def main(argv: Optional[Sequence[str]] = None) -> None:
    """CLI entry point; ``--smoke`` runs a seconds-scale CI check."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--work-scale", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=FIG9_SEEDS)
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workload and a coarse rate grid (CI smoke run)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        cfg = ScenarioConfig(work_scale=0.02, seed=args.seed, max_time_s=30.0)
        rates: Sequence[float] = (0.0, 0.5, 1.0)
        seeds = 2
    else:
        cfg = ScenarioConfig(work_scale=args.work_scale, seed=args.seed)
        rates = FIG9_RATES
        seeds = args.seeds
    result = run(cfg, rates=rates, seeds=seeds, jobs=args.jobs)
    print(result.format())


if __name__ == "__main__":  # pragma: no cover - manual entry point
    main()
