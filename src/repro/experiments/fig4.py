"""Figure 4: SPEC CPU2006 comparison (§V-B1).

Five workloads — four identical-instance workloads (soplex,
libquantum, mcf, milc; mcf split 6/2 between VM1/VM2) plus the
four-application ``mix`` — under the five scheduling approaches.
Panels: normalised execution time, total and remote memory accesses.

Published headline: on soplex, vProbe improves 32.5 % over Credit,
16.6 % over VCPU-P and 10.2 % over LB; BRM lands at or below Credit
despite reducing both access counts (lock contention).
"""

from __future__ import annotations

from functools import partial
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.experiments.comparison import ComparisonResult, WorkloadPoint, run_grid
from repro.experiments.scenarios import ScenarioConfig, mix_scenario, spec_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner

__all__ = ["FIG4_WORKLOADS", "points", "run"]

#: The paper's Fig. 4 x-axis, in order.
FIG4_WORKLOADS: Tuple[str, ...] = ("soplex", "libquantum", "mcf", "milc", "mix")


def points(workloads: Sequence[str] = FIG4_WORKLOADS) -> list[WorkloadPoint]:
    """Workload points for the Fig. 4 grid."""
    pts = []
    for name in workloads:
        if name == "mix":
            pts.append(WorkloadPoint("mix", mix_scenario))
        else:
            pts.append(
                WorkloadPoint(
                    name, partial(spec_scenario, name)
                )
            )
    return pts


def run(
    cfg: Optional[ScenarioConfig] = None,
    workloads: Sequence[str] = FIG4_WORKLOADS,
    schedulers: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional["ParallelRunner"] = None,
) -> ComparisonResult:
    """Run the Fig. 4 grid (``jobs > 1`` fans cells across processes)."""
    return run_grid(
        "Figure 4: SPEC CPU2006",
        points(workloads),
        cfg,
        schedulers,
        jobs=jobs,
        cache=cache,
        runner=runner,
    )
