"""Figure 7: redis under redis-benchmark ``get`` load (§V-B4).

Four redis server instances run in VM1 and VM2; the client sweeps
2 000-10 000 parallel connections.  Unlike Figs. 4-6 the first panel is
*throughput* (operations per second), higher is better.

Published headlines: the best case is 26.0 % over Credit at 2 000
connections; VCPU-P outperforms LB throughout because LLC contention is
redis's dominant degradation factor; BRM lands near Credit.
"""

from __future__ import annotations

from functools import partial

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.experiments.comparison import ComparisonResult, WorkloadPoint, run_grid
from repro.experiments.scenarios import ScenarioConfig, redis_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache
    from repro.experiments.parallel import ParallelRunner
from repro.metrics.report import format_table
from repro.workloads.services import REDIS_INSTR_PER_OP

__all__ = ["FIG7_CONNECTIONS", "Fig7Result", "points", "run"]

#: The paper's Fig. 7 x-axis: parallel client connections.
FIG7_CONNECTIONS: Tuple[int, ...] = (2000, 4000, 6000, 8000, 10000)


@dataclass(frozen=True, slots=True)
class Fig7Result:
    """Fig. 7 grid plus redis-specific throughput accessors."""

    grid: ComparisonResult

    def throughput(self, workload: str, scheduler: str) -> float:
        """Panel (a): VM1 aggregate ``get`` operations per second."""
        cell = self.grid.cell(workload, scheduler)
        if cell.exec_time_s <= 0:
            return 0.0
        return cell.instructions / REDIS_INSTR_PER_OP / cell.exec_time_s

    def throughput_table(self) -> str:
        """Render the throughput panel."""
        rows = [
            [w] + [self.throughput(w, s) for s in self.grid.schedulers]
            for w in self.grid.workloads
        ]
        return format_table(
            ["connections"] + list(self.grid.schedulers), rows, float_fmt="{:.0f}"
        )

    def format(self) -> str:
        """Render throughput plus the two access panels."""
        return "\n\n".join(
            (
                f"{self.grid.name} (throughput, ops/s)\n{self.throughput_table()}",
                f"{self.grid.name} (normalized total memory accesses)\n"
                f"{self.grid.panel_table('total')}",
                f"{self.grid.name} (normalized remote memory accesses)\n"
                f"{self.grid.panel_table('remote')}",
            )
        )

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        payload = self.grid.to_payload()
        payload["throughput_ops"] = {
            w: {s: self.throughput(w, s) for s in self.grid.schedulers}
            for w in self.grid.workloads
        }
        return report("fig7", payload)


def points(connections: Sequence[int] = FIG7_CONNECTIONS) -> list[WorkloadPoint]:
    """Workload points for the Fig. 7 sweep."""
    return [
        WorkloadPoint(
            f"n={conn}", partial(redis_scenario, conn)
        )
        for conn in connections
    ]


def run(
    cfg: Optional[ScenarioConfig] = None,
    connections: Sequence[int] = FIG7_CONNECTIONS,
    schedulers: Optional[Sequence[str]] = None,
    jobs: int = 1,
    cache: Optional["ResultCache"] = None,
    runner: Optional["ParallelRunner"] = None,
) -> Fig7Result:
    """Run the Fig. 7 sweep (``jobs > 1`` fans cells across processes)."""
    grid = run_grid(
        "Figure 7: redis",
        points(connections),
        cfg,
        schedulers,
        jobs=jobs,
        cache=cache,
        runner=runner,
    )
    return Fig7Result(grid=grid)
