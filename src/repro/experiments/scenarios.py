"""Scenario builders reproducing the paper's experimental setups.

§V-A methodology, encoded once and reused by every experiment module:

* **VM1** — 8 VCPUs, 15 GB memory *split across both nodes*, runs the
  memory-intensive applications under measurement;
* **VM2** — 8 VCPUs, 5 GB, an interfering VM running the same
  workloads as VM1;
* **VM3** — 8 VCPUs, 1 GB, eight hungry-loop applications consuming
  all spare CPU;
* host: the Table I two-socket Xeon E5620 (8 PCPUs total).

Per-workload details follow §V-B: SPEC workloads run four identical
single-threaded instances (six/two for mcf because of VM2's memory
limit), the ``mix`` workload one instance of each of the four SPEC
applications, NPB kernels run four threads, memcached uses eight
worker ports, redis four server instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.baselines.brm import BRMScheduler
from repro.core.classify import Bounds
from repro.core.vprobe import (
    load_balance_only,
    vcpu_partition_only,
    vprobe,
    vprobe_hardened,
)
from repro.faults.plan import FaultPlan
from repro.hardware.memory import LatencySpec
from repro.hardware.topology import GIB, NUMATopology, xeon_e5620
from repro.workloads.appmodel import ApplicationProfile, VcpuWorkload
from repro.workloads.generators import scaled_profile
from repro.workloads.services import memcached_profile, redis_profile
from repro.workloads.suites import get_profile, hungry_loop
from repro.xen.credit import CreditParams, CreditScheduler, SchedulerPolicy
from repro.xen.domain import Domain
from repro.xen.memalloc import place_interleaved, place_single_node, place_split
from repro.xen.simulator import Machine, SimConfig
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

__all__ = [
    "ScenarioConfig",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "build_machine",
    "spec_scenario",
    "mix_scenario",
    "npb_scenario",
    "memcached_scenario",
    "redis_scenario",
    "solo_scenario",
    "motivation_scenario",
    "overhead_scenario",
]

#: The five scheduling approaches of §V-A(2), in the paper's order.
SCHEDULER_NAMES = ("credit", "vprobe", "vcpu-p", "lb", "brm")

#: SPEC instance split between VM1/VM2 (§V-B1: mcf is 6/2 because VM2's
#: 5 GB only fits two mcf instances; every other workload is 4/4).
_SPEC_INSTANCES = {"default": (4, 4), "mcf": (6, 2)}

#: The four applications composing the ``mix`` workload.
MIX_APPS = ("soplex", "libquantum", "mcf", "milc")


@dataclass(frozen=True, slots=True)
class ScenarioConfig:
    """Knobs shared by every scenario.

    Attributes
    ----------
    work_scale:
        Multiplier on each finite profile's total instructions; <1
        shortens runs without changing per-instruction behaviour.
    seed:
        Root seed; paired across schedulers for fair comparisons.
    sample_period_s:
        vProbe/BRM sampling period (swept by the Fig. 8 experiment).
    max_time_s:
        Simulation budget.
    epoch_s:
        Simulator epoch.
    log_events:
        Keep the structured event log.
    latency:
        Memory latency model override.
    engine:
        Simulator engine: ``"batched"`` (default, macro-stepping),
        ``"vector"`` (singleton array kernels) or ``"reference"``
        (scalar dict loop).  All three are bitwise-identical; the
        default is simply the fastest.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan` injected into
        every machine built from this config; None (default) runs
        fault-free.
    max_epochs:
        Optional hard cap on simulated epochs — exceeded, the run
        raises :class:`~repro.xen.simulator.SimulationTimeout` naming
        the scenario instead of spinning forever.
    label:
        Human-readable scenario name carried into error messages.
    fuse_ticks:
        Forwarded to :attr:`~repro.xen.simulator.SimConfig.fuse_ticks`;
        ``False`` restores the tick-capped horizon sizing (batched
        engine only, results identical either way).
    speculative:
        Forwarded to
        :attr:`~repro.xen.simulator.SimConfig.speculative`; opt-in
        validate-and-truncate horizon sizing (batched engine only,
        results identical either way).
    """

    work_scale: float = 0.10
    seed: int = 0
    sample_period_s: float = 1.0
    max_time_s: float = 120.0
    epoch_s: float = 1e-3
    log_events: bool = False
    latency: LatencySpec = field(default_factory=LatencySpec)
    engine: str = "batched"
    faults: Optional[FaultPlan] = None
    max_epochs: Optional[int] = None
    label: str = ""
    fuse_ticks: bool = True
    speculative: bool = False

    def __post_init__(self) -> None:
        check_positive(self.work_scale, "work_scale")
        check_positive(self.max_time_s, "max_time_s")

    def sim_config(self) -> SimConfig:
        """The corresponding simulator configuration."""
        return SimConfig(
            epoch_s=self.epoch_s,
            sample_period_s=self.sample_period_s,
            max_time_s=self.max_time_s,
            seed=self.seed,
            latency=self.latency,
            log_events=self.log_events,
            engine=self.engine,
            faults=self.faults,
            max_epochs=self.max_epochs,
            label=self.label,
            fuse_ticks=self.fuse_ticks,
            speculative=self.speculative,
        )


def make_scheduler(
    name: str,
    params: Optional[CreditParams] = None,
    bounds: Optional[Bounds] = None,
    dynamic_bounds: bool = False,
) -> SchedulerPolicy:
    """Instantiate one of the §V-A(2) scheduling approaches by name.

    Beyond the paper's five, ``"vprobe-h"`` builds the hardened vProbe
    (type hysteresis + per-VCPU confidence fallback) used by the fault
    experiments; it is deliberately not part of ``SCHEDULER_NAMES``.
    """
    key = name.lower()
    if key == "credit":
        return CreditScheduler(params)
    if key == "vprobe":
        return vprobe(params, bounds, dynamic_bounds=dynamic_bounds)
    if key == "vprobe-h":
        return vprobe_hardened(params, bounds)
    if key == "vcpu-p":
        return vcpu_partition_only(params, bounds)
    if key == "lb":
        return load_balance_only(params, bounds)
    if key == "brm":
        return BRMScheduler(params)
    raise ValueError(
        f"unknown scheduler {name!r}; known: {SCHEDULER_NAMES + ('vprobe-h',)}"
    )


def build_machine(
    policy: SchedulerPolicy,
    cfg: ScenarioConfig,
    domains: Sequence[Domain],
    topology: Optional[NUMATopology] = None,
) -> Machine:
    """Assemble a machine from a policy, config and domain list."""
    machine = Machine(topology or xeon_e5620(), policy, cfg.sim_config())
    for domain in domains:
        machine.add_domain(domain)
    return machine


# ---------------------------------------------------------------------------
# Domain helpers
# ---------------------------------------------------------------------------


def _workloads(
    profile: ApplicationProfile,
    num_vcpus: int,
    active: int,
    rng: RngStreams,
    tag: str,
) -> List[VcpuWorkload]:
    """Homogeneous per-VCPU workloads, first ``active`` VCPUs running."""
    return [
        VcpuWorkload(
            profile,
            rng.get(f"{tag}.v{i}"),
            slice_id=i,
            num_slices=num_vcpus,
            active=i < active,
        )
        for i in range(num_vcpus)
    ]


def _vm3(rng: RngStreams, num_nodes: int) -> Domain:
    """VM3: 1 GB, eight hungry loops (§V-A)."""
    return Domain(
        "vm3",
        1 * GIB,
        place_single_node(8, num_nodes, node=0),
        _workloads(hungry_loop(), 8, 8, rng, "vm3"),
    )


def _measured_and_interfering(
    vm1_workloads: List[VcpuWorkload],
    vm2_workloads: List[VcpuWorkload],
    rng: RngStreams,
    num_nodes: int,
    include_vm3: bool = True,
    vm1_memory: float = 15 * GIB,
    vm2_memory: float = 5 * GIB,
) -> List[Domain]:
    """The standard three-VM layout of §V-A."""
    vm1 = Domain("vm1", vm1_memory, place_split(len(vm1_workloads), num_nodes), vm1_workloads)
    vm2 = Domain(
        "vm2",
        vm2_memory,
        place_single_node(len(vm2_workloads), num_nodes, node=1 % num_nodes),
        vm2_workloads,
    )
    domains = [vm1, vm2]
    if include_vm3:
        domains.append(_vm3(rng, num_nodes))
    return domains


# ---------------------------------------------------------------------------
# §V-B scenarios
# ---------------------------------------------------------------------------


def spec_scenario(
    app: str, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§V-B1 SPEC CPU2006 workload: identical instances in VM1/VM2."""
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = scaled_profile(get_profile(app), cfg.work_scale)
    n1, n2 = _SPEC_INSTANCES.get(app, _SPEC_INSTANCES["default"])
    domains = _measured_and_interfering(
        _workloads(profile, 8, n1, rng, "vm1"),
        _workloads(profile, 8, n2, rng, "vm2"),
        rng,
        topo.num_nodes,
    )
    return build_machine(policy, cfg, domains, topo)


def mix_scenario(policy: SchedulerPolicy, cfg: ScenarioConfig) -> Machine:
    """§V-B1 ``mix`` workload: one instance of each SPEC application."""
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)

    def mixed(tag: str) -> List[VcpuWorkload]:
        workloads = []
        for i in range(8):
            active = i < len(MIX_APPS)
            profile = scaled_profile(
                get_profile(MIX_APPS[i % len(MIX_APPS)]), cfg.work_scale
            )
            workloads.append(
                VcpuWorkload(
                    profile,
                    rng.get(f"{tag}.v{i}"),
                    slice_id=i,
                    num_slices=8,
                    active=active,
                )
            )
        return workloads

    domains = _measured_and_interfering(
        mixed("vm1"), mixed("vm2"), rng, topo.num_nodes
    )
    return build_machine(policy, cfg, domains, topo)


def npb_scenario(
    app: str, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§V-B2 NPB workload: the four-threaded kernel in VM1 and VM2."""
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = scaled_profile(get_profile(app), cfg.work_scale)
    domains = _measured_and_interfering(
        _workloads(profile, 8, 4, rng, "vm1"),
        _workloads(profile, 8, 4, rng, "vm2"),
        rng,
        topo.num_nodes,
    )
    return build_machine(policy, cfg, domains, topo)


def memcached_scenario(
    concurrency: int, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§V-B3 memcached: 8-port servers in VM1/VM2 under memslap load."""
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = memcached_profile(concurrency, total_ops=500e3 * cfg.work_scale)
    domains = _measured_and_interfering(
        _workloads(profile, 8, 8, rng, "vm1"),
        _workloads(profile, 8, 8, rng, "vm2"),
        rng,
        topo.num_nodes,
    )
    return build_machine(policy, cfg, domains, topo)


def redis_scenario(
    connections: int, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§V-B4 redis: four server instances in VM1/VM2 serving ``get``."""
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = redis_profile(connections, total_requests=300e3 * cfg.work_scale)
    domains = _measured_and_interfering(
        _workloads(profile, 8, 4, rng, "vm1"),
        _workloads(profile, 8, 4, rng, "vm2"),
        rng,
        topo.num_nodes,
    )
    return build_machine(policy, cfg, domains, topo)


# ---------------------------------------------------------------------------
# Calibration / motivation / overhead scenarios
# ---------------------------------------------------------------------------


def solo_scenario(
    app: str, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§IV-A calibration: one VM, 1 VCPU, pinned to its local node.

    Used by the Fig. 3 experiment to measure each application's solo
    LLC miss rate and RPTI.
    """
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = scaled_profile(get_profile(app), cfg.work_scale)
    vm1 = Domain(
        "vm1",
        4 * GIB,
        place_single_node(1, topo.num_nodes, node=0),
        _workloads(profile, 1, 1, rng, "vm1"),
        pinned_pcpus=[0],
    )
    return build_machine(policy, cfg, [vm1], topo)


def motivation_scenario(
    app: str, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§II-B motivation setup behind Fig. 1.

    VM1/VM2 (8 GB, 8 VCPUs) run the application — four threads or four
    instances — and VM3 (2 GB) runs eight hungry loops.  VM1's memory
    lands on node 0 (Xen fills the first node), VM2's is spread, VM3's
    sits on node 1.
    """
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = scaled_profile(get_profile(app), cfg.work_scale)
    vm1 = Domain(
        "vm1",
        8 * GIB,
        place_single_node(8, topo.num_nodes, node=0),
        _workloads(profile, 8, 4, rng, "vm1"),
    )
    vm2 = Domain(
        "vm2",
        8 * GIB,
        place_interleaved(8, topo.num_nodes),
        _workloads(profile, 8, 4, rng, "vm2"),
    )
    vm3 = Domain(
        "vm3",
        2 * GIB,
        place_single_node(8, topo.num_nodes, node=1 % topo.num_nodes),
        _workloads(hungry_loop(), 8, 8, rng, "vm3"),
    )
    return build_machine(policy, cfg, [vm1, vm2, vm3], topo)


def overhead_scenario(
    num_vms: int, policy: SchedulerPolicy, cfg: ScenarioConfig
) -> Machine:
    """§V-C1 overhead setup: 1-4 VMs x (2 VCPUs, 4 GB, soplex x2)."""
    if not 1 <= num_vms <= 8:
        raise ValueError(f"num_vms must be in [1, 8], got {num_vms}")
    topo = xeon_e5620()
    rng = RngStreams(cfg.seed)
    profile = scaled_profile(get_profile("soplex"), cfg.work_scale)
    domains = []
    for i in range(num_vms):
        domains.append(
            Domain(
                f"vm{i + 1}",
                4 * GIB,
                place_single_node(2, topo.num_nodes, node=i % topo.num_nodes),
                _workloads(profile, 2, 2, rng, f"vm{i + 1}"),
            )
        )
    return build_machine(policy, cfg, domains, topo)
