"""Figure 8: sampling-period sensitivity (§V-C2).

The ``mix`` workload runs under vProbe with the sampling period swept
from 0.1 s to 10 s; the metric is the workload's absolute runtime.
The paper finds a U-shape: short periods suffer from per-period costs
(every partitioning pass preempts and migrates VCPUs, and the greedy
fill of Algorithm 1 can flip marginal assignments period to period,
ping-ponging VCPUs across sockets with cold caches), long periods
suffer from stale memory-access characteristics (phases move a VCPU's
hot slice but the scheduler keeps using last period's affinity).  The
paper picks 1 s; the sweep validates that choice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.experiments.runner import run_one
from repro.experiments.scenarios import ScenarioConfig, mix_scenario
from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = ["FIG8_PERIODS", "Fig8Result", "run"]

#: Sampling periods swept (seconds); the paper's axis is 0.1-10 s.
FIG8_PERIODS: Tuple[float, ...] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True, slots=True)
class Fig8Result:
    """Runtime of the mix workload per sampling period."""

    periods: Tuple[float, ...]
    runtime_s: Tuple[float, ...]
    scheduler: str

    def best_period(self) -> float:
        """The sampling period with the lowest runtime."""
        idx = min(range(len(self.periods)), key=lambda i: self.runtime_s[i])
        return self.periods[idx]

    def runtime_at(self, period: float) -> float:
        """Runtime measured at one swept period."""
        for p, t in zip(self.periods, self.runtime_s):
            if abs(p - period) < 1e-12:
                return t
        raise KeyError(f"period {period} was not swept")

    def format(self) -> str:
        """Render the sweep as a table."""
        rows = list(zip(self.periods, self.runtime_s))
        return format_table(
            ["sampling period (s)", "mix runtime (s)"], rows, float_fmt="{:.3f}"
        )

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "fig8",
            {
                "scheduler": self.scheduler,
                "periods": list(self.periods),
                "runtime_s": list(self.runtime_s),
                "best_period": self.best_period(),
            },
        )


def run(
    cfg: Optional[ScenarioConfig] = None,
    periods: Sequence[float] = FIG8_PERIODS,
    scheduler: str = "vprobe",
    cache: Optional["ResultCache"] = None,
) -> Fig8Result:
    """Sweep the sampling period for the mix workload."""
    base = cfg or ScenarioConfig(work_scale=0.25)
    runtimes = []
    for period in periods:
        config = ScenarioConfig(
            work_scale=base.work_scale,
            seed=base.seed,
            sample_period_s=period,
            max_time_s=base.max_time_s,
            epoch_s=base.epoch_s,
            log_events=base.log_events,
            latency=base.latency,
        )
        summary = run_one(mix_scenario, scheduler, config, cache=cache)
        runtimes.append(summary.domain("vm1").mean_finish_time_s or float("nan"))
    return Fig8Result(
        periods=tuple(periods), runtime_s=tuple(runtimes), scheduler=scheduler
    )
