"""Figure 3: solo LLC miss rate and RPTI per application (§IV-A).

The calibration experiment behind the classification bounds: one VM
with a single VCPU pinned to its local node runs each application
alone; the PMU reports the LLC miss rate (Fig. 3a) and LLC references
per thousand instructions (Fig. 3b).  The paper reads off low = 3 and
high = 20 from the gap between the LLC-FR pair (povray 0.48, ep 2.01),
the LLC-FI pair (lu 15.38, mg 16.33) and the LLC-T pair (milc 21.68,
libquantum 22.41).

Because our profiles are calibrated to those published RPTI values,
this experiment doubles as a model self-check: the measured RPTI must
match the paper to two decimals and each application must classify
into its published category under the default bounds.
"""

from __future__ import annotations

from functools import partial

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Sequence, Tuple

from repro.core.classify import Bounds, classify
from repro.experiments.runner import run_one
from repro.experiments.scenarios import ScenarioConfig, solo_scenario
from repro.metrics.report import format_table
from repro.xen.vcpu import VcpuType

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = ["FIG3_APPS", "PAPER_RPTI", "Fig3Row", "Fig3Result", "run"]

#: Applications in the paper's Fig. 3, in its order.
FIG3_APPS: Tuple[str, ...] = ("povray", "ep", "lu", "mg", "milc", "libquantum")

#: Published Fig. 3(b) RPTI values (the calibration anchors).
PAPER_RPTI: Dict[str, float] = {
    "povray": 0.48,
    "ep": 2.01,
    "lu": 15.38,
    "mg": 16.33,
    "milc": 21.68,
    "libquantum": 22.41,
}

#: Published classification per application.
PAPER_CLASS: Dict[str, VcpuType] = {
    "povray": VcpuType.LLC_FR,
    "ep": VcpuType.LLC_FR,
    "lu": VcpuType.LLC_FI,
    "mg": VcpuType.LLC_FI,
    "milc": VcpuType.LLC_T,
    "libquantum": VcpuType.LLC_T,
}


@dataclass(frozen=True, slots=True)
class Fig3Row:
    """One application's solo measurements."""

    app: str
    miss_rate: float  #: LLC misses / references (Fig. 3a)
    rpti: float  #: LLC references per kilo-instruction (Fig. 3b)
    vcpu_type: VcpuType  #: classification under the given bounds
    paper_rpti: float  #: published anchor


@dataclass(frozen=True, slots=True)
class Fig3Result:
    """Solo-run calibration table."""

    rows: Tuple[Fig3Row, ...]
    bounds: Bounds

    def format(self) -> str:
        """Render Fig. 3(a)+(b) as one table."""
        table = [
            (r.app, r.miss_rate * 100.0, r.rpti, r.paper_rpti, r.vcpu_type.value)
            for r in self.rows
        ]
        return format_table(
            ["application", "miss rate (%)", "RPTI", "paper RPTI", "class"],
            table,
            float_fmt="{:.2f}",
        )

    def row(self, app: str) -> Fig3Row:
        """Look up one application's row."""
        for r in self.rows:
            if r.app == app:
                return r
        raise KeyError(f"no row for {app!r}")

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "fig3",
            {
                "bounds": {"low": self.bounds.low, "high": self.bounds.high},
                "rows": [
                    {
                        "app": r.app,
                        "miss_rate": r.miss_rate,
                        "rpti": r.rpti,
                        "vcpu_type": r.vcpu_type.value,
                        "paper_rpti": r.paper_rpti,
                    }
                    for r in self.rows
                ],
            },
        )


def run(
    cfg: Optional[ScenarioConfig] = None,
    apps: Sequence[str] = FIG3_APPS,
    bounds: Optional[Bounds] = None,
    cache: Optional["ResultCache"] = None,
) -> Fig3Result:
    """Run the solo calibration for each application."""
    config = cfg or ScenarioConfig(work_scale=0.05)
    b = bounds or Bounds()
    rows = []
    for app in apps:
        builder = partial(solo_scenario, app)
        summary = run_one(builder, "credit", config, cache=cache)
        stats = summary.domain("vm1")
        rows.append(
            Fig3Row(
                app=app,
                miss_rate=stats.llc_miss_rate,
                rpti=stats.rpti,
                vcpu_type=classify(stats.rpti, b),
                paper_rpti=PAPER_RPTI.get(app, float("nan")),
            )
        )
    return Fig3Result(rows=tuple(rows), bounds=b)
