"""Ablations beyond the paper's own (VCPU-P / LB are in Figs. 4-7).

Three studies for the design choices DESIGN.md calls out:

* **Dynamic bounds** (§VI future work): static Eq. 3 bounds vs the
  quantile-tracking adaptation of :mod:`repro.core.bounds`, on the mix
  workload whose pressure distribution straddles the static bounds.
* **Affinity preference** (Algorithm 1, step "prefer
  groupOfVc(type, MIN-NODE)"): vProbe with normal partitioning vs a
  variant that ignores affinity when filling MIN-NODE, quantifying how
  much of vProbe's win comes from locality vs pure LLC balance.
* **Classification value**: vProbe with the standard classes vs with
  bounds so extreme every VCPU looks LLC-FR (partitioning disabled in
  effect), isolating the value of treating memory-intensive VCPUs
  specially.
* **Page migration** (§VI combined strategy): plain vProbe vs vProbe
  that also migrates the hot pages of forced-remote VCPUs to their
  assigned node, paying the copy cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional

from repro.core.classify import Bounds
from repro.core.vprobe import VProbeParams, VProbeScheduler
from repro.experiments.scenarios import ScenarioConfig, mix_scenario
from repro.metrics.collectors import summarize
from repro.metrics.report import format_table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

#: Builder identity of :func:`mix_scenario` for ablation cache keys
#: (the variants construct policies directly, so each passes its own
#: ``ablation:<study>/<variant>`` scheduler identity instead of a name).
_MIX_BUILDER_ID = "repro.experiments.scenarios.mix_scenario()"

__all__ = [
    "AblationResult",
    "run_bounds_ablation",
    "run_classification_ablation",
    "run_page_migration_ablation",
]


@dataclass(frozen=True, slots=True)
class AblationResult:
    """Mix-workload runtime per ablation variant."""

    runtime_s: Dict[str, float]
    remote_ratio: Dict[str, float]

    def format(self) -> str:
        """Render variants side by side."""
        rows = [
            (name, self.runtime_s[name], self.remote_ratio[name] * 100.0)
            for name in self.runtime_s
        ]
        return format_table(
            ["variant", "mix runtime (s)", "remote (%)"], rows, float_fmt="{:.3f}"
        )

    def to_json(self) -> dict:
        """Schema-versioned machine-readable result."""
        from repro.experiments.jsonreport import report

        return report(
            "ablation",
            {
                "runtime_s": dict(self.runtime_s),
                "remote_ratio": dict(self.remote_ratio),
            },
        )


def _run_variant(
    policy: VProbeScheduler,
    cfg: ScenarioConfig,
    cache: Optional["ResultCache"] = None,
    identity: Optional[str] = None,
):
    key = None
    if cache is not None and identity is not None:
        from repro.cache.keys import scenario_key

        key = scenario_key(_MIX_BUILDER_ID, identity, cfg)
        hit = cache.get(key)
        if hit is not None:
            return hit
    machine = mix_scenario(policy, cfg)
    machine.run()
    summary = summarize(machine)
    if key is not None:
        cache.put(key, summary, meta={"scheduler": identity, "seed": cfg.seed})
    return summary


def run_bounds_ablation(
    cfg: Optional[ScenarioConfig] = None,
    cache: Optional["ResultCache"] = None,
) -> AblationResult:
    """Static vs dynamic classification bounds on the mix workload."""
    config = cfg or ScenarioConfig(work_scale=0.2)
    variants = {
        "static-bounds": VProbeScheduler(vparams=VProbeParams()),
        "dynamic-bounds": VProbeScheduler(
            vparams=VProbeParams(dynamic_bounds=True)
        ),
    }
    runtime: Dict[str, float] = {}
    remote: Dict[str, float] = {}
    for name, policy in variants.items():
        summary = _run_variant(
            policy, config, cache=cache, identity=f"ablation:bounds/{name}"
        )
        stats = summary.domain("vm1")
        runtime[name] = stats.mean_finish_time_s or float("nan")
        remote[name] = stats.remote_ratio
    return AblationResult(runtime_s=runtime, remote_ratio=remote)


def run_page_migration_ablation(
    cfg: Optional[ScenarioConfig] = None,
    cache: Optional["ResultCache"] = None,
) -> AblationResult:
    """Plain vProbe vs the §VI combined VCPU+page migration strategy."""
    config = cfg or ScenarioConfig(work_scale=0.2)
    variants = {
        "vcpu-only": VProbeScheduler(vparams=VProbeParams()),
        "vcpu+page-migration": VProbeScheduler(
            vparams=VProbeParams(page_migration=True)
        ),
    }
    runtime: Dict[str, float] = {}
    remote: Dict[str, float] = {}
    for name, policy in variants.items():
        summary = _run_variant(
            policy, config, cache=cache, identity=f"ablation:page-migration/{name}"
        )
        stats = summary.domain("vm1")
        runtime[name] = stats.mean_finish_time_s or float("nan")
        remote[name] = stats.remote_ratio
    return AblationResult(runtime_s=runtime, remote_ratio=remote)


def run_classification_ablation(
    cfg: Optional[ScenarioConfig] = None,
    cache: Optional["ResultCache"] = None,
) -> AblationResult:
    """Standard classes vs 'everything looks friendly' bounds.

    With both bounds pushed above any observable pressure, no VCPU is
    ever memory-intensive: partitioning becomes a no-op and only the
    NUMA-aware balancer remains — quantifying what classification buys.
    """
    config = cfg or ScenarioConfig(work_scale=0.2)
    variants = {
        "standard-classes": VProbeScheduler(vparams=VProbeParams()),
        "all-friendly": VProbeScheduler(
            vparams=VProbeParams(bounds=Bounds(low=1e6, high=2e6))
        ),
    }
    runtime: Dict[str, float] = {}
    remote: Dict[str, float] = {}
    for name, policy in variants.items():
        summary = _run_variant(
            policy, config, cache=cache, identity=f"ablation:classification/{name}"
        )
        stats = summary.domain("vm1")
        runtime[name] = stats.mean_finish_time_s or float("nan")
        remote[name] = stats.remote_ratio
    return AblationResult(runtime_s=runtime, remote_ratio=remote)
