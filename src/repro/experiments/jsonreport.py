"""Machine-readable report envelopes for the experiment modules.

Every ``to_json()`` across ``experiments/`` returns the same
schema-versioned wrapper::

    {"schema": "repro.report/v2", "kind": "fig4", "payload": {...}}

so downstream tooling (CI validation, run diffing, plotting scripts)
can dispatch on ``kind`` without knowing each figure's shape, and
:func:`repro.obs.schema.validate_report` can check any of them.

Payloads are sanitized for strict JSON on the way in: non-finite
floats (the ``float("nan")`` that marks an unfinished workload's
runtime) become ``null``, and tuples become lists.  ``json.dumps``
would otherwise emit bare ``NaN`` — accepted by Python, rejected by
every strict parser.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict

from repro.obs.schema import REPORT_SCHEMA

__all__ = ["report", "dump_report"]


def _clean(obj: Any) -> Any:
    """Make ``obj`` strictly JSON-serializable (NaN/inf -> null)."""
    if isinstance(obj, float):
        return obj if math.isfinite(obj) else None
    if isinstance(obj, dict):
        return {str(k): _clean(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_clean(v) for v in obj]
    return obj


def report(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a payload in the versioned report envelope."""
    return {"schema": REPORT_SCHEMA, "kind": kind, "payload": _clean(payload)}


def dump_report(envelope: Dict[str, Any]) -> str:
    """Render an envelope as stable, human-diffable JSON text."""
    return json.dumps(envelope, indent=2, sort_keys=True, allow_nan=False)
