"""Experiment runner: paired runs across scheduling approaches.

Every comparison in the paper holds the workload fixed and swaps the
scheduler.  The runner reproduces that pairing: all schedulers see the
same scenario built from the same seed, so workload randomness (phase
changes, service bursts) is identical across policies and differences
are attributable to scheduling alone.

Every entry point takes an optional
:class:`~repro.cache.store.ResultCache`: because each cell is a
deterministic function of (builder, scheduler, config), a cached
summary *is* the run's result, and a hit skips the simulation
entirely.  With ``cache=None`` (the default) the code path is exactly
the historical one, bit for bit.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
)
from repro.metrics.collectors import RunSummary, summarize
from repro.xen.credit import SchedulerPolicy
from repro.xen.simulator import Machine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

__all__ = [
    "ScenarioBuilder",
    "execute_cell",
    "run_one",
    "compare",
    "compare_mean",
    "aggregate_mean_stats",
    "MeanStats",
]

#: A scenario builder: (policy, config) -> ready-to-run machine.
ScenarioBuilder = Callable[[SchedulerPolicy, ScenarioConfig], Machine]


def execute_cell(
    builder: ScenarioBuilder,
    scheduler: str,
    cfg: ScenarioConfig,
    audit: object = None,
) -> RunSummary:
    """Build and run one scenario under one scheduler, cache-blind.

    This is the function worker processes execute: it never touches a
    cache (the parent resolves hits and stores results), so workers
    need no shared state beyond the picklable cell itself.

    ``audit`` attaches a runtime invariant checker
    (:class:`~repro.audit.invariants.InvariantChecker`, or ``True``
    for the default one) for the whole run; checks are read-only, so
    the summary is bitwise what it is without them.
    """
    policy = make_scheduler(scheduler)
    machine = builder(policy, cfg)
    machine.run(audit=audit)
    return summarize(machine)


def run_one(
    builder: ScenarioBuilder,
    scheduler: str,
    cfg: ScenarioConfig,
    cache: Optional["ResultCache"] = None,
    audit: object = None,
) -> RunSummary:
    """One scenario under one scheduler, via the cache when given.

    A builder without a provable identity (see
    :func:`repro.cache.keys.builder_fingerprint`) bypasses the cache
    rather than risking a false hit.  ``audit`` (an
    :class:`~repro.audit.invariants.InvariantChecker` or ``True``)
    forces the cell to actually run — a cache hit would skip the very
    epochs the checker is meant to watch — so audited runs bypass the
    cache entirely.
    """
    if audit is not None:
        return execute_cell(builder, scheduler, cfg, audit=audit)
    if cache is not None:
        from repro.cache.keys import result_key

        key = result_key(builder, scheduler, cfg)
        if key is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit
            summary = execute_cell(builder, scheduler, cfg)
            cache.put(
                key, summary, meta={"scheduler": scheduler, "seed": cfg.seed}
            )
            return summary
    return execute_cell(builder, scheduler, cfg)


def compare(
    builder: ScenarioBuilder,
    cfg: ScenarioConfig,
    schedulers: Optional[Iterable[str]] = None,
    cache: Optional["ResultCache"] = None,
    audit: object = None,
) -> Dict[str, RunSummary]:
    """Run the same scenario under several schedulers (paired seeds).

    Returns summaries keyed by scheduler name, in the requested order.
    ``audit=True`` (or an
    :class:`~repro.audit.invariants.InvariantChecker`) runs every cell
    with runtime invariants on; a fresh checker is built per cell so
    counters and history never leak between runs.
    """
    names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
    results: Dict[str, RunSummary] = {}
    for name in names:
        cell_audit = audit
        if audit is True:
            from repro.audit.invariants import InvariantChecker

            cell_audit = InvariantChecker()
        results[name] = run_one(builder, name, cfg, cache, audit=cell_audit)
    return results


@dataclasses.dataclass(frozen=True, slots=True)
class MeanStats:
    """Seed-averaged headline metrics for one scheduler."""

    scheduler: str
    seeds: int
    mean_runtime_s: float
    stdev_runtime_s: float
    mean_remote_ratio: float

    @property
    def relative_stdev(self) -> float:
        """Runtime noise level (stdev over mean; 0 for one seed)."""
        if self.mean_runtime_s <= 0:
            return 0.0
        return self.stdev_runtime_s / self.mean_runtime_s


def compare_mean(
    builder: ScenarioBuilder,
    cfg: ScenarioConfig,
    schedulers: Optional[Iterable[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    domain: str = "vm1",
    cache: Optional["ResultCache"] = None,
) -> Dict[str, MeanStats]:
    """Seed-averaged comparison: smooths initial-placement luck.

    Every scheduler sees every seed (fully paired).  Use for reporting;
    single-seed :func:`compare` remains the right tool when the full
    :class:`RunSummary` is needed.
    """
    if not seeds:
        raise ValueError("at least one seed required")
    names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
    summaries: List[RunSummary] = []
    for seed in seeds:
        seeded = dataclasses.replace(cfg, seed=seed)
        results = compare(builder, seeded, names, cache)
        summaries.extend(results[name] for name in names)
    return aggregate_mean_stats(names, seeds, summaries, domain)


def aggregate_mean_stats(
    names: Sequence[str],
    seeds: Sequence[int],
    summaries: Sequence[Optional[RunSummary]],
    domain: str = "vm1",
) -> Dict[str, MeanStats]:
    """Fold flat run summaries into per-scheduler :class:`MeanStats`.

    ``summaries`` must be in seed-major, scheduler-minor order — the
    order both the serial nested loop and the parallel fan-out produce.
    ``None`` entries (cells the parallel runner quarantined) drop out
    of that scheduler's averages; :attr:`MeanStats.seeds` reports the
    seeds that actually contributed.  A scheduler with *no* surviving
    cells gets NaN means so downstream tables render visibly rather
    than crash.
    """
    if len(summaries) != len(seeds) * len(names):
        raise ValueError(
            f"expected {len(seeds) * len(names)} summaries, got {len(summaries)}"
        )
    runtimes: Dict[str, List[float]] = {n: [] for n in names}
    remotes: Dict[str, List[float]] = {n: [] for n in names}
    it = iter(summaries)
    for _seed in seeds:
        for name in names:
            summary = next(it)
            if summary is None:
                continue
            stats = summary.domain(domain)
            runtimes[name].append(stats.mean_finish_time_s or float("nan"))
            remotes[name].append(stats.remote_ratio)
    return {
        name: MeanStats(
            scheduler=name,
            seeds=len(runtimes[name]),
            mean_runtime_s=(
                statistics.fmean(runtimes[name]) if runtimes[name] else float("nan")
            ),
            stdev_runtime_s=(
                statistics.stdev(runtimes[name])
                if len(runtimes[name]) > 1
                else 0.0
            ),
            mean_remote_ratio=(
                statistics.fmean(remotes[name]) if remotes[name] else float("nan")
            ),
        )
        for name in names
    }
