"""Experiment runner: paired runs across scheduling approaches.

Every comparison in the paper holds the workload fixed and swaps the
scheduler.  The runner reproduces that pairing: all schedulers see the
same scenario built from the same seed, so workload randomness (phase
changes, service bursts) is identical across policies and differences
are attributable to scheduling alone.
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
)
from repro.metrics.collectors import RunSummary, summarize
from repro.xen.credit import SchedulerPolicy
from repro.xen.simulator import Machine

__all__ = [
    "ScenarioBuilder",
    "run_one",
    "compare",
    "compare_mean",
    "aggregate_mean_stats",
    "MeanStats",
]

#: A scenario builder: (policy, config) -> ready-to-run machine.
ScenarioBuilder = Callable[[SchedulerPolicy, ScenarioConfig], Machine]


def run_one(
    builder: ScenarioBuilder,
    scheduler: str,
    cfg: ScenarioConfig,
) -> RunSummary:
    """Build and run one scenario under one scheduler."""
    policy = make_scheduler(scheduler)
    machine = builder(policy, cfg)
    machine.run()
    return summarize(machine)


def compare(
    builder: ScenarioBuilder,
    cfg: ScenarioConfig,
    schedulers: Optional[Iterable[str]] = None,
) -> Dict[str, RunSummary]:
    """Run the same scenario under several schedulers (paired seeds).

    Returns summaries keyed by scheduler name, in the requested order.
    """
    names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
    results: Dict[str, RunSummary] = {}
    for name in names:
        results[name] = run_one(builder, name, cfg)
    return results


@dataclasses.dataclass(frozen=True, slots=True)
class MeanStats:
    """Seed-averaged headline metrics for one scheduler."""

    scheduler: str
    seeds: int
    mean_runtime_s: float
    stdev_runtime_s: float
    mean_remote_ratio: float

    @property
    def relative_stdev(self) -> float:
        """Runtime noise level (stdev over mean; 0 for one seed)."""
        if self.mean_runtime_s <= 0:
            return 0.0
        return self.stdev_runtime_s / self.mean_runtime_s


def compare_mean(
    builder: ScenarioBuilder,
    cfg: ScenarioConfig,
    schedulers: Optional[Iterable[str]] = None,
    seeds: Sequence[int] = (0, 1, 2),
    domain: str = "vm1",
) -> Dict[str, MeanStats]:
    """Seed-averaged comparison: smooths initial-placement luck.

    Every scheduler sees every seed (fully paired).  Use for reporting;
    single-seed :func:`compare` remains the right tool when the full
    :class:`RunSummary` is needed.
    """
    if not seeds:
        raise ValueError("at least one seed required")
    names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
    summaries: List[RunSummary] = []
    for seed in seeds:
        seeded = dataclasses.replace(cfg, seed=seed)
        results = compare(builder, seeded, names)
        summaries.extend(results[name] for name in names)
    return aggregate_mean_stats(names, seeds, summaries, domain)


def aggregate_mean_stats(
    names: Sequence[str],
    seeds: Sequence[int],
    summaries: Sequence[RunSummary],
    domain: str = "vm1",
) -> Dict[str, MeanStats]:
    """Fold flat run summaries into per-scheduler :class:`MeanStats`.

    ``summaries`` must be in seed-major, scheduler-minor order — the
    order both the serial nested loop and the parallel fan-out produce.
    """
    if len(summaries) != len(seeds) * len(names):
        raise ValueError(
            f"expected {len(seeds) * len(names)} summaries, got {len(summaries)}"
        )
    runtimes: Dict[str, List[float]] = {n: [] for n in names}
    remotes: Dict[str, List[float]] = {n: [] for n in names}
    it = iter(summaries)
    for _seed in seeds:
        for name in names:
            stats = next(it).domain(domain)
            runtimes[name].append(stats.mean_finish_time_s or float("nan"))
            remotes[name].append(stats.remote_ratio)
    return {
        name: MeanStats(
            scheduler=name,
            seeds=len(seeds),
            mean_runtime_s=statistics.fmean(runtimes[name]),
            stdev_runtime_s=(
                statistics.stdev(runtimes[name]) if len(seeds) > 1 else 0.0
            ),
            mean_remote_ratio=statistics.fmean(remotes[name]),
        )
        for name in names
    }
