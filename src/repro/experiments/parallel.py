"""Parallel experiment runner: grid cells across worker processes.

Every comparison in the evaluation is a grid of fully independent
simulations — (workload, scheduler) cells for the figure sweeps,
(seed, scheduler) cells for the averaged tables.  Each cell builds its
own :class:`Machine` from a picklable scenario builder and a seeded
config, so cells can run in separate processes with no shared state:
the pairing guarantee (every scheduler sees the identical workload
randomness for a given seed) is carried entirely by the config's seed,
not by execution order.

:class:`ParallelRunner` mirrors the serial API of
:mod:`repro.experiments.runner` — :meth:`ParallelRunner.compare` and
:meth:`ParallelRunner.compare_mean` return exactly what their serial
counterparts return, cell for cell.  With ``jobs <= 1`` it *is* the
serial path (no executor, no pickling), so callers can thread a
``--jobs N`` flag straight through.

**Cache awareness.**  Given a
:class:`~repro.cache.store.ResultCache`, the runner resolves hits *in
the parent process* before any executor exists: a fully warm grid
performs zero pickling and spawns zero workers.  Only misses are
dispatched, and each miss's result is stored back (by the parent, so
workers stay cache-blind and the worker protocol stays the plain
picklable cell).  Per-call hit/miss counts land in
:attr:`ParallelRunner.cache_hits` / :attr:`ParallelRunner.cache_misses`
and accumulate in the ``total_*`` counterparts for end-of-report
summary lines.

**Journal awareness.**  Given a
:class:`~repro.recovery.journal.GridJournal`, every completed cell is
appended to the write-ahead journal the moment its result lands, and
journaled cells resolve in the parent exactly like cache hits — this
is what lets a SIGTERM'd ``repro report`` relaunch with ``--resume``
and recompute nothing that already finished.  Cells the journal marks
*quarantined* are not retried either: their slots stay ``None``.

**Deadlines and quarantine.**  With a
:class:`~repro.recovery.deadline.DeadlinePolicy`, each attempt runs
under a wall-clock alarm in the process executing it; an overrun
cancels the cell, the parent retries with exponential backoff, and
after ``max_strikes`` attempts the cell is *quarantined* — recorded in
:attr:`ParallelRunner.quarantined` (and the journal) with its slot
left ``None`` instead of failing the grid.
:class:`~repro.xen.simulator.SimulationTimeout` (the simulated epoch
cap) rides the same path but quarantines immediately: it is a
deterministic outcome, so a retry — serial or otherwise — would only
reproduce it at full cost.

**Chunked dispatch.**  Misses are submitted in chunks
(``chunksize``; an adaptive default of ~4 chunks per worker) so a
large seed sweep pays one task-submission/result round-trip per chunk
instead of per cell — the executor's per-task IPC is the dominant cost
once cells are short.  ``chunksize=1`` reproduces the historical
one-future-per-cell dispatch exactly.  Workers report *per-cell
outcomes* (ok / timeout / error), so one bad cell no longer poisons
its chunk-mates.

Worker crashes don't lose the grid: any chunk whose future fails —
including the :class:`BrokenProcessPool` cascade when one worker dies
and takes every pending future with it — has its cells retried once,
serially, in the parent process.  Because cells are deterministic
functions of (builder, scheduler, config), a serial re-run produces
the exact summary the worker would have; only cells that *also* fail
serially surface, aggregated into one :class:`ParallelExecutionError`
naming them (keyed by cell name *and grid index*, so two lambdas that
render identically cannot silently merge).  Retried cells are recorded
in :attr:`ParallelRunner.retried_cells` so a flaky pool never passes
silently.

**Lane stacking.**  With ``engine="stacked"``, the runner partitions
each grid's misses into *stacks* of compatible cells — same builder
identity and same result-defining config apart from the seed (the
scheduler may differ; it is part of the cell, not the stack signature)
— and dispatches each stack as one unit through
:func:`repro.xen.stacked.run_stacked`, which advances all lanes
through one shared lanes×slots kernel.  Every lane's summary is
bitwise what its solo batched run produces (the repo's engine-parity
contract), so cache keys, journal records and report bytes are
unchanged; only dispatch shape differs.  Accounting stays *per lane*:
a lane that raises :class:`~repro.xen.simulator.SimulationTimeout` is
quarantined alone, a lane that crashes is retried solo (its stack-mates'
results land first), and a stack that overruns its pooled wall-clock
budget (``deadline_s`` × lanes) falls back to per-cell dispatch where
each cell gets the ordinary strike discipline.  Cells left over after
planning (singleton groups, incompatible shapes) take the historical
per-cell path.
"""

from __future__ import annotations

import dataclasses
import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import pathlib

    from repro.cache.store import ResultCache
    from repro.recovery.journal import GridJournal
    from repro.recovery.shutdown import GracefulShutdown

from repro.experiments.runner import (
    MeanStats,
    ScenarioBuilder,
    aggregate_mean_stats,
    execute_cell,
)
from repro.experiments.scenarios import (
    SCHEDULER_NAMES,
    ScenarioConfig,
    make_scheduler,
)
from repro.metrics.collectors import RunSummary, summarize
from repro.recovery.deadline import (
    CellDeadlineExceeded,
    DeadlinePolicy,
    Quarantine,
    alarm_guard,
    run_cell_batch_guarded,
)
from repro.xen.simulator import SimulationTimeout

__all__ = [
    "ParallelRunner",
    "ParallelExecutionError",
    "GridIncompleteError",
    "default_jobs",
    "run_stacked_batch_guarded",
    "run_packed_batch_guarded",
]

#: One grid cell: (builder, scheduler name, config).
Cell = Tuple[ScenarioBuilder, str, ScenarioConfig]

#: Default lane cap per stack with ``engine="stacked"`` — matches the
#: lane-scaling knee recorded in ``benchmarks/BENCH_stacked.json``.
DEFAULT_STACK_LANES = 16

#: Distinguishes "not memoized yet" from a memoized ``None``.
_UNSET = object()

#: Failures spelled out in a ParallelExecutionError message before the
#: rest collapse into "... and N more" (each repeats the cell name and
#: exception text; hundreds of them would bury the signal).
_MAX_FAILURE_DETAIL = 8


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all *usable* cores, at least one.

    Containers and batch schedulers often pin the process to a subset
    of the machine (cgroup cpusets, ``taskset``); ``os.cpu_count()``
    ignores that and would oversubscribe the allowance, so the affinity
    mask wins where the platform exposes one.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def cell_name(cell: Cell) -> str:
    """A stable human-readable id: ``builder(args)/scheduler/seed=N``.

    Not guaranteed unique — distinct lambda/closure builders all render
    as ``<lambda>`` — so anything that *keys* on cells must combine
    this with the grid index (see :func:`indexed_cell_name`).
    """
    builder, scheduler, cfg = cell
    fn = builder
    bound: List[str] = []
    while isinstance(fn, partial):
        bound.extend(str(a) for a in fn.args)
        bound.extend(f"{k}={v}" for k, v in sorted(fn.keywords.items()))
        fn = fn.func
    base = getattr(fn, "__name__", repr(fn))
    label = f"{base}({', '.join(bound)})" if bound else base
    return f"{label}/{scheduler}/seed={cfg.seed}"


def indexed_cell_name(cell: Cell, index: int) -> str:
    """Collision-proof cell id: the readable name plus the grid index."""
    return f"{cell_name(cell)}#{index}"


def run_cell_batch(cells: Sequence[Cell]) -> List[RunSummary]:
    """Worker-side entry: run a chunk of cells serially, in order.

    Module-level (picklable) and cache-blind by design; the parent owns
    all cache traffic.  The runner itself now dispatches through the
    outcome-reporting
    :func:`~repro.recovery.deadline.run_cell_batch_guarded`; this plain
    variant remains the raise-on-error building block.
    """
    return [execute_cell(b, s, c) for b, s, c in cells]


def _build_lane_machine(cell: Cell):
    """Materialize one cell into a ready-to-run machine (lane)."""
    builder, scheduler, cfg = cell
    return builder(make_scheduler(scheduler), cfg)


def run_stacked_batch_guarded(
    cells: Sequence[Cell], deadline_s: Optional[float] = None
) -> List[Tuple[str, object]]:
    """Worker entry: run one stack of lanes, reporting per-lane outcomes.

    Module-level, picklable and cache-blind like
    :func:`~repro.recovery.deadline.run_cell_batch_guarded`, and with
    the same outcome protocol — ``("ok", summary)``, ``("timeout",
    (type, detail))`` or ``("error", (type, detail))`` per cell — so
    the parent's result handling is dispatch-shape agnostic.  The
    wall-clock budget is pooled (``deadline_s`` × lanes: the lanes run
    concurrently through one kernel, so no single lane owns the
    clock); if it fires, every lane reports a deadline timeout and the
    parent re-dispatches them per-cell under the ordinary per-cell
    alarm, which restores exact per-lane deadline accounting.
    """
    from repro.xen.stacked import run_stacked

    budget = None if deadline_s is None else deadline_s * len(cells)
    try:
        with alarm_guard(budget):
            lanes = run_stacked([_build_lane_machine(c) for c in cells])
    except CellDeadlineExceeded as exc:
        payload = ("CellDeadlineExceeded", f"stack of {len(cells)} lanes: {exc}")
        return [("timeout", payload) for _ in cells]
    except Exception as exc:
        # Stack-level failure before any lane ran (e.g. a builder
        # crash): every cell takes the crash-retry path.
        payload = (type(exc).__name__, str(exc))
        return [("error", payload) for _ in cells]
    outcomes: List[Tuple[str, object]] = []
    for lane in lanes:
        if lane.ok:
            outcomes.append(("ok", summarize(lane.result.machine)))
        elif isinstance(lane.error, SimulationTimeout):
            outcomes.append(("timeout", ("SimulationTimeout", str(lane.error))))
        else:
            outcomes.append(
                ("error", (type(lane.error).__name__, str(lane.error)))
            )
    return outcomes


def run_packed_batch_guarded(
    builders: Sequence[ScenarioBuilder],
    packed: Sequence[Tuple[int, str, ScenarioConfig]],
    deadline_s: Optional[float] = None,
) -> List[Tuple[str, object]]:
    """Worker entry for builder-deduplicated chunks.

    ``packed`` cells reference their builder by index into
    ``builders``, so a chunk whose cells share one scenario builder
    ships (and unpickles) that builder exactly once per chunk instead
    of once per cell — the pickle-memo guarantee extended across
    distinct-but-equal ``partial`` objects, which the figure modules
    create one per grid point.
    """
    cells = [(builders[j], scheduler, cfg) for j, scheduler, cfg in packed]
    return run_cell_batch_guarded(cells, deadline_s)


def _auto_chunksize(cells: int, workers: int) -> int:
    """~2 chunks per worker, at most 64 cells per chunk.

    The executor round-trip (submit + result pickling) costs ~1 ms per
    task while even the smallest grid cells simulate for ~5 ms, so
    fewer, larger chunks win: two per worker halves the round-trips of
    the old ~4-per-worker rule and still leaves one rebalance
    opportunity when cell costs are uneven.  The 64-cell cap keeps a
    single slow mega-chunk from serializing a huge sweep.
    ``benchmarks/BENCH_grid.json`` records the measured effect.
    """
    return max(1, min(64, math.ceil(cells / (workers * 2))))


class ParallelExecutionError(RuntimeError):
    """Cells that failed both in a worker and on the serial retry.

    ``failures`` maps each failing cell's :func:`indexed_cell_name` to
    the exception its serial retry raised (the worker-side error is
    often just the pool-collapse cascade; the serial one is the real
    cause).  The rendered message lists at most
    ``_MAX_FAILURE_DETAIL`` of them; the full mapping is always on the
    exception object.
    """

    def __init__(self, failures: Dict[str, BaseException], total: int) -> None:
        self.failures = dict(failures)
        shown = list(failures.items())[:_MAX_FAILURE_DETAIL]
        detail = "; ".join(
            f"{name}: {type(exc).__name__}: {exc}" for name, exc in shown
        )
        if len(failures) > len(shown):
            detail += f"; ... and {len(failures) - len(shown)} more"
        super().__init__(
            f"{len(failures)} of {total} cells failed even after serial retry: {detail}"
        )


class GridIncompleteError(RuntimeError):
    """A grid finished with quarantined (hence missing) cells.

    Raised by consumers that need *every* cell to render their result
    (:func:`repro.experiments.comparison.run_grid`); ``report_all``
    catches it, records the whole job as quarantined in the journal and
    carries on with the remaining jobs.
    """

    def __init__(self, quarantined: Sequence[Quarantine], total: int) -> None:
        self.quarantined = list(quarantined)
        shown = [q.cell for q in self.quarantined[:_MAX_FAILURE_DETAIL]]
        detail = ", ".join(shown)
        if len(self.quarantined) > len(shown):
            detail += f", ... and {len(self.quarantined) - len(shown)} more"
        super().__init__(
            f"{len(self.quarantined)} of {total} cells quarantined: {detail}"
        )


class ParallelRunner:
    """Fans independent experiment cells across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs every cell in
        this process, bit-for-bit the serial runner.
    cache:
        Optional :class:`~repro.cache.store.ResultCache`; hits resolve
        in the parent, misses run (and are stored back) as usual.
        ``None`` disables caching entirely.
    chunksize:
        Cells per submitted task when dispatching misses.  ``None``
        picks :func:`_auto_chunksize`; ``1`` forces the historical
        one-future-per-cell dispatch.
    engine:
        Optional engine selector (``"batched"``, ``"vector"``,
        ``"reference"`` or ``"stacked"``).  When set, every dispatched
        cell's config is rewritten to run on that engine — the
        selector travels inside the pickled :class:`ScenarioConfig`,
        so workers need no extra plumbing.  ``None`` (default)
        respects each cell's own config.  ``"stacked"`` additionally
        changes the *dispatch shape*: compatible misses are grouped
        into lane stacks (see :meth:`_plan_stacks`) and advanced
        through one shared kernel per stack.  Because the engines are
        bitwise-identical, the selector can never change results, only
        wall time (``tests/test_parallel.py`` pins this).
    stack_lanes:
        Lane cap per stack when ``engine="stacked"``
        (default :data:`DEFAULT_STACK_LANES`); ignored otherwise.
    journal:
        Optional :class:`~repro.recovery.journal.GridJournal`.
        Journaled cells resolve without recomputation (counted in
        :attr:`journal_hits`), completed cells are appended as they
        land, and quarantines persist across a resume.
    deadline:
        Optional :class:`~repro.recovery.deadline.DeadlinePolicy` (or
        bare seconds).  Overrunning attempts are cancelled, retried
        with exponential backoff and eventually quarantined.
    shutdown:
        Optional :class:`~repro.recovery.shutdown.GracefulShutdown`.
        The runner checks it between cells/chunks so a SIGTERM exits
        at a clean point, and serial cells run in its *deferred* mode
        so they can checkpoint at an epoch boundary first.
    checkpoint_dir:
        Directory for in-flight serial-cell snapshots.  Only consulted
        on the serial path (workers are sacrificial — their cells are
        simply re-dispatched on resume); an interrupted serial cell is
        checkpointed there and resumed by the next run.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional["ResultCache"] = None,
        chunksize: Optional[int] = None,
        engine: Optional[str] = None,
        journal: Optional["GridJournal"] = None,
        deadline: "DeadlinePolicy | float | None" = None,
        shutdown: Optional["GracefulShutdown"] = None,
        checkpoint_dir: "pathlib.Path | str | None" = None,
        stack_lanes: int = DEFAULT_STACK_LANES,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if engine is not None and engine not in (
            "batched",
            "vector",
            "reference",
            "stacked",
        ):
            raise ValueError(
                "engine must be 'batched', 'vector', 'reference', "
                f"'stacked' or None, got {engine!r}"
            )
        if stack_lanes < 1:
            raise ValueError(f"stack_lanes must be >= 1, got {stack_lanes}")
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize
        self.engine = engine
        self.stack_lanes = stack_lanes
        self.journal = journal
        self.deadline = DeadlinePolicy.coerce(deadline)
        self.shutdown = shutdown
        self.checkpoint_dir = checkpoint_dir
        #: cell names recovered by serial retry in the latest
        #: :meth:`run_cells` call (empty on a clean parallel run)
        self.retried_cells: List[str] = []
        #: cache hits/misses of the latest :meth:`run_cells` call
        self.cache_hits = 0
        self.cache_misses = 0
        #: journaled cells served without recomputation (latest call)
        self.journal_hits = 0
        #: cells quarantined (or already quarantined in the journal)
        #: during the latest :meth:`run_cells` call
        self.quarantined: List[Quarantine] = []
        #: lane stacks (lists of grid indices) the latest
        #: :meth:`run_cells` call dispatched (empty off the stacked path)
        self.stacks: List[List[int]] = []
        #: per-run_cells memos: builder fingerprints keyed by object
        #: identity (one hash per distinct builder per grid — not one
        #: per cell) and full cache keys keyed by (fingerprint,
        #: scheduler, config identity)
        self._fid_memo: Dict[int, Optional[str]] = {}
        self._key_memo: Dict[Tuple[str, str, int], str] = {}
        #: lifetime accumulators across every :meth:`run_cells` call
        self.total_retried_cells: List[str] = []
        self.total_cache_hits = 0
        self.total_cache_misses = 0
        self.total_journal_hits = 0
        self.total_quarantined: List[Quarantine] = []

    # ------------------------------------------------------------------
    # Cache + journal plumbing
    # ------------------------------------------------------------------
    def _builder_fid(self, builder: ScenarioBuilder) -> Optional[str]:
        """Memoized :func:`~repro.cache.keys.builder_fingerprint`.

        Keyed by object identity, which is stable for the duration of
        one :meth:`run_cells` call (the cells hold the references): a
        grid of N seeds × M schedulers over one builder fingerprints it
        once, not N×M times.
        """
        from repro.cache.keys import builder_fingerprint

        marker = self._fid_memo.get(id(builder), _UNSET)
        if marker is _UNSET:
            marker = builder_fingerprint(builder)
            self._fid_memo[id(builder)] = marker
        return marker

    def _cell_key(self, cell: Cell) -> Optional[str]:
        """Memoized :func:`~repro.cache.keys.result_key` for one cell.

        The config hash is likewise deduplicated by object identity —
        ``compare_mean`` shares one config object across a seed's
        scheduler row, so the row pays one config hash, not one per
        scheduler.
        """
        from repro.cache.keys import scenario_key

        builder, scheduler, cfg = cell
        fid = self._builder_fid(builder)
        if fid is None:
            return None
        memo_key = (fid, scheduler, id(cfg))
        key = self._key_memo.get(memo_key)
        if key is None:
            key = scenario_key(fid, scheduler, cfg)
            self._key_memo[memo_key] = key
        return key

    def _lookup(
        self, cells: Sequence[Cell], results: List[Optional[RunSummary]]
    ) -> Tuple[List[Optional[str]], List[int]]:
        """Resolve journal/cache hits in-place; returns (keys, misses).

        Resolution order per cell: journal ``done`` record, journal
        quarantine (slot stays ``None`` — no recomputation), cache
        entry, then miss.  Cache hits on a journaled run are also
        written through to the journal so a later ``--resume`` does not
        depend on the cache still being warm.
        """
        keys: List[Optional[str]] = [None] * len(cells)
        if self.cache is None and self.journal is None:
            return keys, list(range(len(cells)))

        misses: List[int] = []
        for index, cell in enumerate(cells):
            key = self._cell_key(cell)
            keys[index] = key
            if key is not None and self.journal is not None:
                hit = self.journal.get_cell(key)
                if hit is not None:
                    results[index] = hit
                    self.journal_hits += 1
                    continue
                info = self.journal.get_quarantine(key)
                if info is not None:
                    self.quarantined.append(
                        Quarantine(
                            cell=str(info.get("cell", indexed_cell_name(cell, index))),
                            key=key,
                            reason=str(info.get("reason", "unknown")),
                            strikes=int(info.get("strikes", 0)),
                            detail=str(info.get("detail", "")),
                        )
                    )
                    continue
            if self.cache is not None:
                hit = self.cache.get(key) if key is not None else None
                if hit is not None:
                    results[index] = hit
                    self.cache_hits += 1
                    if self.journal is not None and key is not None:
                        self.journal.record_cell(
                            key, indexed_cell_name(cell, index), hit
                        )
                    continue
                self.cache_misses += 1
            misses.append(index)
        return keys, misses

    def _store(self, key: Optional[str], cell: Cell, summary: RunSummary) -> None:
        if self.cache is None or key is None:
            return
        _, scheduler, cfg = cell
        self.cache.put(
            key,
            summary,
            meta={
                "cell": cell_name(cell),
                "scheduler": scheduler,
                "seed": cfg.seed,
            },
        )

    def _finish(
        self,
        index: int,
        cell: Cell,
        key: Optional[str],
        summary: RunSummary,
        results: List[Optional[RunSummary]],
    ) -> None:
        """Land one computed summary: result slot, cache, journal."""
        results[index] = summary
        self._store(key, cell, summary)
        if self.journal is not None and key is not None:
            self.journal.record_cell(key, indexed_cell_name(cell, index), summary)

    def _quarantine(
        self,
        index: int,
        cell: Cell,
        key: Optional[str],
        reason: str,
        strikes: int,
        detail: str,
    ) -> None:
        """Remove one cell from the grid instead of failing it."""
        record = Quarantine(
            cell=indexed_cell_name(cell, index),
            key=key,
            reason=reason,
            strikes=strikes,
            detail=detail,
        )
        self.quarantined.append(record)
        if self.journal is not None and key is not None:
            self.journal.record_quarantine(key, record.cell, record.to_dict())

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell]) -> List[Optional[RunSummary]]:
        """Run cells (in order); parallel when jobs and cells allow.

        Builders must be picklable for ``jobs > 1`` — module-level
        functions or :func:`functools.partial` over them, which is what
        every figure module provides.

        Cells whose worker fails (an exception in the cell, or a crash
        that breaks the whole pool) are re-run serially in this process
        — determinism makes the retry result identical to what the
        worker would have produced.  Cells failing the retry too raise
        one aggregated :class:`ParallelExecutionError`.

        Timeout-class failures never take that path: a cell that blew
        the simulated epoch cap (:class:`SimulationTimeout`) or
        repeatedly blew its wall-clock deadline is *quarantined* — its
        slot in the returned list is ``None`` and the details land in
        :attr:`quarantined` (and the journal, when one is attached).
        Grids without deadlines, caps or faults keep the historical
        all-summaries guarantee.
        """
        self.retried_cells = []
        self.cache_hits = 0
        self.cache_misses = 0
        self.journal_hits = 0
        self.quarantined = []
        self.stacks = []
        self._fid_memo = {}
        self._key_memo = {}
        if self.engine is not None:
            cells = [
                (builder, scheduler, dataclasses.replace(cfg, engine=self.engine))
                for builder, scheduler, cfg in cells
            ]
        results: List[Optional[RunSummary]] = [None] * len(cells)
        try:
            keys, misses = self._lookup(cells, results)
            if self.engine == "stacked" and len(misses) > 1:
                self.stacks, misses = self._plan_stacks(cells, misses)
            if misses or self.stacks:
                if self.jobs <= 1 or len(misses) + len(self.stacks) <= 1:
                    for stack in self.stacks:
                        self._check_shutdown()
                        self._attempt_stack(stack, cells, keys, results)
                    for index in misses:
                        self._check_shutdown()
                        summary = self._attempt_cell(index, cells[index], keys[index])
                        if summary is not None:
                            self._finish(
                                index, cells[index], keys[index], summary, results
                            )
                else:
                    self._run_parallel(cells, keys, misses, results, self.stacks)
        finally:
            self.total_cache_hits += self.cache_hits
            self.total_cache_misses += self.cache_misses
            self.total_journal_hits += self.journal_hits
            self.total_retried_cells.extend(self.retried_cells)
            self.total_quarantined.extend(self.quarantined)
        return results

    def _check_shutdown(self) -> None:
        if self.shutdown is not None:
            self.shutdown.check()

    def _execute_attempt(self, cell: Cell, key: Optional[str]) -> RunSummary:
        """One in-parent attempt at a cell, deadline- and shutdown-aware."""
        builder, scheduler, cfg = cell
        deadline_s = self.deadline.deadline_s if self.deadline is not None else None
        if self.checkpoint_dir is not None:
            from repro.recovery.checkpoint import execute_cell_resumable
            from repro.recovery.shutdown import ShutdownRequested

            if self.shutdown is not None:
                # Deferred: a signal sets the flag, the run loop stops
                # at the next epoch boundary, and the cell checkpoints
                # itself before we surface the shutdown.
                with self.shutdown.deferred():
                    with alarm_guard(deadline_s):
                        summary = execute_cell_resumable(
                            builder,
                            scheduler,
                            cfg,
                            self.checkpoint_dir,
                            key,
                            stop_check=self.shutdown.is_requested,
                        )
                if summary is None:  # interrupted; snapshot is on disk
                    raise ShutdownRequested(self.shutdown.signum or 15)
                return summary
            with alarm_guard(deadline_s):
                summary = execute_cell_resumable(
                    builder, scheduler, cfg, self.checkpoint_dir, key
                )
            assert summary is not None  # no stop_check: cannot interrupt
            return summary
        with alarm_guard(deadline_s):
            return execute_cell(builder, scheduler, cfg)

    def _attempt_cell(
        self,
        index: int,
        cell: Cell,
        key: Optional[str],
        prior_strikes: int = 0,
    ) -> Optional[RunSummary]:
        """Run one cell in the parent with the full strike discipline.

        Returns the summary, or ``None`` after quarantining the cell.
        Non-timeout exceptions propagate (callers decide whether that
        is fatal or feeds the crash-retry bookkeeping).
        """
        policy = self.deadline
        max_strikes = policy.max_strikes if policy is not None else 1
        strikes = prior_strikes
        while True:
            try:
                return self._execute_attempt(cell, key)
            except SimulationTimeout as exc:
                self._quarantine(
                    index, cell, key, "sim_timeout", strikes + 1, str(exc)
                )
                return None
            except CellDeadlineExceeded as exc:
                strikes += 1
                if strikes >= max_strikes:
                    self._quarantine(index, cell, key, "deadline", strikes, str(exc))
                    return None
                time.sleep(policy.backoff_s(strikes))
                self._check_shutdown()

    # ------------------------------------------------------------------
    # Lane stacking
    # ------------------------------------------------------------------
    def _plan_stacks(
        self, cells: Sequence[Cell], misses: List[int]
    ) -> Tuple[List[List[int]], List[int]]:
        """Partition miss indices into lane stacks plus leftovers.

        Two cells are stack-compatible when they share a builder
        identity (fingerprint when provable, object identity otherwise
        — an anonymous builder can still stack against itself) and the
        same result-defining config apart from the seed.  The
        scheduler deliberately stays *out* of the signature: lanes of
        one stack may run different policies, which is what lets a
        ``compare``/``compare_mean`` grid stack its whole scheduler ×
        seed product.  Groups are cut into stacks of at most
        :attr:`stack_lanes` in grid order; singleton cuts fall back to
        the per-cell path (a one-lane stack only adds kernel framing).
        """
        from repro.obs.manifest import config_hash, fault_fingerprint

        cfg_parts: Dict[int, Tuple] = {}
        groups: Dict[Tuple, List[int]] = {}
        for index in misses:
            builder, _scheduler, cfg = cells[index]
            part = cfg_parts.get(id(cfg))
            if part is None:
                seedless = dataclasses.replace(cfg, seed=0, label="")
                part = (
                    cfg.work_scale,
                    config_hash(seedless.sim_config()),
                    fault_fingerprint(cfg.faults),
                )
                cfg_parts[id(cfg)] = part
            fid = self._builder_fid(builder)
            sig = (fid if fid is not None else id(builder), *part)
            groups.setdefault(sig, []).append(index)
        stacks: List[List[int]] = []
        leftovers: List[int] = []
        for indices in groups.values():
            for start in range(0, len(indices), self.stack_lanes):
                stack = indices[start : start + self.stack_lanes]
                if len(stack) >= 2:
                    stacks.append(stack)
                else:
                    leftovers.extend(stack)
        leftovers.sort()
        return stacks, leftovers

    def _attempt_stack(
        self,
        stack: Sequence[int],
        cells: Sequence[Cell],
        keys: List[Optional[str]],
        results: List[Optional[RunSummary]],
    ) -> None:
        """One in-parent attempt at a whole stack, per-lane accounting.

        Completed lanes land in the result/cache/journal slots exactly
        as per-cell runs do; a lane's
        :class:`~repro.xen.simulator.SimulationTimeout` quarantines
        that lane alone; a lane crash re-raises only after its
        stack-mates have landed (mirroring the serial per-cell contract
        where non-timeout errors are fatal).  An overrun of the pooled
        wall-clock budget (``deadline_s`` × lanes) falls back to
        per-cell attempts carrying one prior strike each — innocent
        lanes simply complete inside their own per-cell alarm, the
        offender strikes out on the ordinary schedule.
        """
        from repro.xen.stacked import run_stacked

        deadline_s = self.deadline.deadline_s if self.deadline is not None else None
        budget = None if deadline_s is None else deadline_s * len(stack)
        machines = [_build_lane_machine(cells[i]) for i in stack]
        stop = self.shutdown.is_requested if self.shutdown is not None else None
        checks = [stop] * len(stack) if stop is not None else None
        try:
            if self.shutdown is not None:
                # Deferred like the serial per-cell path: a signal sets
                # the flag, every live lane stops at its next epoch
                # boundary, finished lanes still land below.
                with self.shutdown.deferred():
                    with alarm_guard(budget):
                        lanes = run_stacked(machines, stop_checks=checks)
            else:
                with alarm_guard(budget):
                    lanes = run_stacked(machines, stop_checks=checks)
        except CellDeadlineExceeded:
            for index in stack:
                self._check_shutdown()
                summary = self._attempt_cell(
                    index, cells[index], keys[index], prior_strikes=1
                )
                if summary is not None:
                    self._finish(index, cells[index], keys[index], summary, results)
            return
        first_error: Optional[BaseException] = None
        for index, lane in zip(stack, lanes):
            if lane.ok:
                if lane.result.interrupted:
                    continue  # stopped mid-run; a resume recomputes it
                self._finish(
                    index,
                    cells[index],
                    keys[index],
                    summarize(lane.result.machine),
                    results,
                )
            elif isinstance(lane.error, SimulationTimeout):
                self._quarantine(
                    index, cells[index], keys[index], "sim_timeout", 1, str(lane.error)
                )
            elif first_error is None:
                first_error = lane.error
        self._check_shutdown()
        if first_error is not None:
            raise first_error

    def _pack_chunk(
        self, cells: Sequence[Cell], chunk: Sequence[int]
    ) -> Tuple[List[ScenarioBuilder], List[Tuple[int, str, ScenarioConfig]]]:
        """Dedupe builders for one chunk's submission payload.

        Builders are deduplicated by fingerprint when provable (two
        equal ``partial`` objects collapse onto the first instance —
        the fingerprint guarantees the same code path and bound
        arguments) and by object identity otherwise, so the chunk
        pickles each distinct builder once.
        """
        builders: List[ScenarioBuilder] = []
        slots: Dict[object, int] = {}
        packed: List[Tuple[int, str, ScenarioConfig]] = []
        for index in chunk:
            builder, scheduler, cfg = cells[index]
            fid = self._builder_fid(builder)
            dedupe_key: object = fid if fid is not None else id(builder)
            slot = slots.get(dedupe_key)
            if slot is None:
                slot = slots[dedupe_key] = len(builders)
                builders.append(builder)
            packed.append((slot, scheduler, cfg))
        return builders, packed

    def _run_parallel(
        self,
        cells: Sequence[Cell],
        keys: List[Optional[str]],
        misses: List[int],
        results: List[Optional[RunSummary]],
        stacks: Sequence[Sequence[int]] = (),
    ) -> None:
        """Dispatch chunks and stacks over one pool; fill ``results``.

        Per-cell misses go out as builder-deduplicated chunks
        (:func:`run_packed_batch_guarded`), lane stacks as whole units
        (:func:`run_stacked_batch_guarded`); both report the same
        per-cell outcome protocol, so everything downstream of the
        futures — quarantine, deadline retries, crash retries — is
        dispatch-shape agnostic.
        """
        workers = min(self.jobs, max(1, len(misses) + len(stacks)))
        size = self.chunksize or _auto_chunksize(len(misses), workers)
        chunks: List[List[int]] = [
            misses[i : i + size] for i in range(0, len(misses), size)
        ]
        deadline_s = self.deadline.deadline_s if self.deadline is not None else None
        tasks: List[Tuple[List[int], object, Tuple]] = []
        for chunk in chunks:
            builders, packed = self._pack_chunk(cells, chunk)
            tasks.append((chunk, run_packed_batch_guarded, (builders, packed, deadline_s)))
        for stack in stacks:
            tasks.append(
                (
                    list(stack),
                    run_stacked_batch_guarded,
                    ([cells[i] for i in stack], deadline_s),
                )
            )
        failed: List[int] = []
        timeouts: Dict[int, Tuple[str, str]] = {}
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            futures: Dict[int, object] = {}
            for task_id, (indices, fn, args) in enumerate(tasks):
                try:
                    futures[task_id] = pool.submit(fn, *args)
                except BrokenProcessPool:
                    # The pool died while we were still submitting;
                    # everything not yet submitted goes to the retry.
                    failed.extend(indices)
            for task_id, future in futures.items():
                indices = tasks[task_id][0]
                try:
                    outcomes = future.result()
                except Exception:
                    failed.extend(indices)
                else:
                    for index, (status, payload) in zip(indices, outcomes):
                        if status == "ok":
                            self._finish(index, cells[index], keys[index], payload, results)
                        elif status == "timeout":
                            timeouts[index] = payload
                        else:
                            failed.append(index)
            pool.shutdown(wait=True)
        except BaseException:
            # Prompt teardown (ShutdownRequested, KeyboardInterrupt):
            # kill workers instead of waiting out their current cells.
            for proc in list((getattr(pool, "_processes", None) or {}).values()):
                try:
                    proc.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            raise

        # Timeout-class outcomes: quarantine path, never full-cost
        # serial retries.  A deterministic SimulationTimeout quarantines
        # immediately; a wall-clock overrun gets its remaining strikes
        # (with backoff) in the parent.
        for index in sorted(timeouts):
            type_name, detail = timeouts[index]
            cell = cells[index]
            if (
                type_name == "CellDeadlineExceeded"
                and self.deadline is not None
                and self.deadline.max_strikes > 1
            ):
                self._check_shutdown()
                time.sleep(self.deadline.backoff_s(1))
                summary = self._attempt_cell(index, cell, keys[index], prior_strikes=1)
                if summary is not None:
                    self._finish(index, cell, keys[index], summary, results)
            else:
                reason = "sim_timeout" if type_name == "SimulationTimeout" else "deadline"
                self._quarantine(index, cell, keys[index], reason, 1, detail)

        failed.sort()
        failures: Dict[str, BaseException] = {}
        for index in failed:
            self._check_shutdown()
            name = indexed_cell_name(cells[index], index)
            self.retried_cells.append(name)
            try:
                summary = self._attempt_cell(index, cells[index], keys[index])
            except Exception as exc:
                failures[name] = exc
            else:
                if summary is not None:
                    self._finish(index, cells[index], keys[index], summary, results)
        if failures:
            raise ParallelExecutionError(failures, total=len(cells))

    # ------------------------------------------------------------------
    # Serial-API mirrors
    # ------------------------------------------------------------------
    def compare(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
    ) -> Dict[str, Optional[RunSummary]]:
        """Parallel :func:`repro.experiments.runner.compare`.

        A quarantined cell maps its scheduler to ``None`` (only
        possible when deadlines or epoch caps are in play).
        """
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        summaries = self.run_cells([(builder, name, cfg) for name in names])
        return dict(zip(names, summaries))

    def compare_mean(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
        seeds: Sequence[int] = (0, 1, 2),
        domain: str = "vm1",
    ) -> Dict[str, MeanStats]:
        """Parallel :func:`repro.experiments.runner.compare_mean`.

        The full (seed x scheduler) product fans out at once; each
        cell's config carries its seed, so the pairing is identical to
        the serial nested loop.  Quarantined cells (if any) drop out of
        the per-scheduler averages.
        """
        if not seeds:
            raise ValueError("at least one seed required")
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        cells: List[Cell] = []
        for seed in seeds:
            seeded = dataclasses.replace(cfg, seed=seed)
            for name in names:
                cells.append((builder, name, seeded))
        summaries = self.run_cells(cells)
        return aggregate_mean_stats(names, seeds, summaries, domain)
