"""Parallel experiment runner: grid cells across worker processes.

Every comparison in the evaluation is a grid of fully independent
simulations — (workload, scheduler) cells for the figure sweeps,
(seed, scheduler) cells for the averaged tables.  Each cell builds its
own :class:`Machine` from a picklable scenario builder and a seeded
config, so cells can run in separate processes with no shared state:
the pairing guarantee (every scheduler sees the identical workload
randomness for a given seed) is carried entirely by the config's seed,
not by execution order.

:class:`ParallelRunner` mirrors the serial API of
:mod:`repro.experiments.runner` — :meth:`ParallelRunner.compare` and
:meth:`ParallelRunner.compare_mean` return exactly what their serial
counterparts return, cell for cell.  With ``jobs <= 1`` it *is* the
serial path (no executor, no pickling), so callers can thread a
``--jobs N`` flag straight through.

**Cache awareness.**  Given a
:class:`~repro.cache.store.ResultCache`, the runner resolves hits *in
the parent process* before any executor exists: a fully warm grid
performs zero pickling and spawns zero workers.  Only misses are
dispatched, and each miss's result is stored back (by the parent, so
workers stay cache-blind and the worker protocol stays the plain
picklable cell).  Per-call hit/miss counts land in
:attr:`ParallelRunner.cache_hits` / :attr:`ParallelRunner.cache_misses`
and accumulate in the ``total_*`` counterparts for end-of-report
summary lines.

**Chunked dispatch.**  Misses are submitted in chunks
(``chunksize``; an adaptive default of ~4 chunks per worker) so a
large seed sweep pays one task-submission/result round-trip per chunk
instead of per cell — the executor's per-task IPC is the dominant cost
once cells are short.  ``chunksize=1`` reproduces the historical
one-future-per-cell dispatch exactly.

Worker crashes don't lose the grid: any chunk whose future fails —
including the :class:`BrokenProcessPool` cascade when one worker dies
and takes every pending future with it — has its cells retried once,
serially, in the parent process.  Because cells are deterministic
functions of (builder, scheduler, config), a serial re-run produces
the exact summary the worker would have; only cells that *also* fail
serially surface, aggregated into one :class:`ParallelExecutionError`
naming them.  Retried cells are recorded in
:attr:`ParallelRunner.retried_cells` so a flaky pool never passes
silently.
"""

from __future__ import annotations

import dataclasses
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache

from repro.experiments.runner import (
    MeanStats,
    ScenarioBuilder,
    aggregate_mean_stats,
    execute_cell,
)
from repro.experiments.scenarios import SCHEDULER_NAMES, ScenarioConfig
from repro.metrics.collectors import RunSummary

__all__ = ["ParallelRunner", "ParallelExecutionError", "default_jobs"]

#: One grid cell: (builder, scheduler name, config).
Cell = Tuple[ScenarioBuilder, str, ScenarioConfig]


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all *usable* cores, at least one.

    Containers and batch schedulers often pin the process to a subset
    of the machine (cgroup cpusets, ``taskset``); ``os.cpu_count()``
    ignores that and would oversubscribe the allowance, so the affinity
    mask wins where the platform exposes one.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def cell_name(cell: Cell) -> str:
    """A stable human-readable id: ``builder(args)/scheduler/seed=N``."""
    builder, scheduler, cfg = cell
    fn = builder
    bound: List[str] = []
    while isinstance(fn, partial):
        bound.extend(str(a) for a in fn.args)
        bound.extend(f"{k}={v}" for k, v in sorted(fn.keywords.items()))
        fn = fn.func
    base = getattr(fn, "__name__", repr(fn))
    label = f"{base}({', '.join(bound)})" if bound else base
    return f"{label}/{scheduler}/seed={cfg.seed}"


def run_cell_batch(cells: Sequence[Cell]) -> List[RunSummary]:
    """Worker-side entry: run a chunk of cells serially, in order.

    Module-level (picklable) and cache-blind by design; the parent owns
    all cache traffic.
    """
    return [execute_cell(b, s, c) for b, s, c in cells]


def _auto_chunksize(cells: int, workers: int) -> int:
    """~4 chunks per worker: amortizes IPC while keeping load balance."""
    return max(1, math.ceil(cells / (workers * 4)))


class ParallelExecutionError(RuntimeError):
    """Cells that failed both in a worker and on the serial retry.

    ``failures`` maps each failing cell's :func:`cell_name` to the
    exception its serial retry raised (the worker-side error is often
    just the pool-collapse cascade; the serial one is the real cause).
    """

    def __init__(self, failures: Dict[str, BaseException], total: int) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{name}: {type(exc).__name__}: {exc}" for name, exc in failures.items()
        )
        super().__init__(
            f"{len(failures)} of {total} cells failed even after serial retry: {detail}"
        )


class ParallelRunner:
    """Fans independent experiment cells across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs every cell in
        this process, bit-for-bit the serial runner.
    cache:
        Optional :class:`~repro.cache.store.ResultCache`; hits resolve
        in the parent, misses run (and are stored back) as usual.
        ``None`` disables caching entirely.
    chunksize:
        Cells per submitted task when dispatching misses.  ``None``
        picks :func:`_auto_chunksize`; ``1`` forces the historical
        one-future-per-cell dispatch.
    engine:
        Optional engine selector (``"batched"``, ``"vector"`` or
        ``"reference"``).  When set, every dispatched cell's config is
        rewritten to run on that engine — the selector travels inside
        the pickled :class:`ScenarioConfig`, so workers need no extra
        plumbing.  ``None`` (default) respects each cell's own config.
        Because the engines are bitwise-identical, the selector can
        never change results, only wall time
        (``tests/test_parallel.py`` pins this).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional["ResultCache"] = None,
        chunksize: Optional[int] = None,
        engine: Optional[str] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if chunksize is not None and chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        if engine is not None and engine not in ("batched", "vector", "reference"):
            raise ValueError(
                "engine must be 'batched', 'vector', 'reference' or None, "
                f"got {engine!r}"
            )
        self.jobs = jobs
        self.cache = cache
        self.chunksize = chunksize
        self.engine = engine
        #: cell names recovered by serial retry in the latest
        #: :meth:`run_cells` call (empty on a clean parallel run)
        self.retried_cells: List[str] = []
        #: cache hits/misses of the latest :meth:`run_cells` call
        self.cache_hits = 0
        self.cache_misses = 0
        #: lifetime accumulators across every :meth:`run_cells` call
        self.total_retried_cells: List[str] = []
        self.total_cache_hits = 0
        self.total_cache_misses = 0

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    def _lookup(
        self, cells: Sequence[Cell], results: List[Optional[RunSummary]]
    ) -> Tuple[List[Optional[str]], List[int]]:
        """Resolve cache hits in-place; returns (keys, miss indices)."""
        keys: List[Optional[str]] = [None] * len(cells)
        if self.cache is None:
            return keys, list(range(len(cells)))
        from repro.cache.keys import result_key

        misses: List[int] = []
        for index, (builder, scheduler, cfg) in enumerate(cells):
            key = result_key(builder, scheduler, cfg)
            keys[index] = key
            hit = self.cache.get(key) if key is not None else None
            if hit is not None:
                results[index] = hit
                self.cache_hits += 1
            else:
                misses.append(index)
                self.cache_misses += 1
        return keys, misses

    def _store(self, key: Optional[str], cell: Cell, summary: RunSummary) -> None:
        if self.cache is None or key is None:
            return
        _, scheduler, cfg = cell
        self.cache.put(
            key,
            summary,
            meta={
                "cell": cell_name(cell),
                "scheduler": scheduler,
                "seed": cfg.seed,
            },
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_cells(self, cells: Sequence[Cell]) -> List[RunSummary]:
        """Run cells (in order); parallel when jobs and cells allow.

        Builders must be picklable for ``jobs > 1`` — module-level
        functions or :func:`functools.partial` over them, which is what
        every figure module provides.

        Cells whose worker fails (an exception in the cell, or a crash
        that breaks the whole pool) are re-run serially in this process
        — determinism makes the retry result identical to what the
        worker would have produced.  Cells failing the retry too raise
        one aggregated :class:`ParallelExecutionError`.
        """
        self.retried_cells = []
        self.cache_hits = 0
        self.cache_misses = 0
        if self.engine is not None:
            cells = [
                (builder, scheduler, dataclasses.replace(cfg, engine=self.engine))
                for builder, scheduler, cfg in cells
            ]
        results: List[Optional[RunSummary]] = [None] * len(cells)
        try:
            keys, misses = self._lookup(cells, results)
            if misses:
                if self.jobs <= 1 or len(misses) <= 1:
                    for index in misses:
                        builder, scheduler, cfg = cells[index]
                        summary = execute_cell(builder, scheduler, cfg)
                        results[index] = summary
                        self._store(keys[index], cells[index], summary)
                else:
                    self._run_parallel(cells, keys, misses, results)
        finally:
            self.total_cache_hits += self.cache_hits
            self.total_cache_misses += self.cache_misses
            self.total_retried_cells.extend(self.retried_cells)
        return results  # type: ignore[return-value]  # all slots filled

    def _run_parallel(
        self,
        cells: Sequence[Cell],
        keys: List[Optional[str]],
        misses: List[int],
        results: List[Optional[RunSummary]],
    ) -> None:
        """Dispatch miss indices in chunks; fill ``results`` in place."""
        workers = min(self.jobs, len(misses))
        size = self.chunksize or _auto_chunksize(len(misses), workers)
        chunks = [misses[i : i + size] for i in range(0, len(misses), size)]
        failed: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[int, object] = {}
            for chunk_id, chunk in enumerate(chunks):
                try:
                    futures[chunk_id] = pool.submit(
                        run_cell_batch, [cells[i] for i in chunk]
                    )
                except BrokenProcessPool:
                    # The pool died while we were still submitting;
                    # everything not yet submitted goes to the retry.
                    failed.extend(chunk)
            for chunk_id, future in futures.items():
                chunk = chunks[chunk_id]
                try:
                    summaries = future.result()
                except Exception:
                    failed.extend(chunk)
                else:
                    for index, summary in zip(chunk, summaries):
                        results[index] = summary
                        self._store(keys[index], cells[index], summary)
        failed.sort()
        failures: Dict[str, BaseException] = {}
        for index in failed:
            builder, scheduler, cfg = cells[index]
            name = cell_name(cells[index])
            self.retried_cells.append(name)
            try:
                summary = execute_cell(builder, scheduler, cfg)
            except Exception as exc:
                failures[name] = exc
            else:
                results[index] = summary
                self._store(keys[index], cells[index], summary)
        if failures:
            raise ParallelExecutionError(failures, total=len(cells))

    # ------------------------------------------------------------------
    # Serial-API mirrors
    # ------------------------------------------------------------------
    def compare(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
    ) -> Dict[str, RunSummary]:
        """Parallel :func:`repro.experiments.runner.compare`."""
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        summaries = self.run_cells([(builder, name, cfg) for name in names])
        return dict(zip(names, summaries))

    def compare_mean(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
        seeds: Sequence[int] = (0, 1, 2),
        domain: str = "vm1",
    ) -> Dict[str, MeanStats]:
        """Parallel :func:`repro.experiments.runner.compare_mean`.

        The full (seed x scheduler) product fans out at once; each
        cell's config carries its seed, so the pairing is identical to
        the serial nested loop.
        """
        if not seeds:
            raise ValueError("at least one seed required")
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        cells: List[Cell] = []
        for seed in seeds:
            seeded = dataclasses.replace(cfg, seed=seed)
            for name in names:
                cells.append((builder, name, seeded))
        summaries = self.run_cells(cells)
        return aggregate_mean_stats(names, seeds, summaries, domain)
