"""Parallel experiment runner: grid cells across worker processes.

Every comparison in the evaluation is a grid of fully independent
simulations — (workload, scheduler) cells for the figure sweeps,
(seed, scheduler) cells for the averaged tables.  Each cell builds its
own :class:`Machine` from a picklable scenario builder and a seeded
config, so cells can run in separate processes with no shared state:
the pairing guarantee (every scheduler sees the identical workload
randomness for a given seed) is carried entirely by the config's seed,
not by execution order.

:class:`ParallelRunner` mirrors the serial API of
:mod:`repro.experiments.runner` — :meth:`ParallelRunner.compare` and
:meth:`ParallelRunner.compare_mean` return exactly what their serial
counterparts return, cell for cell.  With ``jobs <= 1`` it *is* the
serial path (no executor, no pickling), so callers can thread a
``--jobs N`` flag straight through.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    MeanStats,
    ScenarioBuilder,
    aggregate_mean_stats,
    run_one,
)
from repro.experiments.scenarios import SCHEDULER_NAMES, ScenarioConfig
from repro.metrics.collectors import RunSummary

__all__ = ["ParallelRunner", "default_jobs"]

#: One grid cell: (builder, scheduler name, config).
Cell = Tuple[ScenarioBuilder, str, ScenarioConfig]


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all cores, at least one."""
    return max(1, os.cpu_count() or 1)


class ParallelRunner:
    """Fans independent experiment cells across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs every cell in
        this process, bit-for-bit the serial runner.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs

    def run_cells(self, cells: Sequence[Cell]) -> List[RunSummary]:
        """Run cells (in order); parallel when jobs and cells allow.

        Builders must be picklable for ``jobs > 1`` — module-level
        functions or :func:`functools.partial` over them, which is what
        every figure module provides.
        """
        if self.jobs <= 1 or len(cells) <= 1:
            return [run_one(b, s, c) for b, s, c in cells]
        workers = min(self.jobs, len(cells))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(run_one, b, s, c) for b, s, c in cells]
            return [f.result() for f in futures]

    def compare(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
    ) -> Dict[str, RunSummary]:
        """Parallel :func:`repro.experiments.runner.compare`."""
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        summaries = self.run_cells([(builder, name, cfg) for name in names])
        return dict(zip(names, summaries))

    def compare_mean(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
        seeds: Sequence[int] = (0, 1, 2),
        domain: str = "vm1",
    ) -> Dict[str, MeanStats]:
        """Parallel :func:`repro.experiments.runner.compare_mean`.

        The full (seed x scheduler) product fans out at once; each
        cell's config carries its seed, so the pairing is identical to
        the serial nested loop.
        """
        if not seeds:
            raise ValueError("at least one seed required")
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        cells: List[Cell] = []
        for seed in seeds:
            seeded = dataclasses.replace(cfg, seed=seed)
            for name in names:
                cells.append((builder, name, seeded))
        summaries = self.run_cells(cells)
        return aggregate_mean_stats(names, seeds, summaries, domain)
