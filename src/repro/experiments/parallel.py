"""Parallel experiment runner: grid cells across worker processes.

Every comparison in the evaluation is a grid of fully independent
simulations — (workload, scheduler) cells for the figure sweeps,
(seed, scheduler) cells for the averaged tables.  Each cell builds its
own :class:`Machine` from a picklable scenario builder and a seeded
config, so cells can run in separate processes with no shared state:
the pairing guarantee (every scheduler sees the identical workload
randomness for a given seed) is carried entirely by the config's seed,
not by execution order.

:class:`ParallelRunner` mirrors the serial API of
:mod:`repro.experiments.runner` — :meth:`ParallelRunner.compare` and
:meth:`ParallelRunner.compare_mean` return exactly what their serial
counterparts return, cell for cell.  With ``jobs <= 1`` it *is* the
serial path (no executor, no pickling), so callers can thread a
``--jobs N`` flag straight through.

Worker crashes don't lose the grid: any cell whose future fails —
including the :class:`BrokenProcessPool` cascade when one worker dies
and takes every pending future with it — is retried once, serially, in
the parent process.  Because cells are deterministic functions of
(builder, scheduler, config), a serial re-run produces the exact
summary the worker would have; only cells that *also* fail serially
surface, aggregated into one :class:`ParallelExecutionError` naming
them.  Retried cells are recorded in
:attr:`ParallelRunner.retried_cells` so a flaky pool never passes
silently.
"""

from __future__ import annotations

import dataclasses
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from functools import partial
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    MeanStats,
    ScenarioBuilder,
    aggregate_mean_stats,
    run_one,
)
from repro.experiments.scenarios import SCHEDULER_NAMES, ScenarioConfig
from repro.metrics.collectors import RunSummary

__all__ = ["ParallelRunner", "ParallelExecutionError", "default_jobs"]

#: One grid cell: (builder, scheduler name, config).
Cell = Tuple[ScenarioBuilder, str, ScenarioConfig]


def default_jobs() -> int:
    """A sensible ``--jobs`` default: all *usable* cores, at least one.

    Containers and batch schedulers often pin the process to a subset
    of the machine (cgroup cpusets, ``taskset``); ``os.cpu_count()``
    ignores that and would oversubscribe the allowance, so the affinity
    mask wins where the platform exposes one.
    """
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            return max(1, len(getaffinity(0)))
        except OSError:  # pragma: no cover - platform quirk
            pass
    return max(1, os.cpu_count() or 1)


def cell_name(cell: Cell) -> str:
    """A stable human-readable id: ``builder(args)/scheduler/seed=N``."""
    builder, scheduler, cfg = cell
    fn = builder
    bound: List[str] = []
    while isinstance(fn, partial):
        bound.extend(str(a) for a in fn.args)
        bound.extend(f"{k}={v}" for k, v in sorted(fn.keywords.items()))
        fn = fn.func
    base = getattr(fn, "__name__", repr(fn))
    label = f"{base}({', '.join(bound)})" if bound else base
    return f"{label}/{scheduler}/seed={cfg.seed}"


class ParallelExecutionError(RuntimeError):
    """Cells that failed both in a worker and on the serial retry.

    ``failures`` maps each failing cell's :func:`cell_name` to the
    exception its serial retry raised (the worker-side error is often
    just the pool-collapse cascade; the serial one is the real cause).
    """

    def __init__(self, failures: Dict[str, BaseException], total: int) -> None:
        self.failures = dict(failures)
        detail = "; ".join(
            f"{name}: {type(exc).__name__}: {exc}" for name, exc in failures.items()
        )
        super().__init__(
            f"{len(failures)} of {total} cells failed even after serial retry: {detail}"
        )


class ParallelRunner:
    """Fans independent experiment cells across a process pool.

    Parameters
    ----------
    jobs:
        Worker process count.  ``1`` (the default) runs every cell in
        this process, bit-for-bit the serial runner.
    """

    def __init__(self, jobs: int = 1) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        #: cell names recovered by serial retry in the latest
        #: :meth:`run_cells` call (empty on a clean parallel run)
        self.retried_cells: List[str] = []

    def run_cells(self, cells: Sequence[Cell]) -> List[RunSummary]:
        """Run cells (in order); parallel when jobs and cells allow.

        Builders must be picklable for ``jobs > 1`` — module-level
        functions or :func:`functools.partial` over them, which is what
        every figure module provides.

        Cells whose worker fails (an exception in the cell, or a crash
        that breaks the whole pool) are re-run serially in this process
        — determinism makes the retry result identical to what the
        worker would have produced.  Cells failing the retry too raise
        one aggregated :class:`ParallelExecutionError`.
        """
        self.retried_cells = []
        if self.jobs <= 1 or len(cells) <= 1:
            return [run_one(b, s, c) for b, s, c in cells]
        workers = min(self.jobs, len(cells))
        results: List[Optional[RunSummary]] = [None] * len(cells)
        failed: List[int] = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures: Dict[int, object] = {}
            for index, (b, s, c) in enumerate(cells):
                try:
                    futures[index] = pool.submit(run_one, b, s, c)
                except BrokenProcessPool:
                    # The pool died while we were still submitting;
                    # everything not yet submitted goes to the retry.
                    failed.append(index)
            for index, future in futures.items():
                try:
                    results[index] = future.result()
                except Exception:
                    failed.append(index)
        failed.sort()
        failures: Dict[str, BaseException] = {}
        for index in failed:
            b, s, c = cells[index]
            name = cell_name(cells[index])
            self.retried_cells.append(name)
            try:
                results[index] = run_one(b, s, c)
            except Exception as exc:
                failures[name] = exc
        if failures:
            raise ParallelExecutionError(failures, total=len(cells))
        return results  # type: ignore[return-value]  # all slots filled

    def compare(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
    ) -> Dict[str, RunSummary]:
        """Parallel :func:`repro.experiments.runner.compare`."""
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        summaries = self.run_cells([(builder, name, cfg) for name in names])
        return dict(zip(names, summaries))

    def compare_mean(
        self,
        builder: ScenarioBuilder,
        cfg: ScenarioConfig,
        schedulers: Optional[Iterable[str]] = None,
        seeds: Sequence[int] = (0, 1, 2),
        domain: str = "vm1",
    ) -> Dict[str, MeanStats]:
        """Parallel :func:`repro.experiments.runner.compare_mean`.

        The full (seed x scheduler) product fans out at once; each
        cell's config carries its seed, so the pairing is identical to
        the serial nested loop.
        """
        if not seeds:
            raise ValueError("at least one seed required")
        names = tuple(schedulers) if schedulers is not None else SCHEDULER_NAMES
        cells: List[Cell] = []
        for seed in seeds:
            seeded = dataclasses.replace(cfg, seed=seed)
            for name in names:
                cells.append((builder, name, seeded))
        summaries = self.run_cells(cells)
        return aggregate_mean_stats(names, seeds, summaries, domain)
