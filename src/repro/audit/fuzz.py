"""Differential scenario fuzzing across the three engines.

The engine-parity contract says reference, vector and batched runs of
the same scenario are *bitwise identical*.  The unit suite checks that
on a handful of hand-picked scenarios; this module generates seeded
random ones — topologies beyond the paper's 2x4, mixed application
profiles, fault presets, mid-run domain churn — and runs each under
all three engines with every runtime invariant enabled
(:mod:`repro.audit.invariants`), then diffs the canonical
:class:`~repro.metrics.collectors.RunSummary` JSON.

A scenario is a frozen, JSON-round-trippable description
(:class:`FuzzScenario`), so any failure can be shrunk
(:mod:`repro.audit.shrink`) and committed as a literal in a regression
test.  Workload RNG streams are keyed by *structural* slot tags
(``d{i}.v{j}``), never by domain display names, so renaming domains
replays the same draws — the property the metamorphic relabeling
relation (:mod:`repro.audit.metamorphic`) relies on.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.audit.invariants import InvariantChecker, InvariantViolation
from repro.experiments.scenarios import ScenarioConfig, build_machine, make_scheduler
from repro.faults.plan import DomainCrash, FaultPlan, fault_preset
from repro.hardware.topology import GIB, symmetric_topology
from repro.metrics.collectors import summarize
from repro.obs.manifest import canonical_dumps
from repro.util.rng import RngStreams
from repro.workloads.appmodel import VcpuWorkload
from repro.workloads.generators import scaled_profile
from repro.workloads.suites import get_profile, hungry_loop
from repro.xen.domain import Domain
from repro.xen.memalloc import place_interleaved, place_single_node, place_split

__all__ = [
    "ENGINES",
    "FuzzScenario",
    "DifferentialResult",
    "generate_scenario",
    "build_fuzz_machine",
    "run_differential",
]

#: The engine-parity set; the first entry is the diff baseline.
ENGINES: Tuple[str, ...] = ("reference", "vector", "batched")

#: Topologies worth fuzzing: the paper's 2x4 plus smaller/odd shapes
#: that exercise single-node degenerate paths and >2-node scan orders.
_TOPOLOGIES: Tuple[Tuple[int, int], ...] = ((2, 4), (2, 2), (1, 4), (3, 2), (4, 2))

#: Application pool spanning the type space: memory-intensive SPEC
#: (soplex/libquantum/mcf/milc), cache-friendly (povray/gcc), NPB
#: kernels (ep/lu/mg) and the pure CPU hungry loop.
_PROFILES: Tuple[str, ...] = (
    "povray",
    "soplex",
    "libquantum",
    "mcf",
    "milc",
    "ep",
    "lu",
    "mg",
    "gcc",
    "hungry",
)

#: Every scheduler the repo ships, including the hardened variant.
_SCHEDULERS: Tuple[str, ...] = ("credit", "vprobe", "vprobe-h", "vcpu-p", "lb", "brm")

#: Fault environments; "none" is over-weighted so most scenarios probe
#: the clean engine contract, and "churn" is the custom mid-run
#: crash-and-restart of domain 0 (the presets' crash targets "vm2",
#: which a generated scenario need not contain).
_FAULTS: Tuple[str, ...] = (
    "none",
    "none",
    "none",
    "drop50",
    "drop100",
    "noisy",
    "saturate",
    "stall",
    "churn",
)


@dataclass(frozen=True)
class FuzzScenario:
    """One generated scenario, fully described by plain values.

    Frozen and JSON-round-trippable (:meth:`to_dict` /
    :meth:`from_dict`) so shrunken failures can be embedded as literals
    in regression tests.  Per-domain sequences (``profiles``,
    ``vcpus``, ``active``, ``placements``) are index-aligned; a
    placement is ``"split"``, ``"interleaved"`` or ``"node<J>"``.
    """

    seed: int
    num_nodes: int = 2
    pcpus_per_node: int = 4
    scheduler: str = "vprobe"
    profiles: Tuple[str, ...] = ("soplex",)
    vcpus: Tuple[int, ...] = (4,)
    active: Tuple[int, ...] = (4,)
    placements: Tuple[str, ...] = ("split",)
    work_scale: float = 0.05
    sample_period_s: float = 0.5
    max_time_s: float = 0.8
    fault: str = "none"
    churn_at_s: float = 0.0
    churn_downtime_s: float = 0.2

    def __post_init__(self) -> None:
        n = len(self.profiles)
        for name in ("vcpus", "active", "placements"):
            if len(getattr(self, name)) != n:
                raise ValueError(
                    f"{name} has {len(getattr(self, name))} entries "
                    f"for {n} domains"
                )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (tuples become lists)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzScenario":
        """Rebuild from :meth:`to_dict` output (lists become tuples)."""
        fixed = dict(data)
        for name in ("profiles", "vcpus", "active", "placements"):
            fixed[name] = tuple(fixed[name])
        return cls(**fixed)


def generate_scenario(seed: int) -> FuzzScenario:
    """Draw one scenario from the seeded distribution.

    The same ``seed`` always yields the same scenario; the generator
    stream is decoupled from the simulation seed (which is ``seed``
    itself) so scenario shape and run randomness vary independently.
    """
    rng = np.random.default_rng(np.uint64(seed) + np.uint64(0x5EED))
    num_nodes, per_node = _TOPOLOGIES[int(rng.integers(len(_TOPOLOGIES)))]
    total_pcpus = num_nodes * per_node

    placements_pool = ["split", "interleaved"] + [
        f"node{j}" for j in range(num_nodes)
    ]
    profiles: List[str] = []
    vcpus: List[int] = []
    active: List[int] = []
    placements: List[str] = []
    for _ in range(int(rng.integers(1, 4))):
        profiles.append(_PROFILES[int(rng.integers(len(_PROFILES)))])
        nv = int(rng.integers(1, min(8, total_pcpus) + 1))
        vcpus.append(nv)
        active.append(int(rng.integers(1, nv + 1)))
        placements.append(placements_pool[int(rng.integers(len(placements_pool)))])

    max_time_s = float((0.6, 0.9, 1.2)[int(rng.integers(3))])
    fault = _FAULTS[int(rng.integers(len(_FAULTS)))]
    return FuzzScenario(
        seed=seed,
        num_nodes=num_nodes,
        pcpus_per_node=per_node,
        scheduler=_SCHEDULERS[int(rng.integers(len(_SCHEDULERS)))],
        profiles=tuple(profiles),
        vcpus=tuple(vcpus),
        active=tuple(active),
        placements=tuple(placements),
        work_scale=float((0.02, 0.05, 0.1)[int(rng.integers(3))]),
        sample_period_s=float((0.25, 0.5, 1.0)[int(rng.integers(3))]),
        max_time_s=max_time_s,
        fault=fault,
        churn_at_s=round(0.4 * max_time_s, 3) if fault == "churn" else 0.0,
    )


def _placement(kind: str, num_slices: int, num_nodes: int):
    if kind == "split":
        return place_split(num_slices, num_nodes)
    if kind == "interleaved":
        return place_interleaved(num_slices, num_nodes)
    if kind.startswith("node"):
        return place_single_node(num_slices, num_nodes, node=int(kind[4:]) % num_nodes)
    raise ValueError(f"unknown placement kind {kind!r}")


def _fault_plan(scenario: FuzzScenario, names: Sequence[str]) -> Optional[FaultPlan]:
    if scenario.fault == "none":
        return None
    if scenario.fault == "churn":
        return FaultPlan(
            crashes=(
                DomainCrash(
                    names[0],
                    at_time_s=scenario.churn_at_s,
                    downtime_s=scenario.churn_downtime_s,
                ),
            )
        )
    return fault_preset(scenario.fault)


def default_names(n: int) -> List[str]:
    """The domain names a scenario gets unless the caller renames them."""
    return [f"vm{i + 1}" for i in range(n)]


def build_fuzz_machine(
    scenario: FuzzScenario,
    engine: str,
    names: Optional[Sequence[str]] = None,
    work_scale: Optional[float] = None,
):
    """Assemble the machine for one scenario under one engine.

    ``names`` renames the domains (metamorphic relabeling); the
    workload RNG streams stay keyed by structural slot tags, so renamed
    runs replay the exact same draws.  ``work_scale`` overrides the
    scenario's scale (metamorphic work doubling).
    """
    if names is None:
        names = default_names(len(scenario.profiles))
    scale = scenario.work_scale if work_scale is None else work_scale
    topo = symmetric_topology(scenario.num_nodes, scenario.pcpus_per_node)
    cfg = ScenarioConfig(
        work_scale=scale,
        seed=scenario.seed,
        sample_period_s=scenario.sample_period_s,
        max_time_s=scenario.max_time_s,
        engine=engine,
        faults=_fault_plan(scenario, names),
        # Generosity, not slack: a fuzz scenario must never spin.
        max_epochs=4 * int(round(scenario.max_time_s / 1e-3)) + 64,
        label=f"fuzz-{scenario.seed}",
    )
    rng = RngStreams(cfg.seed)
    domains = []
    for i, pname in enumerate(scenario.profiles):
        if pname == "hungry":
            profile = hungry_loop()
        else:
            profile = scaled_profile(get_profile(pname), scale)
        nv, na = scenario.vcpus[i], scenario.active[i]
        workloads = [
            VcpuWorkload(
                profile,
                rng.get(f"d{i}.v{j}"),
                slice_id=j,
                num_slices=nv,
                active=j < na,
            )
            for j in range(nv)
        ]
        domains.append(
            Domain(
                names[i],
                (1 + i) * GIB,
                _placement(scenario.placements[i], nv, scenario.num_nodes),
                workloads,
            )
        )
    return build_machine(make_scheduler(scenario.scheduler), cfg, domains, topo)


@dataclass(frozen=True)
class DifferentialResult:
    """Outcome of one scenario run under every engine.

    ``kind`` is ``"ok"``, ``"invariant"`` (an
    :class:`~repro.audit.invariants.InvariantViolation` fired),
    ``"divergence"`` (engines disagree on the canonical summary) or
    ``"error"`` (a run crashed outright — also a finding).  ``engine``
    names the offender, ``detail`` carries the violation message or the
    first differing region of the summaries.
    """

    scenario: FuzzScenario
    ok: bool
    kind: str
    engine: Optional[str] = None
    detail: str = ""
    checks_run: int = 0
    summaries: Dict[str, str] = field(default_factory=dict, compare=False)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (summaries omitted: they are large)."""
        return {
            "scenario": self.scenario.to_dict(),
            "ok": self.ok,
            "kind": self.kind,
            "engine": self.engine,
            "detail": self.detail,
            "checks_run": self.checks_run,
        }


def _first_difference(a: str, b: str, context: int = 60) -> str:
    """Locate and excerpt the first differing region of two strings."""
    limit = min(len(a), len(b))
    idx = limit
    for i in range(limit):
        if a[i] != b[i]:
            idx = i
            break
    lo = max(0, idx - context)
    return (
        f"first difference at char {idx}: "
        f"...{a[lo:idx + context]!r} != ...{b[lo:idx + context]!r}"
    )


def run_differential(
    scenario: FuzzScenario,
    engines: Sequence[str] = ENGINES,
    every: int = 1,
    invariants: Optional[Sequence[str]] = None,
) -> DifferentialResult:
    """Run one scenario under each engine, invariants on, and diff.

    Invariants default to *all* of them at every boundary
    (``every=1``); the summaries are compared in canonical JSON with
    the wall-clock profile excluded (``to_dict(include_profile=False)``
    is the engine-parity comparison form).
    """
    texts: Dict[str, str] = {}
    checks = 0
    for engine in engines:
        checker = InvariantChecker(enabled=invariants, every=every)
        try:
            machine = build_fuzz_machine(scenario, engine)
            machine.run(audit=checker)
        except InvariantViolation as exc:
            return DifferentialResult(
                scenario,
                ok=False,
                kind="invariant",
                engine=engine,
                detail=str(exc),
                checks_run=checks + checker.checks_run,
            )
        except Exception as exc:  # noqa: BLE001 - any crash is a finding
            return DifferentialResult(
                scenario,
                ok=False,
                kind="error",
                engine=engine,
                detail=f"{type(exc).__name__}: {exc}",
                checks_run=checks + checker.checks_run,
            )
        checks += checker.checks_run
        texts[engine] = canonical_dumps(
            summarize(machine).to_dict(include_profile=False)
        )

    base = engines[0]
    for engine in engines[1:]:
        if texts[engine] != texts[base]:
            return DifferentialResult(
                scenario,
                ok=False,
                kind="divergence",
                engine=engine,
                detail=(
                    f"{engine} summary differs from {base}: "
                    + _first_difference(texts[base], texts[engine])
                ),
                checks_run=checks,
                summaries=texts,
            )
    return DifferentialResult(
        scenario, ok=True, kind="ok", checks_run=checks, summaries=texts
    )
