"""Metamorphic relations: transformed inputs with predictable outputs.

Differential fuzzing (:mod:`repro.audit.fuzz`) catches engines
disagreeing with *each other*; metamorphic relations catch all three
agreeing on something *wrong*.  Each relation transforms a scenario in
a way whose effect on the result is known exactly:

* **relabel** — renaming domains must permute the summary's domain
  keys and nothing else.  Sound because workload RNG streams are keyed
  by structural slot tags (``d{i}.v{j}``), never display names.
* **work_scale** — doubling ``work_scale`` multiplies each finite
  profile's *finish line* but no per-instruction behaviour, so both
  runs must make identical scheduling decisions at matched epochs
  until the first completion.  Compared at a horizon two epochs short
  of the base run's earliest finish.
* **node permutation** — restricted to pinned, symmetric, steal-free
  scenarios (one never-blocking unbounded VCPU per PCPU, whole domains
  pinned to whole nodes, stock Credit): permuting which node each
  domain (and its memory) lives on must not change the summary at all.
  This is deliberately *not* claimed for general scenarios — Algorithm
  1's MIN-NODE tie-break, Credit's ascending-PCPU scheduling pass and
  shared steal RNG streams all legitimately break full node
  equivariance — the restricted form isolates the *hardware model's*
  node symmetry, which must hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.audit.fuzz import FuzzScenario, build_fuzz_machine, default_names
from repro.audit.invariants import InvariantChecker
from repro.experiments.scenarios import ScenarioConfig, build_machine, make_scheduler
from repro.hardware.topology import GIB, symmetric_topology
from repro.metrics.collectors import summarize
from repro.obs.manifest import canonical_dumps
from repro.util.rng import RngStreams
from repro.workloads.appmodel import VcpuWorkload
from repro.workloads.suites import get_profile, hungry_loop
from repro.xen.domain import Domain
from repro.xen.memalloc import place_single_node

__all__ = [
    "MetamorphicResult",
    "check_relabel",
    "check_work_scale",
    "NodePermSpec",
    "generate_node_perm_spec",
    "check_node_permutation",
    "run_metamorphic",
]


@dataclass(frozen=True)
class MetamorphicResult:
    """Outcome of one relation on one scenario."""

    relation: str
    ok: bool
    skipped: bool = False
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "relation": self.relation,
            "ok": self.ok,
            "skipped": self.skipped,
            "detail": self.detail,
        }


# ---------------------------------------------------------------------------
# Relabeling
# ---------------------------------------------------------------------------


def check_relabel(
    scenario: FuzzScenario, engine: str = "batched", every: int = 4
) -> MetamorphicResult:
    """Renaming domains must permute summary keys, nothing else."""
    n = len(scenario.profiles)
    base_names = default_names(n)
    new_names = [f"guest-{chr(ord('a') + i)}" for i in range(n)]

    checker = InvariantChecker(every=every)
    base = build_fuzz_machine(scenario, engine)
    base.run(audit=checker)
    renamed = build_fuzz_machine(scenario, engine, names=new_names)
    renamed.run(audit=InvariantChecker(every=every))

    s_base = summarize(base).to_dict(include_profile=False)
    s_renamed = summarize(renamed).to_dict(include_profile=False)

    # Map the renamed run's domains back onto the base names; after the
    # remap the two summaries must be canonically identical.
    remapped = dict(s_renamed)
    remapped["domains"] = {}
    for i in range(n):
        stats = dict(s_renamed["domains"][new_names[i]])
        stats["name"] = base_names[i]
        remapped["domains"][base_names[i]] = stats

    a, b = canonical_dumps(s_base), canonical_dumps(remapped)
    if a != b:
        return MetamorphicResult(
            "relabel",
            ok=False,
            detail=f"renamed run differs beyond domain names: {_excerpt(a, b)}",
        )
    return MetamorphicResult("relabel", ok=True)


# ---------------------------------------------------------------------------
# Work scaling
# ---------------------------------------------------------------------------


def check_work_scale(
    scenario: FuzzScenario, engine: str = "batched", every: int = 4
) -> MetamorphicResult:
    """Doubling work_scale must not change pre-completion decisions."""
    probe = build_fuzz_machine(scenario, engine)
    probe.run()
    epoch = probe.config.epoch_s
    finishes = [v.finish_time for v in probe.vcpus if v.finish_time is not None]
    if not finishes:
        return MetamorphicResult(
            "work_scale",
            ok=True,
            skipped=True,
            detail="no finite workload finished within the budget",
        )
    horizon = min(finishes) - 2 * epoch
    if horizon < 20 * epoch:
        return MetamorphicResult(
            "work_scale",
            ok=True,
            skipped=True,
            detail="first completion too early for a meaningful window",
        )

    digests = []
    for scale in (scenario.work_scale, scenario.work_scale * 2):
        machine = build_fuzz_machine(scenario, engine, work_scale=scale)
        machine.run(max_time_s=horizon, audit=InvariantChecker(every=every))
        digests.append(_decision_digest(machine))
    if digests[0] != digests[1]:
        return MetamorphicResult(
            "work_scale",
            ok=False,
            detail=(
                f"doubling work_scale changed decisions before any "
                f"completion (horizon {horizon:.3f}s): "
                + _excerpt(digests[0], digests[1])
            ),
        )
    return MetamorphicResult("work_scale", ok=True)


def _decision_digest(machine) -> str:
    """Canonical snapshot of everything the scheduler decided."""
    return canonical_dumps(
        {
            "time": machine.time,
            "epoch": machine.epoch_index,
            "context_switches": machine.context_switches,
            "migrations": machine.migrations,
            "cross_node_migrations": machine.cross_node_migrations,
            "steals": [machine.steals_local, machine.steals_remote],
            "vcpus": [
                [
                    v.key,
                    v.state.name,
                    v.pcpu,
                    v.credits,
                    v.vcpu_type.name,
                    v.assigned_node,
                    v.workload.instructions_done,
                ]
                for v in machine.vcpus
            ],
        }
    )


# ---------------------------------------------------------------------------
# Node permutation (restricted: pinned, symmetric, steal-free)
# ---------------------------------------------------------------------------

#: Profiles eligible for the pinned relation; each is stripped to an
#: unbounded, never-blocking variant so no VCPU ever completes, blocks
#: or wakes — the conditions under which Credit provably never steals
#: (every PCPU always has exactly its own pinned VCPU).
_PINNED_PROFILES: Tuple[str, ...] = ("soplex", "mcf", "povray", "milc", "gcc", "hungry")


@dataclass(frozen=True)
class NodePermSpec:
    """A pinned-symmetric scenario plus the node permutation to apply.

    ``profiles[i]`` runs in domain ``pin{i}`` whose VCPUs are pinned
    one-to-one onto node ``perm[i]``'s PCPUs and whose memory sits on
    node ``perm[(i + mem_offsets[i]) % num_nodes]`` — a nonzero offset
    makes every access remote, exercising interconnect symmetry too.
    """

    seed: int
    num_nodes: int
    pcpus_per_node: int
    profiles: Tuple[str, ...]
    mem_offsets: Tuple[int, ...]
    max_time_s: float = 0.5

    def __post_init__(self) -> None:
        if len(self.profiles) != self.num_nodes:
            raise ValueError("need exactly one domain per node")
        if len(self.mem_offsets) != self.num_nodes:
            raise ValueError("need one memory offset per domain")


def generate_node_perm_spec(seed: int) -> NodePermSpec:
    """Draw a pinned-symmetric spec from the seeded distribution."""
    rng = np.random.default_rng(np.uint64(seed) + np.uint64(0xA0DE))
    num_nodes = int((2, 3)[int(rng.integers(2))])
    per_node = int((2, 3)[int(rng.integers(2))])
    profiles = tuple(
        _PINNED_PROFILES[int(rng.integers(len(_PINNED_PROFILES)))]
        for _ in range(num_nodes)
    )
    offsets = tuple(int(rng.integers(num_nodes)) for _ in range(num_nodes))
    return NodePermSpec(
        seed=seed,
        num_nodes=num_nodes,
        pcpus_per_node=per_node,
        profiles=profiles,
        mem_offsets=offsets,
    )


def _unbounded(name: str):
    profile = hungry_loop() if name == "hungry" else get_profile(name)
    return profile.with_overrides(total_instructions=None, blocking=None)


def _pinned_machine(spec: NodePermSpec, perm: Sequence[int], engine: str):
    topo = symmetric_topology(spec.num_nodes, spec.pcpus_per_node)
    cfg = ScenarioConfig(
        seed=spec.seed,
        max_time_s=spec.max_time_s,
        sample_period_s=1.0,
        engine=engine,
        max_epochs=4 * int(round(spec.max_time_s / 1e-3)) + 64,
        label=f"node-perm-{spec.seed}",
    )
    rng = RngStreams(cfg.seed)
    k = spec.pcpus_per_node
    domains = []
    for i, pname in enumerate(spec.profiles):
        profile = _unbounded(pname)
        workloads = [
            VcpuWorkload(profile, rng.get(f"p{i}.v{j}"), slice_id=j, num_slices=k)
            for j in range(k)
        ]
        mem_node = perm[(i + spec.mem_offsets[i]) % spec.num_nodes]
        domains.append(
            Domain(
                f"pin{i}",
                2 * GIB,
                place_single_node(k, spec.num_nodes, node=mem_node),
                workloads,
                pinned_pcpus=list(topo.pcpus_of_node(perm[i])),
                # Keep the placement as stated: first-touch would snap
                # memory to the run node and erase the remote traffic
                # the relation is exercising.
                first_touch_init=False,
            )
        )
    return build_machine(make_scheduler("credit"), cfg, domains, topo)


#: Relative tolerance for the node-permutation comparison.  The
#: hardware model sums per-node contributions in node-index order;
#: a permutation reorders those terms, and IEEE addition is not
#: associative, so permuted runs differ in the last couple of ULPs
#: (observed <= 3e-16 relative).  Real node-asymmetry bugs show up
#: orders of magnitude above this; exact equality would only flag the
#: summation order.
_PERM_REL_TOL = 1e-12


def check_node_permutation(
    spec: NodePermSpec, engine: str = "batched", every: int = 4
) -> MetamorphicResult:
    """Rotating domains across nodes must leave the summary unchanged
    (up to float summation order — see ``_PERM_REL_TOL``)."""
    identity = list(range(spec.num_nodes))
    rotated = [(i + 1) % spec.num_nodes for i in range(spec.num_nodes)]

    summaries = []
    for perm in (identity, rotated):
        machine = _pinned_machine(spec, perm, engine)
        machine.run(audit=InvariantChecker(every=every))
        summaries.append(summarize(machine).to_dict(include_profile=False))
    mismatches = _approx_mismatches(summaries[0], summaries[1], _PERM_REL_TOL)
    if mismatches:
        return MetamorphicResult(
            "node_permutation",
            ok=False,
            detail=(
                "rotating pinned domains across nodes changed the summary: "
                + "; ".join(mismatches[:5])
            ),
        )
    return MetamorphicResult("node_permutation", ok=True)


def _approx_mismatches(a: Any, b: Any, rel: float, path: str = "$") -> List[str]:
    """Structural comparison with relative tolerance on numeric leaves."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: List[str] = []
        if set(a) != set(b):
            return [f"{path}: keys {sorted(a)} != {sorted(b)}"]
        for key in a:
            out.extend(_approx_mismatches(a[key], b[key], rel, f"{path}.{key}"))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{path}: length {len(a)} != {len(b)}"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(_approx_mismatches(x, y, rel, f"{path}[{i}]"))
        return out
    if (
        isinstance(a, (int, float))
        and isinstance(b, (int, float))
        and not isinstance(a, bool)
        and not isinstance(b, bool)
    ):
        if a == b:
            return []
        scale = max(abs(a), abs(b))
        if abs(a - b) <= rel * scale:
            return []
        return [f"{path}: {a!r} != {b!r} (rel {abs(a - b) / scale:.2e})"]
    if a != b:
        return [f"{path}: {a!r} != {b!r}"]
    return []


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run_metamorphic(
    scenario: FuzzScenario, engine: str = "batched", every: int = 4
) -> List[MetamorphicResult]:
    """All relations applicable to one generated scenario.

    The node-permutation relation runs on its own restricted spec drawn
    from the scenario's seed rather than on the scenario itself (see
    module docstring for why general equivariance is unsound).
    """
    return [
        check_relabel(scenario, engine, every),
        check_work_scale(scenario, engine, every),
        check_node_permutation(generate_node_perm_spec(scenario.seed), engine, every),
    ]


def _excerpt(a: str, b: str, context: int = 60) -> str:
    limit = min(len(a), len(b))
    idx = limit
    for i in range(limit):
        if a[i] != b[i]:
            idx = i
            break
    lo = max(0, idx - context)
    return (
        f"first difference at char {idx}: "
        f"...{a[lo:idx + context]!r} != ...{b[lo:idx + context]!r}"
    )
