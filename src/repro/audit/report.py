"""The ``repro audit`` run: fuzz, check relations, shrink, report.

:func:`run_audit` drives the whole audit campaign — seeded
differential scenarios (:mod:`repro.audit.fuzz`) plus metamorphic
relations (:mod:`repro.audit.metamorphic`), with every failure shrunk
to a minimal repro (:mod:`repro.audit.shrink`) — and packages the
outcome as a ``repro.audit/v1`` JSON report, validated by the same
mini-validator as traces and experiment reports
(:func:`repro.obs.schema.validate_audit_report`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.audit.fuzz import (
    ENGINES,
    DifferentialResult,
    generate_scenario,
    run_differential,
)
from repro.audit.metamorphic import MetamorphicResult, run_metamorphic
from repro.audit.shrink import repro_source, shrink
from repro.obs.manifest import canonical_dumps
from repro.obs.schema import AUDIT_SCHEMA

__all__ = ["AuditFailure", "AuditReport", "run_audit"]


@dataclass(frozen=True)
class AuditFailure:
    """One fuzzer finding: the original failure, its shrunken form and
    a ready-to-commit pytest repro."""

    original: DifferentialResult
    shrunk: DifferentialResult
    repro: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form."""
        return {
            "original": self.original.to_dict(),
            "shrunk": self.shrunk.to_dict(),
            "repro": self.repro,
        }


@dataclass(frozen=True)
class AuditReport:
    """Everything one audit campaign produced."""

    seeds: Tuple[int, ...]
    engines: Tuple[str, ...]
    results: Tuple[DifferentialResult, ...]
    metamorphic: Tuple[Tuple[int, MetamorphicResult], ...]
    failures: Tuple[AuditFailure, ...]
    checks_run: int
    elapsed_s: float
    budget_exhausted: bool = False
    skipped_seeds: Tuple[int, ...] = field(default=())

    @property
    def ok(self) -> bool:
        """True when every scenario and relation held."""
        return all(r.ok for r in self.results) and all(
            m.ok for _, m in self.metamorphic
        )

    def to_dict(self) -> Dict[str, Any]:
        """The ``repro.audit/v1`` report envelope."""
        return {
            "schema": AUDIT_SCHEMA,
            "kind": "audit",
            "payload": {
                "ok": self.ok,
                "seeds": list(self.seeds),
                "engines": list(self.engines),
                "checks_run": self.checks_run,
                "elapsed_s": self.elapsed_s,
                "budget_exhausted": self.budget_exhausted,
                "skipped_seeds": list(self.skipped_seeds),
                "results": [r.to_dict() for r in self.results],
                "metamorphic": [
                    dict(m.to_dict(), seed=seed) for seed, m in self.metamorphic
                ],
                "failures": [f.to_dict() for f in self.failures],
            },
        }

    def to_json(self) -> str:
        """Canonical JSON text of :meth:`to_dict`."""
        return canonical_dumps(self.to_dict())


def run_audit(
    seeds: int = 25,
    budget_s: Optional[float] = None,
    base_seed: int = 0,
    engines: Sequence[str] = ENGINES,
    metamorphic: bool = True,
    shrink_failures: bool = True,
    invariants: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> AuditReport:
    """Run the audit campaign.

    Parameters
    ----------
    seeds:
        Number of generated scenarios (seeds ``base_seed ..
        base_seed+seeds-1``).
    budget_s:
        Optional wall-clock budget; when exceeded, remaining seeds are
        skipped and the report says so (``budget_exhausted``) instead
        of silently passing on less coverage.
    engines:
        Engines to diff (first is the baseline).
    metamorphic:
        Also run the metamorphic relations on every third scenario
        (they cost several extra runs each).
    shrink_failures:
        Shrink each differential failure to a minimal repro.
    invariants:
        Restrict runtime invariants to this subset (default: all).
    progress:
        Optional callback receiving one line per scenario.
    """
    start = time.monotonic()
    results: List[DifferentialResult] = []
    failures: List[AuditFailure] = []
    relations: List[Tuple[int, MetamorphicResult]] = []
    skipped: List[int] = []
    checks = 0
    exhausted = False

    for i in range(seeds):
        seed = base_seed + i
        if budget_s is not None and time.monotonic() - start > budget_s:
            exhausted = True
            skipped.append(seed)
            continue
        scenario = generate_scenario(seed)
        result = run_differential(scenario, engines=engines, invariants=invariants)
        checks += result.checks_run
        results.append(result)
        if progress is not None:
            progress(
                f"seed {seed}: {result.kind}"
                + (f" on {result.engine}" if result.engine else "")
                + f" ({scenario.scheduler}, {scenario.num_nodes}x"
                f"{scenario.pcpus_per_node}, fault={scenario.fault})"
            )
        if not result.ok:
            shrunk = (
                shrink(result)
                if shrink_failures
                else result
            )
            failures.append(
                AuditFailure(
                    original=result,
                    shrunk=shrunk,
                    repro=repro_source(shrunk, f"test_fuzz_repro_seed_{seed}"),
                )
            )
            continue
        if metamorphic and i % 3 == 0:
            for rel in run_metamorphic(scenario):
                relations.append((seed, rel))
                if progress is not None and not rel.ok:
                    progress(f"seed {seed}: metamorphic {rel.relation} FAILED")

    return AuditReport(
        seeds=tuple(range(base_seed, base_seed + seeds)),
        engines=tuple(engines),
        results=tuple(results),
        metamorphic=tuple(relations),
        failures=tuple(failures),
        checks_run=checks,
        elapsed_s=time.monotonic() - start,
        budget_exhausted=exhausted,
        skipped_seeds=tuple(skipped),
    )
