"""Runtime invariant checking for the machine simulator.

The reproduction rests on a closed feedback loop — simulated PMU
counters drive scheduling decisions that in turn determine the
counters — so a silent bookkeeping bug (lost credits, a VCPU dropped
from a run queue, a negative counter delta) corrupts every figure
without failing any engine-parity test: all three engines would
reproduce the same wrong numbers bit for bit.  This module provides the
independent witness: a registry of cheap, toggleable assertions over
live machine state, evaluated at epoch and sampling-period boundaries
of whichever engine is driving the run.

Invariant catalogue (``INVARIANT_NAMES``):

``placement``
    Every live VCPU is in exactly one place: RUNNING VCPUs are
    ``current`` on exactly the PCPU they record and queued nowhere;
    RUNNABLE VCPUs sit in exactly one run queue — their own PCPU's;
    BLOCKED/DONE VCPUs are neither queued nor current.  Never zero
    places, never two.
``work_conservation``
    After a scheduling pass no PCPU idles while its own queue holds
    runnable VCPUs (checked post-pass: later in the same epoch a
    completing or blocking VCPU may legitimately leave work waiting
    until the next pass).
``credit_conservation``
    Credits stay inside ``[credit_floor, credit_cap]`` and are finite;
    between boundaries with no accounting tick the machine-wide credit
    total is *exactly* unchanged (credits move only at ticks), and
    across ticks the total moves by at most one refill supply up and
    one full debit down per tick.
``pmu_window``
    Every open sampling window's deltas (instructions, LLC refs and
    misses, per-node and local/remote accesses) are non-negative — the
    window base is a past snapshot of a monotone counter, so a
    negative delta means the base detached from the live bank.
``pmu_monotone``
    Cumulative counters never decrease between checked boundaries.
``partition_spread``
    After each Algorithm-1 partition round the per-node reassignment
    counts satisfy ``max(reassigned_load) - min(reassigned_load) <= 1``
    and sum to the number of decisions made.
``steal_locality``
    Algorithm-2 never steals across nodes while a victim queue on the
    thief's own node held an eligible candidate under the same
    cache-hot filter, and never takes a cache-hot VCPU unless the
    thief was about to idle.

Violations raise :class:`InvariantViolation` carrying the epoch,
engine, and a canonical-JSON digest of the machine state, so a failure
inside a million-epoch fuzz run is immediately reproducible and
comparable across engines.

The checker is attached at runtime (``machine.run(audit=...)``), never
through :class:`~repro.xen.simulator.SimConfig`, so enabling it cannot
perturb config hashes, cache keys or trace manifests; every check is
strictly read-only, so an audited run produces bitwise-identical
results to an unaudited one (asserted by ``benchmarks/bench_audit.py``).
"""

from __future__ import annotations

import hashlib
import math
import weakref
from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

from repro.xen.vcpu import VcpuState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import PartitionDecision
    from repro.xen.pcpu import Pcpu
    from repro.xen.simulator import Machine
    from repro.xen.vcpu import Vcpu

__all__ = [
    "INVARIANT_NAMES",
    "InvariantViolation",
    "InvariantChecker",
    "state_digest",
]

#: Every invariant the checker knows, in documentation order.
INVARIANT_NAMES: Tuple[str, ...] = (
    "placement",
    "work_conservation",
    "credit_conservation",
    "pmu_window",
    "pmu_monotone",
    "partition_spread",
    "steal_locality",
)

_EPS = 1e-9


def state_digest(machine: "Machine") -> str:
    """Canonical-JSON digest of the schedulable machine state.

    Covers everything an invariant can see — time, per-VCPU
    state/placement/credits, per-PCPU current + queue order, and the
    headline counters — serialised with
    :func:`repro.obs.manifest.canonical_dumps` so two engines at the
    same boundary produce the same digest iff their states agree.
    """
    from repro.obs.manifest import canonical_dumps

    snapshot = {
        "time": machine.time,
        "epoch": machine.epoch_index,
        "tick": machine.tick_index,
        "vcpus": [
            [v.key, v.state.name, v.pcpu, v.credits, v.vcpu_type.name]
            for v in machine.vcpus
        ],
        "pcpus": [
            [
                p.pcpu_id,
                p.current.key if p.current is not None else None,
                [v.key for v in p.queue],
            ]
            for p in machine.pcpus
        ],
        "counters": [
            machine.context_switches,
            machine.migrations,
            machine.cross_node_migrations,
            machine.steals_local,
            machine.steals_remote,
        ],
    }
    raw = canonical_dumps(snapshot)
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()[:16]


class InvariantViolation(RuntimeError):
    """A runtime invariant failed.

    Carries enough structure to file the failure without re-running:
    which invariant, at which epoch boundary, under which engine, and a
    canonical state digest for cross-engine comparison.
    """

    def __init__(
        self,
        invariant: str,
        message: str,
        *,
        epoch: int,
        time_s: float,
        engine: str,
        digest: str,
    ) -> None:
        super().__init__(
            f"[{invariant}] {message} "
            f"(engine={engine}, epoch={epoch}, t={time_s:.6f}s, state={digest})"
        )
        self.invariant = invariant
        self.detail = message
        self.epoch = epoch
        self.time_s = time_s
        self.engine = engine
        self.digest = digest


class InvariantChecker:
    """Registry of toggleable runtime assertions over a live machine.

    Parameters
    ----------
    enabled:
        Invariant names to run (default: all of ``INVARIANT_NAMES``).
    disabled:
        Names to subtract from ``enabled`` — convenient for "everything
        except" configurations.
    every:
        Epoch-boundary cadence: state checks run every ``every``-th
        boundary (and always at sampling-period boundaries, where the
        PMU windows turn over).  ``1`` checks every epoch — what the
        fuzzer uses.  A checked boundary costs tens of microseconds
        (every check walks all VCPUs) against an epoch of ~60 us, so
        the default of 32 amortises the always-on cost under the 5%
        budget asserted by ``benchmarks/bench_audit.py``; unchecked
        boundaries cost two near-free no-op calls.
        Algorithm hooks (``partition_spread``, ``steal_locality``) are
        event-driven and ignore the cadence.

    The checker is attached with ``machine.run(audit=checker)`` and
    counts every individual invariant evaluation in :attr:`checks_run`
    (the "exactly zero when disabled" guard observes this counter).
    The conservation checks keep per-machine history (previous credit
    total, previous PMU totals); the checker rebinds automatically when
    it sees a different machine, so one instance can audit a sequence
    of runs without history leaking between them.
    """

    def __init__(
        self,
        enabled: Optional[Iterable[str]] = None,
        disabled: Iterable[str] = (),
        every: int = 32,
    ) -> None:
        names = set(INVARIANT_NAMES if enabled is None else enabled)
        names -= set(disabled)
        unknown = names - set(INVARIANT_NAMES)
        if unknown:
            raise ValueError(
                f"unknown invariant(s) {sorted(unknown)}; "
                f"known: {list(INVARIANT_NAMES)}"
            )
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.enabled = frozenset(names)
        self.every = every
        #: individual invariant evaluations performed so far
        self.checks_run = 0
        self._boundaries = 0
        self._active = False
        # credit_conservation history
        self._credit_total: Optional[float] = None
        self._credit_tick: int = 0
        self._credit_n: int = -1
        # pmu_monotone history: key -> (instr, refs, misses, local, remote)
        self._pmu_prev: Dict[int, Tuple[float, float, float, float, float]] = {}
        # the machine the history above belongs to
        self._machine_ref: Optional["weakref.ReferenceType"] = None

    def _bind(self, machine: "Machine") -> None:
        """Reset per-machine history when the audited machine changes."""
        ref = self._machine_ref
        if ref is not None and ref() is machine:
            return
        self._machine_ref = weakref.ref(machine)
        self._credit_total = None
        self._credit_n = -1
        self._pmu_prev.clear()

    # ------------------------------------------------------------------
    # Machine hook points
    # ------------------------------------------------------------------
    def after_schedule(self, machine: "Machine") -> None:
        """Called by ``Machine._step_epoch`` right after the scheduling
        pass — the only point where work conservation must hold."""
        self._bind(machine)
        self._active = self._boundaries % self.every == 0
        self._boundaries += 1
        if not self._active:
            return
        if "placement" in self.enabled:
            self._check_placement(machine)
        if "work_conservation" in self.enabled:
            self._check_work_conservation(machine)

    def after_epoch(self, machine: "Machine", sample_boundary: bool) -> None:
        """Called by ``Machine._step_epoch`` at the epoch's end (after
        progress, phase changes and any sampling-period work)."""
        if not (self._active or sample_boundary):
            return
        self._bind(machine)
        if "credit_conservation" in self.enabled:
            self._check_credits(machine)
        if "pmu_window" in self.enabled:
            self._check_pmu_window(machine)
        if "pmu_monotone" in self.enabled:
            self._check_pmu_monotone(machine)

    def check_partition(
        self,
        machine: "Machine",
        now: float,
        reassigned_load: Sequence[int],
        decisions: Sequence["PartitionDecision"],
    ) -> None:
        """Called by Algorithm 1 after each partition round."""
        if "partition_spread" not in self.enabled:
            return
        self.checks_run += 1
        if not decisions:
            return
        spread = max(reassigned_load) - min(reassigned_load)
        if spread > 1:
            self._fail(
                machine,
                "partition_spread",
                f"uneven partition round: reassigned_load={list(reassigned_load)} "
                f"(spread {spread} > 1) over {len(decisions)} decisions",
            )
        if sum(reassigned_load) != len(decisions):
            self._fail(
                machine,
                "partition_spread",
                f"reassigned_load={list(reassigned_load)} sums to "
                f"{sum(reassigned_load)}, expected {len(decisions)} decisions",
            )

    def check_steal(
        self,
        machine: "Machine",
        thief: "Pcpu",
        vcpu: "Vcpu",
        now: float,
        only_cold: bool,
        hot_window: float,
    ) -> None:
        """Called by Algorithm 2 for every successful steal, before the
        machine rebinds ``vcpu.pcpu`` (so the victim is still visible)."""
        if "steal_locality" not in self.enabled:
            return
        self.checks_run += 1
        topo = machine.topology
        victim_node = topo.node_of_pcpu(vcpu.pcpu) if vcpu.pcpu is not None else None
        if not only_cold and now - vcpu.last_ran_time < hot_window:
            # The cache-hot fallback is reserved for a thief about to idle.
            if thief.current is not None or thief.queue:
                self._fail(
                    machine,
                    "steal_locality",
                    f"cache-hot steal of {vcpu.name} by busy pcpu "
                    f"{thief.pcpu_id} (current={thief.current is not None}, "
                    f"queued={len(thief.queue)})",
                )
        if victim_node is None or victim_node == thief.node:
            return
        # Cross-node steal: no local victim queue may still hold an
        # eligible candidate.  The stolen VCPU already left its (remote)
        # queue, so the thief's node queues are exactly as Algorithm 2
        # saw them when it scanned the local node first.
        for pid in topo.pcpus_of_node(thief.node):
            victim = machine.pcpus[pid]
            if victim is thief or not victim.queue:
                continue
            for cand in victim.queue:
                if not only_cold or now - cand.last_ran_time >= hot_window:
                    self._fail(
                        machine,
                        "steal_locality",
                        f"pcpu {thief.pcpu_id} (node {thief.node}) stole "
                        f"{vcpu.name} from node {victim_node} while local "
                        f"pcpu {victim.pcpu_id} queued eligible {cand.name} "
                        f"(only_cold={only_cold})",
                    )

    # ------------------------------------------------------------------
    # State checks
    # ------------------------------------------------------------------
    def _fail(self, machine: "Machine", invariant: str, message: str) -> None:
        raise InvariantViolation(
            invariant,
            message,
            epoch=machine.epoch_index,
            time_s=machine.time,
            engine=machine.config.engine,
            digest=state_digest(machine),
        )

    def _check_placement(self, machine: "Machine") -> None:
        self.checks_run += 1
        queued: Dict[int, int] = {}
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                if cur.state is not VcpuState.RUNNING:
                    self._fail(
                        machine,
                        "placement",
                        f"pcpu {pcpu.pcpu_id} current {cur.name} is "
                        f"{cur.state.name}, not RUNNING",
                    )
                if cur.pcpu != pcpu.pcpu_id:
                    self._fail(
                        machine,
                        "placement",
                        f"{cur.name} is current on pcpu {pcpu.pcpu_id} but "
                        f"records pcpu {cur.pcpu}",
                    )
            for v in pcpu.queue:
                if v.key in queued:
                    self._fail(
                        machine,
                        "placement",
                        f"{v.name} queued on both pcpu {queued[v.key]} "
                        f"and pcpu {pcpu.pcpu_id}",
                    )
                queued[v.key] = pcpu.pcpu_id
        for v in machine.vcpus:
            if v.state is VcpuState.RUNNING:
                if v.key in queued:
                    self._fail(
                        machine,
                        "placement",
                        f"RUNNING {v.name} also queued on pcpu {queued[v.key]}",
                    )
                if v.pcpu is None or machine.pcpus[v.pcpu].current is not v:
                    self._fail(
                        machine,
                        "placement",
                        f"RUNNING {v.name} is not current on its pcpu {v.pcpu}",
                    )
            elif v.state is VcpuState.RUNNABLE:
                where = queued.get(v.key)
                if where is None:
                    self._fail(
                        machine, "placement", f"RUNNABLE {v.name} is in no run queue"
                    )
                elif where != v.pcpu:
                    self._fail(
                        machine,
                        "placement",
                        f"RUNNABLE {v.name} queued on pcpu {where} but "
                        f"records pcpu {v.pcpu}",
                    )
            else:  # BLOCKED / DONE
                if v.key in queued:
                    self._fail(
                        machine,
                        "placement",
                        f"{v.state.name} {v.name} still queued on pcpu "
                        f"{queued[v.key]}",
                    )

    def _check_work_conservation(self, machine: "Machine") -> None:
        self.checks_run += 1
        for pcpu in machine.pcpus:
            if pcpu.current is None and pcpu.queue:
                waiting = [v.name for v in pcpu.queue]
                self._fail(
                    machine,
                    "work_conservation",
                    f"pcpu {pcpu.pcpu_id} idles while its queue holds {waiting}",
                )

    def _check_credits(self, machine: "Machine") -> None:
        self.checks_run += 1
        params = machine.policy.params
        lo = params.credit_floor - _EPS
        hi = params.credit_cap + _EPS
        for v in machine.vcpus:
            c = v.credits
            if not (lo <= c <= hi) or c != c:
                self._fail(
                    machine,
                    "credit_conservation",
                    f"{v.name} credits {c!r} outside "
                    f"[{params.credit_floor}, {params.credit_cap}]",
                )
        total = math.fsum(v.credits for v in machine.vcpus)
        prev, prev_tick = self._credit_total, self._credit_tick
        self._credit_total = total
        self._credit_tick = machine.tick_index
        if prev is None or len(machine.vcpus) != self._credit_n:
            self._credit_n = len(machine.vcpus)
            return
        ticks = machine.tick_index - prev_tick
        if ticks == 0:
            if total != prev:
                self._fail(
                    machine,
                    "credit_conservation",
                    f"credit total moved {prev!r} -> {total!r} with no "
                    f"accounting tick in between",
                )
            return
        # At most one refill per accounting period and one full debit
        # per tick can have happened since the last checked boundary.
        supply = (
            params.credits_per_tick * params.ticks_per_acct * len(machine.pcpus)
        )
        refills = ticks // params.ticks_per_acct + 1
        max_up = refills * supply + _EPS
        max_down = ticks * params.credits_per_tick * len(machine.pcpus) + _EPS
        delta = total - prev
        if delta > max_up or delta < -max_down:
            self._fail(
                machine,
                "credit_conservation",
                f"credit total moved by {delta:+.6f} over {ticks} tick(s); "
                f"bounds [-{max_down:.1f}, +{max_up:.1f}]",
            )

    def _check_pmu_window(self, machine: "Machine") -> None:
        self.checks_run += 1
        pmu = machine.pmu
        num_nodes = machine.topology.num_nodes
        for v in machine.vcpus:
            bank = pmu.peek(v.key)
            base = pmu.peek_window_base(v.key)
            # Scalar comparisons throughout: node_accesses is a
            # num_nodes-element array and a numpy ``<``+``any()`` on it
            # costs more than every other check here combined.
            if (
                bank.instructions < base.instructions
                or bank.llc_refs < base.llc_refs
                or bank.llc_misses < base.llc_misses
                or bank.local_accesses < base.local_accesses
                or bank.remote_accesses < base.remote_accesses
                or any(
                    bank.node_accesses[i] < base.node_accesses[i]
                    for i in range(num_nodes)
                )
            ):
                self._fail(
                    machine,
                    "pmu_window",
                    f"negative sampling-window delta for {v.name}: the "
                    f"window base has overtaken the live counter bank",
                )

    def _check_pmu_monotone(self, machine: "Machine") -> None:
        self.checks_run += 1
        pmu = machine.pmu
        for v in machine.vcpus:
            bank = pmu.peek(v.key)
            now = (
                bank.instructions,
                bank.llc_refs,
                bank.llc_misses,
                bank.local_accesses,
                bank.remote_accesses,
            )
            prev = self._pmu_prev.get(v.key)
            self._pmu_prev[v.key] = now
            if prev is None:
                continue
            for field, a, b in zip(
                ("instructions", "llc_refs", "llc_misses", "local", "remote"),
                prev,
                now,
            ):
                if b < a:
                    self._fail(
                        machine,
                        "pmu_monotone",
                        f"cumulative {field} for {v.name} decreased "
                        f"{a!r} -> {b!r}",
                    )

    # ------------------------------------------------------------------
    def describe(self) -> Dict[str, object]:
        """Summary of the checker's configuration and activity."""
        return {
            "enabled": sorted(self.enabled),
            "every": self.every,
            "checks_run": self.checks_run,
        }
