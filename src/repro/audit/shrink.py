"""Greedy scenario shrinking: turn a fuzz failure into a minimal repro.

A raw failing :class:`~repro.audit.fuzz.FuzzScenario` may carry three
domains, a four-node topology and a fault plan when the bug needs one
domain and two nodes.  The shrinker applies a fixed list of
simplifying transformations (shorten the run, drop domains, halve
VCPU counts, remove the fault, shrink the topology, simplify
placements), keeps any transformed scenario that *still fails the same
way*, and repeats until no transformation helps — a deterministic
delta-debugging loop.

The result can be emitted as a ready-to-commit pytest case
(:func:`repro_source`) embedding the minimal scenario as a literal, so
every bug the fuzzer finds ships with its regression test.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, List, Optional

from repro.audit.fuzz import DifferentialResult, FuzzScenario, run_differential

__all__ = ["shrink", "repro_source"]

#: Upper bound on differential runs during one shrink (3 engine runs
#: each); the loop is greedy so real shrinks finish far below it.
_DEFAULT_BUDGET = 60


def _same_failure(a: DifferentialResult, b: DifferentialResult) -> bool:
    """Failing *the same way*: kind and offending engine must match.

    The detail string is deliberately not compared — shrinking changes
    epochs, digests and offsets while preserving the underlying bug.
    """
    return (not b.ok) and a.kind == b.kind and a.engine == b.engine


def _transformations(s: FuzzScenario) -> List[FuzzScenario]:
    """Candidate simplifications, most aggressive first."""
    out: List[FuzzScenario] = []

    def drop_domain(i: int) -> Optional[FuzzScenario]:
        if len(s.profiles) <= 1:
            return None
        keep = [j for j in range(len(s.profiles)) if j != i]
        return replace(
            s,
            profiles=tuple(s.profiles[j] for j in keep),
            vcpus=tuple(s.vcpus[j] for j in keep),
            active=tuple(s.active[j] for j in keep),
            placements=tuple(s.placements[j] for j in keep),
        )

    for i in range(len(s.profiles)):
        cand = drop_domain(i)
        if cand is not None:
            out.append(cand)

    if s.max_time_s > 0.2:
        out.append(replace(s, max_time_s=round(max(0.2, s.max_time_s / 2), 3)))

    if s.fault != "none":
        out.append(replace(s, fault="none", churn_at_s=0.0))

    if any(nv > 1 for nv in s.vcpus):
        halved = tuple(max(1, nv // 2) for nv in s.vcpus)
        out.append(
            replace(
                s,
                vcpus=halved,
                active=tuple(min(a, nv) for a, nv in zip(s.active, halved)),
            )
        )

    if s.num_nodes > 2:
        out.append(replace(s, num_nodes=2, placements=_clip_placements(s, 2)))
    if s.pcpus_per_node > 2:
        out.append(replace(s, pcpus_per_node=2))

    for i, kind in enumerate(s.placements):
        if kind != "node0":
            simpler = tuple(
                "node0" if j == i else k for j, k in enumerate(s.placements)
            )
            out.append(replace(s, placements=simpler))

    return out


def _clip_placements(s: FuzzScenario, num_nodes: int):
    return tuple(
        f"node{int(k[4:]) % num_nodes}" if k.startswith("node") else k
        for k in s.placements
    )


def shrink(
    result: DifferentialResult,
    budget: int = _DEFAULT_BUDGET,
    check: Callable[[FuzzScenario], DifferentialResult] = run_differential,
) -> DifferentialResult:
    """Greedily minimise a failing scenario, preserving its failure.

    Returns the differential result of the smallest scenario found (the
    original ``result`` if nothing simpler still fails).  ``check`` is
    injectable for tests; ``budget`` caps total differential runs.
    """
    if result.ok:
        raise ValueError("cannot shrink a passing scenario")
    best = result
    runs = 0
    improved = True
    while improved and runs < budget:
        improved = False
        for candidate in _transformations(best.scenario):
            if runs >= budget:
                break
            runs += 1
            attempt = check(candidate)
            if _same_failure(best, attempt):
                best = attempt
                improved = True
                break  # restart from the smaller scenario
    return best


def repro_source(result: DifferentialResult, test_name: str) -> str:
    """A ready-to-commit pytest case reproducing ``result``.

    The scenario is embedded as a literal, so the test stands alone:
    it re-runs the differential check and asserts it passes — exactly
    the assertion that failed when the fuzzer found the bug.
    """
    s = result.scenario
    lines = [
        "def %s():" % test_name,
        '    """Shrunken fuzzer repro: %s diverged (%s).' % (result.engine, result.kind),
        "",
        "    %s" % result.detail[:200].replace("\\", "\\\\").replace('"', '\\"'),
        '    """',
        "    scenario = FuzzScenario(",
        "        seed=%d," % s.seed,
        "        num_nodes=%d," % s.num_nodes,
        "        pcpus_per_node=%d," % s.pcpus_per_node,
        "        scheduler=%r," % s.scheduler,
        "        profiles=%r," % (s.profiles,),
        "        vcpus=%r," % (s.vcpus,),
        "        active=%r," % (s.active,),
        "        placements=%r," % (s.placements,),
        "        work_scale=%r," % s.work_scale,
        "        sample_period_s=%r," % s.sample_period_s,
        "        max_time_s=%r," % s.max_time_s,
        "        fault=%r," % s.fault,
        "        churn_at_s=%r," % s.churn_at_s,
        "    )",
        "    result = run_differential(scenario)",
        "    assert result.ok, f'{result.kind} on {result.engine}: {result.detail}'",
        "",
    ]
    return "\n".join(lines)
