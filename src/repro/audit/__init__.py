"""Simulation audit subsystem: runtime invariants + differential fuzzing.

Two complementary layers of defence for the engine-parity and
correctness contracts:

* :mod:`repro.audit.invariants` — cheap, toggleable runtime assertions
  checked at epoch and sample-period boundaries inside a live run
  (credit conservation, placement uniqueness, work conservation, PMU
  sanity, Algorithm-1 even spread, Algorithm-2 steal locality).
  Attach with ``machine.run(audit=True)`` or
  ``run_one(..., audit=InvariantChecker(...))``.
* :mod:`repro.audit.fuzz` / :mod:`repro.audit.metamorphic` — seeded
  random scenarios run under all three engines with invariants on,
  summaries diffed canonically, plus metamorphic relations (relabel,
  work-scale doubling, restricted node permutation).
* :mod:`repro.audit.shrink` — delta-debugging of failures into minimal
  scenarios emitted as ready-to-commit pytest repros.
* :mod:`repro.audit.report` — the ``repro audit`` campaign driver and
  its ``repro.audit/v1`` JSON report.
"""

from repro.audit.fuzz import (
    ENGINES,
    DifferentialResult,
    FuzzScenario,
    build_fuzz_machine,
    generate_scenario,
    run_differential,
)
from repro.audit.invariants import (
    INVARIANT_NAMES,
    InvariantChecker,
    InvariantViolation,
    state_digest,
)
from repro.audit.metamorphic import (
    MetamorphicResult,
    NodePermSpec,
    check_node_permutation,
    check_relabel,
    check_work_scale,
    generate_node_perm_spec,
    run_metamorphic,
)
from repro.audit.report import AuditFailure, AuditReport, run_audit
from repro.audit.shrink import repro_source, shrink

__all__ = [
    "ENGINES",
    "INVARIANT_NAMES",
    "AuditFailure",
    "AuditReport",
    "DifferentialResult",
    "FuzzScenario",
    "InvariantChecker",
    "InvariantViolation",
    "MetamorphicResult",
    "NodePermSpec",
    "build_fuzz_machine",
    "check_node_permutation",
    "check_relabel",
    "check_work_scale",
    "generate_node_perm_spec",
    "generate_scenario",
    "repro_source",
    "run_audit",
    "run_differential",
    "run_metamorphic",
    "shrink",
    "state_digest",
]
