"""Graceful shutdown: turn SIGINT/SIGTERM into a resumable exit.

The contract a relaunch wrapper can rely on::

    repro report out/ --fast ... ; code=$?
    if [ $code -eq 75 ]; then repro report out/ --fast ... --resume; fi

``75`` is :data:`EXIT_RESUMABLE` (BSD ``EX_TEMPFAIL``): the run was
interrupted after flushing its journal (and checkpointing any
in-flight serial cell), so relaunching with ``--resume`` loses no
completed work.  Any other non-zero exit is a real failure.

Mechanics: :class:`GracefulShutdown` installs handlers that raise
:class:`ShutdownRequested` *in the main thread* — which interrupts
even a blocking ``future.result()`` wait on a worker pool.  Code that
must not be interrupted at an arbitrary bytecode (a serial simulation
that wants to stop at a clean epoch boundary and checkpoint) wraps
itself in :meth:`GracefulShutdown.deferred`: inside, a signal only
sets the ``requested`` flag, and the run loop's ``stop_check`` picks
it up at the next epoch boundary.

:class:`ShutdownRequested` derives from ``BaseException`` on purpose:
the runner's crash-retry machinery catches ``Exception`` to recover
cells, and a shutdown must sail through that, not be "recovered".
"""

from __future__ import annotations

import signal
from types import TracebackType
from typing import Iterator, List, Optional, Tuple, Type

import contextlib

__all__ = ["EXIT_RESUMABLE", "ShutdownRequested", "GracefulShutdown"]

#: Documented exit code for "interrupted but resumable" (EX_TEMPFAIL).
EXIT_RESUMABLE = 75


class ShutdownRequested(BaseException):
    """Raised in the main thread when SIGINT/SIGTERM asks us to stop."""

    def __init__(self, signum: int) -> None:
        try:
            name = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unknown signal number
            name = str(signum)
        super().__init__(f"shutdown requested by {name}")
        self.signum = signum


class GracefulShutdown:
    """Context manager owning the process's SIGINT/SIGTERM response.

    >>> shutdown = GracefulShutdown()
    >>> with shutdown:
    ...     run_the_grid(stop_check=shutdown.is_requested)

    Outside :meth:`deferred` sections a signal raises
    :class:`ShutdownRequested` immediately; inside, it only sets
    :attr:`requested` so cooperative loops can stop at a safe point.
    A second signal always raises — the operator's escape hatch when a
    deferred section is stuck.
    """

    #: Signals that trigger a graceful shutdown (SIGTERM may be absent
    #: on exotic platforms; filtered at install time).
    SIGNALS = tuple(
        s
        for s in (getattr(signal, "SIGINT", None), getattr(signal, "SIGTERM", None))
        if s is not None
    )

    def __init__(self) -> None:
        self.requested = False
        self.signum: Optional[int] = None
        self._defer_depth = 0
        self._previous: List[Tuple[int, object]] = []

    # -- signal plumbing ------------------------------------------------
    def _handle(self, signum: int, frame) -> None:
        repeated = self.requested
        self.requested = True
        self.signum = signum
        if self._defer_depth == 0 or repeated:
            raise ShutdownRequested(signum)

    def __enter__(self) -> "GracefulShutdown":
        self._previous = []
        for sig in self.SIGNALS:
            try:
                self._previous.append((sig, signal.signal(sig, self._handle)))
            except (ValueError, OSError):  # pragma: no cover - not main thread
                pass
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        for sig, previous in self._previous:
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):  # pragma: no cover
                pass
        self._previous = []

    # -- cooperative-stop API ------------------------------------------
    def is_requested(self) -> bool:
        """``stop_check`` callable for :meth:`Machine.run`."""
        return self.requested

    def check(self) -> None:
        """Raise :class:`ShutdownRequested` if a signal already arrived."""
        if self.requested:
            raise ShutdownRequested(self.signum or signal.SIGTERM)

    @contextlib.contextmanager
    def deferred(self) -> Iterator["GracefulShutdown"]:
        """Within: signals set the flag instead of raising.

        Use around code that polls :meth:`is_requested` at safe points
        (epoch boundaries) and wants to checkpoint before exiting.
        """
        self._defer_depth += 1
        try:
            yield self
        finally:
            self._defer_depth -= 1
