"""Crash-safe, resumable experiment execution.

Four pillars, each its own module, all built on the same invariant the
engines already guarantee — a run is a deterministic function of
(builder, scheduler, config), and its state at any *epoch boundary* is
a complete description of the rest of the run:

* :mod:`repro.recovery.checkpoint` — versioned, ``config_hash``-stamped
  snapshots of a live :class:`~repro.xen.simulator.Machine`, with
  bitwise resume parity across all three engines;
* :mod:`repro.recovery.journal` — a write-ahead JSONL journal of
  per-cell grid outcomes, so ``repro report --resume`` re-dispatches
  only cells that never finished;
* :mod:`repro.recovery.deadline` — per-cell wall-clock deadlines with
  exponential-backoff retries and quarantine after repeated strikes,
  folding :class:`~repro.xen.simulator.SimulationTimeout` into the
  same path;
* :mod:`repro.recovery.shutdown` — SIGINT/SIGTERM handlers that flush
  the journal, checkpoint in-flight serial runs and exit with the
  documented resumable code (:data:`~repro.recovery.shutdown.EXIT_RESUMABLE`).
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    checkpoint_path_for,
    execute_cell_resumable,
    inspect_checkpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.recovery.deadline import (
    CellDeadlineExceeded,
    DeadlinePolicy,
    Quarantine,
)
from repro.recovery.journal import JOURNAL_SCHEMA, GridJournal
from repro.recovery.shutdown import (
    EXIT_RESUMABLE,
    GracefulShutdown,
    ShutdownRequested,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "checkpoint_path_for",
    "execute_cell_resumable",
    "inspect_checkpoint",
    "load_checkpoint",
    "save_checkpoint",
    "CellDeadlineExceeded",
    "DeadlinePolicy",
    "Quarantine",
    "JOURNAL_SCHEMA",
    "GridJournal",
    "EXIT_RESUMABLE",
    "GracefulShutdown",
    "ShutdownRequested",
]
