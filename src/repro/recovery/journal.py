"""Write-ahead grid journal: per-cell outcomes that survive a crash.

The result cache (:mod:`repro.cache`) already makes *completed cells*
durable, but it is content-addressed and optional; the journal is the
run-scoped record that lets ``repro report --resume`` answer "which
cells of *this grid* already finished, and which were quarantined?"
without recomputing anything.  One JSONL file per report directory;
each line is a self-describing record::

    {"schema": "repro.journal/v1", "version": ..., "kind": "cell",
     "status": "done", "key": ..., "cell": ..., "summary": {...}}

Record kinds:

* ``cell`` / ``done`` — the cell's full canonical-JSON
  :class:`~repro.metrics.collectors.RunSummary` (the exact payload the
  result cache stores, so a journal hit is byte-for-byte a fresh run);
* ``cell`` / ``quarantined`` — the cell repeatedly blew its wall-clock
  deadline (or hit its ``max_epochs`` cap); resume must *not* retry it;
* ``job`` / ``done`` or ``quarantined`` — a whole report job (one
  figure/table) finished rendering, so resume can skip it outright.

Durability discipline: every append rewrites the journal through
mkstemp + ``os.replace`` — the same atomic-publish rule as
:mod:`repro.cache.store` — so the on-disk file is always a complete,
parseable JSONL document no matter where a crash lands.  Loading is
defensive the same way reads are everywhere else in this codebase: a
malformed line, wrong schema or wrong package version makes that
*record* invisible (the cell simply recomputes), never an error.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Optional

from repro.cache.serialize import summary_from_payload, summary_to_payload
from repro.metrics.collectors import RunSummary
from repro.obs.manifest import canonical_dumps

__all__ = ["JOURNAL_SCHEMA", "GridJournal", "JournalCache"]

#: Journal record schema (bump on breaking record-shape change; old
#: records then self-invalidate by being skipped on load).
JOURNAL_SCHEMA = "repro.journal/v1"

#: Errors that make a journal line invisible instead of fatal.
_RECORD_ERRORS = (ValueError, KeyError, TypeError, AttributeError)


class GridJournal:
    """Append-only record of grid outcomes, atomic on every append.

    Parameters
    ----------
    path:
        The journal file (conventionally ``<outdir>/journal.jsonl``).
    resume:
        ``True`` loads any existing journal so completed cells resolve
        without recomputation; ``False`` (a fresh run) discards it.
    """

    def __init__(self, path: "pathlib.Path | str", resume: bool = False) -> None:
        self.path = pathlib.Path(path)
        self._records: List[Dict[str, Any]] = []
        self._cells: Dict[str, RunSummary] = {}
        self._quarantines: Dict[str, Dict[str, Any]] = {}
        self._jobs: Dict[str, str] = {}
        #: records recovered from disk by a ``resume=True`` load
        self.loaded_cells = 0
        self.loaded_quarantines = 0
        self.loaded_jobs = 0
        if resume and self.path.exists():
            self._load()
        elif self.path.exists():
            try:
                self.path.unlink()  # fresh run: a stale journal is noise
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Loading (defensive)
    # ------------------------------------------------------------------
    def _load(self) -> None:
        from repro import __version__

        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn or garbage line: invisible
            if (
                not isinstance(record, dict)
                or record.get("schema") != JOURNAL_SCHEMA
                or record.get("version") != __version__
            ):
                continue
            try:
                self._absorb(record)
            except _RECORD_ERRORS:
                continue
            self._records.append(record)

    def _absorb(self, record: Dict[str, Any]) -> None:
        kind = record["kind"]
        if kind == "cell":
            key = record["key"]
            if record["status"] == "done":
                self._cells[key] = summary_from_payload(record["summary"])
                # Replay keeps record_cell's semantics: a later success
                # supersedes an earlier quarantine of the same cell.
                if self._quarantines.pop(key, None) is not None:
                    self.loaded_quarantines -= 1
                self.loaded_cells += 1
            elif record["status"] == "quarantined":
                self._quarantines[key] = dict(record["quarantine"])
                self.loaded_quarantines += 1
            else:
                raise ValueError(f"unknown cell status {record['status']!r}")
        elif kind == "job":
            self._jobs[record["job"]] = record["status"]
            self.loaded_jobs += 1
        else:
            raise ValueError(f"unknown record kind {kind!r}")

    # ------------------------------------------------------------------
    # Appending (atomic)
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> None:
        from repro import __version__

        record = {"schema": JOURNAL_SCHEMA, "version": __version__, **record}
        self._records.append(record)
        self._flush()

    def _flush(self) -> None:
        """Publish the full journal atomically (mkstemp + replace).

        A journal write failure must never fail the experiment — the
        worst outcome of a lost record is recomputing a cell on resume.
        """
        try:
            text = "".join(canonical_dumps(r) + "\n" for r in self._records)
        except (TypeError, ValueError):  # pragma: no cover - defensive
            return
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.path.parent, prefix=".tmp-", suffix=".jsonl"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, self.path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            pass

    def record_cell(self, key: str, cell: str, summary: RunSummary) -> None:
        """Journal a completed cell (its summary replays exactly)."""
        self._cells[key] = summary
        self._quarantines.pop(key, None)
        self._append(
            {
                "kind": "cell",
                "status": "done",
                "key": key,
                "cell": cell,
                "summary": summary_to_payload(summary),
            }
        )

    def record_quarantine(
        self, key: str, cell: str, info: Dict[str, Any]
    ) -> None:
        """Journal a quarantined cell; resume will not retry it."""
        self._quarantines[key] = dict(info)
        self._append(
            {
                "kind": "cell",
                "status": "quarantined",
                "key": key,
                "cell": cell,
                "quarantine": dict(info),
            }
        )

    def record_job(self, job: str, status: str = "done") -> None:
        """Journal a whole report job as finished (or quarantined)."""
        if status not in ("done", "quarantined"):
            raise ValueError(f"unknown job status {status!r}")
        self._jobs[job] = status
        self._append({"kind": "job", "status": status, "job": job})

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def get_cell(self, key: str) -> Optional[RunSummary]:
        """The journaled summary for a cell key, or ``None``."""
        return self._cells.get(key)

    def get_quarantine(self, key: str) -> Optional[Dict[str, Any]]:
        """The quarantine record for a cell key, or ``None``."""
        return self._quarantines.get(key)

    def job_status(self, job: str) -> Optional[str]:
        """``"done"``, ``"quarantined"`` or ``None`` for a report job."""
        return self._jobs.get(job)

    @property
    def cell_count(self) -> int:
        """Completed cells currently journaled."""
        return len(self._cells)

    @property
    def quarantine_count(self) -> int:
        """Quarantined cells currently journaled."""
        return len(self._quarantines)

    def quarantines(self) -> Dict[str, Dict[str, Any]]:
        """All quarantine records, keyed by cell key (copy)."""
        return {k: dict(v) for k, v in self._quarantines.items()}


class JournalCache:
    """The journal behind the :class:`~repro.cache.store.ResultCache`
    get/put protocol.

    The grid path journals through :class:`ParallelRunner` directly,
    but the serial report jobs (fig1/fig3/fig8, table3, the ablations)
    reach their cells through
    :func:`repro.experiments.runner.run_one`'s ``cache=`` parameter.
    Wrapping the journal (and the real cache, when one is configured)
    in this adapter makes those cells journal-covered too — so a
    ``--resume`` replays them even when the on-disk outputs are gone
    and no result cache is configured.

    Resolution order matches the runner's: journal first, then the
    underlying cache (a cache hit is written through to the journal so
    resume never depends on the cache staying warm).  Journal hits are
    counted in :attr:`journal_hits`; the underlying cache keeps its own
    honest hit/miss counters because it only sees journal misses.
    """

    def __init__(self, journal: GridJournal, cache: Optional[Any] = None) -> None:
        self.journal = journal
        self.cache = cache
        self.journal_hits = 0

    def get(self, key: str) -> Optional[RunSummary]:
        """Journaled summary, cache fallback (journaled), or ``None``."""
        hit = self.journal.get_cell(key)
        if hit is not None:
            self.journal_hits += 1
            return hit
        if self.cache is not None:
            hit = self.cache.get(key)
            if hit is not None:
                self.journal.record_cell(key, key, hit)
            return hit
        return None

    def put(
        self,
        key: str,
        summary: RunSummary,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Journal the cell; store to the underlying cache when present."""
        meta = meta or {}
        label = str(meta.get("cell", meta.get("scheduler", key)))
        self.journal.record_cell(key, label, summary)
        if self.cache is not None:
            return self.cache.put(key, summary, meta=meta)
        return True
