"""Per-cell wall-clock deadlines, retries with backoff, quarantine.

A grid must not die because one cell is pathological.  Two
timeout-class failures exist:

* :class:`~repro.xen.simulator.SimulationTimeout` — the *simulated*
  epoch cap fired.  Deterministic: retrying reproduces it at full
  cost, so the cell is quarantined immediately (this is the
  ``max_epochs`` contract the parallel runner previously paid a full
  serial retry to rediscover);
* :class:`CellDeadlineExceeded` — the cell blew its *wall-clock*
  deadline.  Possibly environmental (a loaded machine, a cold page
  cache), so the parent retries with exponential backoff; after
  ``max_strikes`` total attempts the cell is quarantined.

Enforcement is cooperative and lives *in the process running the
cell*: a ``SIGALRM`` interval timer around the cell raises
:class:`CellDeadlineExceeded` at the deadline.  Worker processes run
tasks on their main thread, so the guard works identically in a
:class:`~concurrent.futures.ProcessPoolExecutor` worker and in the
parent's serial path; on platforms without ``setitimer`` the guard
degrades to no enforcement rather than breaking the run.

The guarded worker entry (:func:`run_cell_batch_guarded`) reports
per-cell *outcomes* instead of raising, so the parent can tell a
timeout (quarantine path) from a genuine error (serial-retry path)
even when both happen inside one chunk.
"""

from __future__ import annotations

import contextlib
import dataclasses
import signal
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CellDeadlineExceeded",
    "DeadlinePolicy",
    "Quarantine",
    "alarm_guard",
    "run_cell_batch_guarded",
    "TIMEOUT_EXCEPTIONS",
]


class CellDeadlineExceeded(RuntimeError):
    """A cell exceeded its wall-clock deadline and was cancelled."""

    def __init__(self, deadline_s: float) -> None:
        super().__init__(f"cell exceeded its {deadline_s:g}s wall-clock deadline")
        self.deadline_s = deadline_s


#: Exception type *names* treated as timeout-class when a worker
#: reports them (names, because the worker ships strings, not objects).
TIMEOUT_EXCEPTIONS = ("SimulationTimeout", "CellDeadlineExceeded")


@dataclasses.dataclass(frozen=True, slots=True)
class DeadlinePolicy:
    """How overrunning cells are cancelled, retried and quarantined.

    Attributes
    ----------
    deadline_s:
        Wall-clock budget per attempt.
    max_strikes:
        Total attempts (first run included) before quarantine.
    backoff_base_s / backoff_factor:
        Sleep before retry ``k`` is ``base * factor**(k-1)`` — the
        exponential backoff that lets a transiently-loaded host calm
        down between attempts.
    """

    deadline_s: float
    max_strikes: int = 3
    backoff_base_s: float = 0.25
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_strikes < 1:
            raise ValueError(f"max_strikes must be >= 1, got {self.max_strikes}")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_s(self, strike: int) -> float:
        """Sleep before the attempt following strike number ``strike``."""
        return self.backoff_base_s * self.backoff_factor ** max(0, strike - 1)

    @classmethod
    def coerce(
        cls, value: "DeadlinePolicy | float | int | None"
    ) -> "Optional[DeadlinePolicy]":
        """Accept a policy, bare seconds, or ``None`` (no deadlines)."""
        if value is None or isinstance(value, DeadlinePolicy):
            return value
        return cls(deadline_s=float(value))


@dataclasses.dataclass(frozen=True, slots=True)
class Quarantine:
    """One cell removed from the grid instead of failing it."""

    cell: str  #: human-readable cell name (with its grid index)
    key: Optional[str]  #: cache/journal key, None for identity-less cells
    reason: str  #: ``"sim_timeout"`` or ``"deadline"``
    strikes: int  #: attempts consumed before quarantine
    detail: str  #: the final exception, rendered

    def to_dict(self) -> Dict[str, Any]:
        """JSON form (journal + recovery report)."""
        return {
            "cell": self.cell,
            "key": self.key,
            "reason": self.reason,
            "strikes": self.strikes,
            "detail": self.detail,
        }


@contextlib.contextmanager
def alarm_guard(deadline_s: Optional[float]):
    """Raise :class:`CellDeadlineExceeded` after ``deadline_s`` of wall time.

    No-op when ``deadline_s`` is None, off the main thread, or on a
    platform without ``signal.setitimer`` — enforcement degrades to
    "none" rather than crashing the run.  Restores the previous
    handler and any prior timer on exit.
    """
    usable = (
        deadline_s is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _on_alarm(signum, frame):  # pragma: no cover - timing dependent
        raise CellDeadlineExceeded(deadline_s)

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, deadline_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: One worker-side outcome: ("ok", summary) | ("timeout"|"error",
#: (exception type name, rendered message)).
CellOutcome = Tuple[str, Any]


def run_cell_batch_guarded(
    cells: Sequence[Tuple[Any, str, Any]],
    deadline_s: Optional[float] = None,
) -> List[CellOutcome]:
    """Worker entry: run a chunk of cells, reporting per-cell outcomes.

    Module-level and cache-blind like
    :func:`~repro.experiments.parallel.run_cell_batch`, but an
    exception in cell *k* no longer poisons cells *k+1..n* of the
    chunk, and the parent learns exactly which cell failed how:
    timeout-class failures route to the quarantine path, everything
    else to the crash-retry path.
    """
    from repro.experiments.runner import execute_cell
    from repro.xen.simulator import SimulationTimeout

    outcomes: List[CellOutcome] = []
    for builder, scheduler, cfg in cells:
        try:
            with alarm_guard(deadline_s):
                outcomes.append(("ok", execute_cell(builder, scheduler, cfg)))
        except (SimulationTimeout, CellDeadlineExceeded) as exc:
            outcomes.append(("timeout", (type(exc).__name__, str(exc))))
        except Exception as exc:
            outcomes.append(("error", (type(exc).__name__, str(exc))))
    return outcomes
