"""Engine checkpoints: snapshot a live machine, resume it bitwise.

A checkpoint is taken at an *epoch boundary* — the only points where
the simulation's state is self-contained (mid-epoch there are solver
intermediates on the stack).  The snapshot serializes the full machine
object graph: scheduler state, every RNG stream's exact bit-state, the
fault injector's cursors, PMU windows, event log and profiler
counters.  The lazily-built epoch engine is deliberately *excluded*:
every engine reconstructs itself from live machine state (that is
already how ``add_domain`` invalidates it), so a restored machine
replays identically on any of the three engines — the resume-parity
matrix in ``tests/test_recovery.py`` proves it.

File format
-----------
One UTF-8 JSON header line, then the raw pickle payload::

    {"schema": "repro.checkpoint/v1", "version": ..., "config_hash":
     ..., "epoch_index": ..., "payload_sha256": ..., ...}\\n
    <pickle bytes>

The header is readable without touching the payload, carries the
result-defining :func:`~repro.obs.manifest.config_hash`, and embeds
the payload's SHA-256 so ``repro checkpoint inspect`` can detect
truncation or corruption before unpickling a byte.  Writes are atomic
(mkstemp + ``os.replace``, the same discipline as
:mod:`repro.cache.store`): a reader never observes a torn snapshot.

Versioning rule (see DESIGN.md): the pickle payload's layout is an
implementation detail of one package version, so loading is *strict* —
any schema, version or ``config_hash`` mismatch raises
:class:`CheckpointError` instead of risking a silently-wrong resume.
A stale checkpoint costs a re-run, never a wrong result.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import pickle
import tempfile
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import ScenarioBuilder
    from repro.experiments.scenarios import ScenarioConfig
    from repro.metrics.collectors import RunSummary
    from repro.xen.simulator import Machine

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "save_checkpoint",
    "read_header",
    "inspect_checkpoint",
    "load_checkpoint",
    "checkpoint_path_for",
    "execute_cell_resumable",
]

#: Snapshot schema identifier.  Bump on ANY change to what the payload
#: contains or how it is produced; a bump orphans every existing
#: snapshot, which is the point (DESIGN.md "snapshot versioning").
CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

#: Pickle protocol pinned explicitly so the payload bytes are a
#: deterministic function of the machine state and the schema version.
_PICKLE_PROTOCOL = 4


class CheckpointError(RuntimeError):
    """A snapshot that cannot be trusted: wrong schema/version/hash,
    truncated payload, or unreadable file."""


def _machine_payload(machine: "Machine") -> bytes:
    """Pickle the machine without its (reconstructible) epoch engine."""
    # Machine.__getstate__ drops the engine; pickling here is just the
    # plain protocol so third parties can torture-test snapshots.
    return pickle.dumps(machine, protocol=_PICKLE_PROTOCOL)


def save_checkpoint(machine: "Machine", path: "pathlib.Path | str") -> Dict[str, Any]:
    """Snapshot ``machine`` to ``path`` atomically; returns the header.

    Must be called at an epoch boundary — in practice: between ``run``
    calls, or from a ``stop_check`` cut (the run loop only consults it
    between epochs).
    """
    from repro import __version__
    from repro.obs.manifest import canonical_dumps, config_hash

    path = pathlib.Path(path)
    payload = _machine_payload(machine)
    header = {
        "schema": CHECKPOINT_SCHEMA,
        "version": __version__,
        "config_hash": config_hash(machine.config),
        "policy": machine.policy.name,
        "engine": machine.config.engine,
        "seed": machine.config.seed,
        "label": machine.config.label,
        "epoch_index": machine.epoch_index,
        "sim_time_s": machine.time,
        "domains": len(machine.domains),
        "vcpus": len(machine.vcpus),
        "payload_bytes": len(payload),
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-", suffix=".ckpt")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(canonical_dumps(header).encode("utf-8") + b"\n")
            fh.write(payload)
        os.replace(tmp, path)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return header


def read_header(path: "pathlib.Path | str") -> Dict[str, Any]:
    """Parse a snapshot's header line without reading the payload."""
    path = pathlib.Path(path)
    try:
        with path.open("rb") as fh:
            line = fh.readline()
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable: {exc}") from exc
    try:
        header = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise CheckpointError(f"{path}: malformed header: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != CHECKPOINT_SCHEMA:
        raise CheckpointError(
            f"{path}: not a {CHECKPOINT_SCHEMA} snapshot "
            f"(schema={header.get('schema')!r})"
            if isinstance(header, dict)
            else f"{path}: header is not an object"
        )
    return header


def _read_payload(path: pathlib.Path, header: Dict[str, Any]) -> bytes:
    try:
        with path.open("rb") as fh:
            fh.readline()  # skip header
            payload = fh.read()
    except OSError as exc:
        raise CheckpointError(f"{path}: unreadable payload: {exc}") from exc
    expected = header.get("payload_sha256")
    if len(payload) != header.get("payload_bytes") or (
        hashlib.sha256(payload).hexdigest() != expected
    ):
        raise CheckpointError(
            f"{path}: payload digest mismatch (truncated or corrupt snapshot)"
        )
    return payload


def inspect_checkpoint(
    path: "pathlib.Path | str", verify_payload: bool = True
) -> Dict[str, Any]:
    """Validate a snapshot; returns its header on success.

    Checks the schema, the writing package version, and (by default)
    the payload digest.  Raises :class:`CheckpointError` on any
    problem — the ``repro checkpoint inspect`` CLI maps that to a
    non-zero exit, mirroring ``repro validate`` for traces.
    """
    from repro import __version__

    path = pathlib.Path(path)
    header = read_header(path)
    if header.get("version") != __version__:
        raise CheckpointError(
            f"{path}: written by package version {header.get('version')!r}, "
            f"this is {__version__} (stale snapshot; re-run instead of resuming)"
        )
    if verify_payload:
        _read_payload(path, header)
    return header


def load_checkpoint(
    path: "pathlib.Path | str",
    expect_config_hash: Optional[str] = None,
) -> "Machine":
    """Restore a machine from a snapshot, strictly.

    ``expect_config_hash`` (when given) must equal the snapshot's
    stamped hash — the caller's way of saying "this checkpoint must
    belong to *this* run", rejecting a snapshot from a different
    scenario that happens to share a file name.
    """
    from repro.obs.manifest import config_hash

    path = pathlib.Path(path)
    header = inspect_checkpoint(path, verify_payload=False)
    if (
        expect_config_hash is not None
        and header.get("config_hash") != expect_config_hash
    ):
        raise CheckpointError(
            f"{path}: config_hash {header.get('config_hash')!r} does not match "
            f"expected {expect_config_hash!r} (snapshot of a different run)"
        )
    payload = _read_payload(path, header)
    try:
        machine = pickle.loads(payload)
    except Exception as exc:  # pickle raises a zoo of types
        raise CheckpointError(f"{path}: payload does not unpickle: {exc}") from exc
    # Defense in depth: the restored state must re-derive the stamped
    # hash, so a header edited to pass the expect check still fails.
    if config_hash(machine.config) != header.get("config_hash"):
        raise CheckpointError(
            f"{path}: restored config hashes to a different value than the "
            "header claims (corrupt or tampered snapshot)"
        )
    return machine


def checkpoint_path_for(directory: "pathlib.Path | str", key: str) -> pathlib.Path:
    """Where a grid cell's in-flight checkpoint lives."""
    return pathlib.Path(directory) / f"{key}.ckpt"


def execute_cell_resumable(
    builder: "ScenarioBuilder",
    scheduler: str,
    cfg: "ScenarioConfig",
    checkpoint_dir: "pathlib.Path | str",
    key: Optional[str],
    stop_check: Optional[Callable[[], bool]] = None,
) -> "Optional[RunSummary]":
    """Run one grid cell with checkpoint/resume around interruptions.

    The checkpoint-aware twin of
    :func:`repro.experiments.runner.execute_cell`:

    * a valid snapshot under ``checkpoint_dir`` (named by the cell's
      cache ``key``) resumes the run from its saved epoch instead of
      rebuilding from scratch;
    * when ``stop_check`` fires, the machine is snapshotted at the
      epoch boundary where it stopped and ``None`` is returned — the
      caller (the serial grid path under a
      :class:`~repro.recovery.shutdown.GracefulShutdown`) then exits
      resumable;
    * a completed run deletes its snapshot and returns the summary,
      which resume parity guarantees is identical to an uninterrupted
      run's.

    Cells without a provable identity (``key is None``) cannot name a
    snapshot, so they run straight through (still honouring
    ``stop_check``, just without persistence).
    """
    from repro.experiments.scenarios import make_scheduler
    from repro.metrics.collectors import summarize
    from repro.obs.manifest import config_hash

    path = checkpoint_path_for(checkpoint_dir, key) if key is not None else None
    machine = None
    if path is not None and path.exists():
        try:
            machine = load_checkpoint(
                path, expect_config_hash=config_hash(cfg.sim_config())
            )
        except CheckpointError:
            machine = None  # stale/corrupt snapshot: rebuild from scratch
    if machine is None:
        machine = builder(make_scheduler(scheduler), cfg)
    result = machine.run(stop_check=stop_check)
    if result.interrupted:
        if path is not None:
            save_checkpoint(machine, path)
        return None
    if path is not None:
        try:
            path.unlink()
        except OSError:
            pass
    return summarize(machine)
