"""Shared utilities: seeded RNG streams, validation, structured event log.

These helpers are deliberately dependency-light so every other subpackage
(hardware, xen, core, experiments) can rely on them without import cycles.
"""

from repro.util.rng import RngStreams, derive_seed
from repro.util.validation import (
    check_fraction,
    check_index,
    check_non_negative,
    check_positive,
)
from repro.util.eventlog import EventLog, LogEvent

__all__ = [
    "RngStreams",
    "derive_seed",
    "check_fraction",
    "check_index",
    "check_non_negative",
    "check_positive",
    "EventLog",
    "LogEvent",
]
