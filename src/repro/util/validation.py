"""Small argument-validation helpers used across the simulator.

The simulator is configuration-heavy (topologies, workload profiles,
scheduler parameters); failing fast with a precise message at
construction time is much cheaper than debugging a silently wrong
contention solve thousands of epochs later.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_fraction",
    "check_index",
    "check_probability_vector",
]


def check_positive(value: float, name: str) -> float:
    """Require ``value`` to be a finite number > 0 and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be finite and > 0, got {value!r}")
    return float(value)


def check_non_negative(value: float, name: str) -> float:
    """Require ``value`` to be a finite number >= 0 and return it."""
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise TypeError(f"{name} must be a number, got {type(value).__name__}")
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")
    return float(value)


def check_fraction(value: float, name: str) -> float:
    """Require ``value`` in the closed interval [0, 1] and return it."""
    check_non_negative(value, name)
    if value > 1:
        raise ValueError(f"{name} must be <= 1, got {value!r}")
    return float(value)


def check_index(value: int, bound: int, name: str) -> int:
    """Require ``value`` to be an int in ``[0, bound)`` and return it."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < bound:
        raise ValueError(f"{name} must be in [0, {bound}), got {value}")
    return value


def check_probability_vector(values: Sequence[float], name: str) -> list[float]:
    """Require ``values`` to be non-negative and sum to 1 (±1e-9)."""
    vals = [check_non_negative(v, f"{name}[{i}]") for i, v in enumerate(values)]
    total = sum(vals)
    if abs(total - 1.0) > 1e-9:
        raise ValueError(f"{name} must sum to 1, got sum={total!r}")
    return vals
