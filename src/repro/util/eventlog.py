"""Structured event log for scheduler-level tracing.

The simulator records migrations, partitioning rounds, steals, and
overhead charges as structured events.  Tests assert on the event
stream (e.g. "vProbe never steals cross-node while local runnable
VCPUs exist"), and the experiment harness aggregates it for the
migration statistics reported alongside the paper's figures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["LogEvent", "EventLog"]


@dataclass(frozen=True, slots=True)
class LogEvent:
    """A single timestamped simulator event.

    Attributes
    ----------
    time:
        Simulated time in seconds.
    kind:
        Event category, e.g. ``"migrate"``, ``"steal"``, ``"partition"``,
        ``"overhead"``, ``"phase_change"``.
    data:
        Free-form payload (kept small; values should be scalars/strings).
    """

    time: float
    kind: str
    data: Dict[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only stream of :class:`LogEvent` with query helpers.

    Logging can be disabled (``enabled=False``) for long benchmark runs;
    in that state :meth:`emit` is a cheap no-op.

    A ``capacity`` turns the log into a ring buffer holding the **most
    recent** events: once full, each new emission evicts the oldest
    event and increments :attr:`dropped`.  (Earlier versions dropped
    the *newest* events instead, silently losing the run's tail — the
    part the figure experiments and steal-locality tests assert on.)
    """

    def __init__(self, enabled: bool = True, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self._capacity = capacity
        self._events: Deque[LogEvent] = deque(maxlen=capacity)
        self._dropped = 0

    def emit(self, time: float, kind: str, **data: Any) -> None:
        """Record an event (evicting the oldest when at capacity)."""
        if not self.enabled:
            return
        if self._capacity is not None and len(self._events) == self._capacity:
            self._dropped += 1  # the deque's maxlen evicts the oldest
        self._events.append(LogEvent(time=time, kind=kind, data=data))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[LogEvent]:
        return iter(self._events)

    @property
    def dropped(self) -> int:
        """Number of (oldest) events evicted to stay within capacity."""
        return self._dropped

    def of_kind(self, kind: str) -> List[LogEvent]:
        """All events with the given ``kind``, in emission order."""
        return [e for e in self._events if e.kind == kind]

    def count(self, kind: str) -> int:
        """Number of events with the given ``kind``."""
        return sum(1 for e in self._events if e.kind == kind)

    def where(self, predicate: Callable[[LogEvent], bool]) -> List[LogEvent]:
        """All events satisfying ``predicate``."""
        return [e for e in self._events if predicate(e)]

    def clear(self) -> None:
        """Drop all recorded events (the drop counter is reset too)."""
        self._events.clear()
        self._dropped = 0
