"""Deterministic random-number streams for reproducible simulations.

Every stochastic component of the simulator (workload phase changes,
Credit-scheduler tie breaking, BRM's bias-random migration, service
request jitter) draws from its own named stream so that adding a new
consumer never perturbs the draws seen by existing ones.  This is the
standard "stream-per-subsystem" discipline used by discrete-event
simulators to keep paired experiments (same seed, different scheduler)
comparable.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["derive_seed", "RngStreams"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 over the pair so that (a) distinct names give
    independent-looking seeds and (b) the mapping is stable across runs,
    Python versions and platforms (unlike ``hash()``).

    Parameters
    ----------
    root_seed:
        The experiment-level seed.
    name:
        Stream identifier, e.g. ``"credit.balance"``.

    Returns
    -------
    int
        A 63-bit non-negative seed.
    """
    payload = f"{root_seed}:{name}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "little") & 0x7FFF_FFFF_FFFF_FFFF


class RngStreams:
    """A registry of named, independently seeded NumPy generators.

    Examples
    --------
    >>> streams = RngStreams(seed=42)
    >>> g1 = streams.get("workload.phases")
    >>> g2 = streams.get("credit.balance")
    >>> g1 is streams.get("workload.phases")
    True
    >>> g1 is g2
    False
    """

    def __init__(self, seed: int = 0) -> None:
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        if not name:
            raise ValueError("stream name must be non-empty")
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self._seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RngStreams":
        """Create a child registry rooted at a derived seed.

        Useful when an experiment runs several independent trials: each
        trial gets its own registry, so per-trial streams stay aligned
        across scheduler variants.
        """
        return RngStreams(derive_seed(self._seed, f"spawn:{name}"))

    def names(self) -> list[str]:
        """Names of streams created so far (sorted for determinism)."""
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStreams(seed={self._seed}, streams={len(self._streams)})"
