"""Structure-of-arrays fast path for the epoch engine.

The reference implementation in :mod:`repro.xen.simulator` prices every
epoch through per-VCPU dictionaries (demands, rates, traffic, penalties,
page mixes) and rescans all VCPUs for wakeups, phase changes and finite
completion.  That is the clearest possible statement of the model — and
the hot path of every experiment, so :class:`VectorEngine` re-implements
it with flat arrays keyed by VCPU index, cached invariants and event
heaps.

**The contract is bitwise equality**: for any scenario and seed, a run
through the vector engine produces exactly the same simulated results
(finish times, counter values, migration counts, overhead) as the
reference loop.  Four rules keep that true:

* elementwise float64 arithmetic (``+ - * /``) produces identical bits
  whether it runs through numpy ufuncs or Python scalars, so each
  per-VCPU expression may use whichever is faster at the machine's
  scale — but *reductions* may not be reordered: every ordered
  accumulation (IMC/QPI traffic, per-miss penalties, busy time) stays
  a sequential loop in exactly the reference's order;
* every cached invariant (``refs_per_instruction * intensity_multiplier``,
  the memoised :class:`CacheDemand`, the LLC warmth charge factor, the
  first-touch drift per epoch, the waterfilled LLC shares) depends only
  on the profile, the phase multipliers and the co-runner set, so it is
  invalidated precisely when :meth:`VcpuWorkload.maybe_phase_change`
  fires (a generation counter) or the running set changes;
* heap-driven wake and phase processing replays due events in VCPU-key
  order — the order the reference scans ``machine.vcpus`` — because
  wake handling mutates shared queue and RNG state;
* state *transitions* (done/block, context-switch hooks, overhead
  charges) happen in the reference's per-VCPU order even though the
  arithmetic before them is batched.

The engine holds only *derived* state; all simulation state lives in
the machine's VCPUs, workloads and hardware models.  Rebuilding the
engine from a live machine (``Machine.add_domain`` invalidates it) is
therefore lossless.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.hardware.cache import CacheDemand, LLCState
from repro.hardware.memory import BYTES_PER_MISS
from repro.xen.vcpu import Vcpu, VcpuState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["VectorEngine"]


class _Gather:
    """Per-running-set arrays, valid while the set and phases hold.

    A VCPU→PCPU assignment typically survives a whole 30 ms slice
    (dozens of epochs), so everything derivable from *which* VCPUs run
    *where* — profile constants, per-node co-runner groups, waterfilled
    LLC shares, page-mix gather indices — is built once per assignment
    and reused until the assignment or a phase generation changes.
    """

    __slots__ = (
        "keys",
        "node_of",
        "rpi",
        "cpi_base",
        "mlp",
        "clock",
        "ns2c",
        "drift",
        "totals",
        "conc_col",
        "anti_conc_col",
        "conc_l",
        "anti_l",
        "mix_row_src",
        "mix_over_src",
        "pmu_rows",
        "node_members",
        "node_member_sets",
        "node_charge",
        "node_positions",
        "node_solve",
        "mix_groups",
    )

    def __init__(self, engine: "VectorEngine", pcpus, vcpus, k: int) -> None:
        keys = [v.key for v in vcpus]
        node_of = [p.node for p in pcpus]
        self.keys = keys
        self.node_of = node_of
        self.rpi = [engine.rpi[key] for key in keys]
        self.cpi_base = [engine.cpi_base[key] for key in keys]
        self.mlp = [engine.mlp[key] for key in keys]
        self.clock = [engine.node_clock[n] for n in node_of]
        self.ns2c = [engine.node_ns2c[n] for n in node_of]
        self.drift = [engine.drift_amount[key] for key in keys]
        self.totals = [
            v.workload.profile.total_instructions for v in vcpus
        ]

        # Sub-memoised pieces: many distinct global signatures (the
        # per-PCPU queue rotations multiply) share the same per-node
        # co-runner sets, concentration columns, page-mix groups and
        # PMU rows, so those live in engine-level caches.
        keys_t = tuple(keys)
        cols = engine._conc_cache.get(keys_t)
        if cols is None:
            conc_l = [engine.conc[key] for key in keys]
            conc = np.array(conc_l)
            # (1.0 - concentration), elementwise — identical bits to
            # the scalar subtraction in MemoryPlacement.page_mix.
            cols = (
                conc[:, None],
                (1.0 - conc)[:, None],
                conc_l,
                [1.0 - c for c in conc_l],
            )
            engine._conc_cache[keys_t] = cols
        self.conc_col, self.anti_conc_col, self.conc_l, self.anti_l = cols

        rows = engine._pmu_rows_cache.get(keys_t)
        if rows is None:
            rows = engine.machine.pmu.rows_for(keys)
            engine._pmu_rows_cache[keys_t] = rows
        self.pmu_rows = rows

        # Per-node co-runner groups, sorted by key (the order the
        # reference's sorted(demands) solve iterates).  The waterfilled
        # allocations depend only on capacity and demands — not warmth —
        # so they are computed once per co-runner set, along with the
        # flattened miss-rate-curve scalars the per-epoch loop reads.
        num_nodes = len(engine.node_clock)
        index_of = {key: i for i, key in enumerate(keys)}
        members: List[List[int]] = [[] for _ in range(num_nodes)]
        for i in range(k):
            members[node_of[i]].append(keys[i])
        for m in members:
            m.sort()
        self.node_members = members
        self.node_positions = [
            [index_of[key] for key in m] for m in members
        ]
        self.node_member_sets = []
        self.node_charge = []
        self.node_solve = []
        caches = engine.machine.caches
        for node in range(num_nodes):
            m = members[node]
            node_key = (node, tuple(m))
            entry = engine._node_cache.get(node_key)
            if entry is None:
                demands = [engine.demand[key] for key in m]
                entry = (
                    frozenset(m),
                    [engine.charge_factor[key] for key in m],
                    (
                        caches[node].occupancy_shares(demands),
                        [d.working_set_bytes for d in demands],
                        [d.min_miss_rate for d in demands],
                        [d.max_miss_rate - d.min_miss_rate for d in demands],
                        [d.curve_shape for d in demands],
                    ),
                )
                engine._node_cache[node_key] = entry
            self.node_member_sets.append(entry[0])
            self.node_charge.append(entry[1])
            self.node_solve.append(entry[2])

        # Page-mix gather plan.  Dual-socket machines get direct
        # references to each VCPU's placement-mirror row (stable list
        # objects, see MemoryPlacement); other topologies group VCPUs
        # by placement object so each group's slice rows load with one
        # fancy index.
        plan = engine._mix_cache.get(keys_t)
        if plan is None:
            if engine.two_node:
                row_src = []
                over_src = []
                for vcpu in vcpus:
                    placement = vcpu.domain.placement
                    row_src.append(placement._rows2[vcpu.workload.slice_id])
                    over_src.append(placement._over2)
                plan = (None, row_src, over_src)
            else:
                by_placement: Dict[int, Tuple[object, List[int], List[int]]] = {}
                for i in range(k):
                    vcpu = vcpus[i]
                    placement = vcpu.domain.placement
                    group = by_placement.get(id(placement))
                    if group is None:
                        group = (placement, [], [])
                        by_placement[id(placement)] = group
                    group[1].append(vcpu.workload.slice_id)
                    group[2].append(i)
                groups = [
                    (placement, np.array(slices), np.array(positions))
                    for placement, slices, positions in by_placement.values()
                ]
                plan = (groups, None, None)
            engine._mix_cache[keys_t] = plan
        self.mix_groups, self.mix_row_src, self.mix_over_src = plan


class VectorEngine:
    """Vectorized epoch engine bound to one :class:`Machine`.

    Built lazily on the first stepped epoch and discarded whenever the
    machine's VCPU population changes; construction scans the live
    machine state once, after which per-epoch work touches only the
    VCPUs that are actually running, waking or changing phase.
    """

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.epoch = machine.config.epoch_s
        topo = machine.topology
        vcpus = machine.vcpus

        # Per-node constants.  ``ns_to_cycles`` is precomputed exactly as
        # the reference evaluates it (clock_hz * 1e-9).
        self.node_clock: List[float] = [node.clock_hz for node in topo.nodes]
        self.node_ns2c: List[float] = [c * 1e-9 for c in self.node_clock]
        self.two_node = topo.num_nodes == 2

        # Per-VCPU invariants, keyed by VCPU key.  Profile constants are
        # immutable; the phase-dependent ones (rpi, demand, warmth
        # charge) are refreshed by refresh_vcpu() on phase change.
        n = len(vcpus)
        self.cpi_base: List[float] = [v.workload.profile.cpi_base for v in vcpus]
        self.mlp: List[float] = [v.workload.profile.mlp for v in vcpus]
        self.conc: List[float] = [
            v.workload.profile.slice_concentration for v in vcpus
        ]
        self.drift_amount: List[float] = [
            min(1.0, v.workload.profile.touch_rate * self.epoch) for v in vcpus
        ]
        self.rpi: List[float] = [0.0] * n
        self.demand: List[Optional[CacheDemand]] = [None] * n
        self.charge_factor: List[float] = [1.0] * n
        self._generation = 0
        # Cached per-running-set gathers (see _Gather).  Assignments
        # recur as queues rotate, so gathers are memoised by signature;
        # the phase generation is part of the signature, and the cache
        # is flushed on phase change to drop the stale entries.
        self._gather: Optional[_Gather] = None
        self._gather_sig: Optional[Tuple] = None
        self._gather_cache: Dict[Tuple, _Gather] = {}
        # Sub-memos shared across gathers.  The first two depend only on
        # immutable profile/topology facts; the last two are phase-
        # dependent and flushed alongside the gather cache.
        self._conc_cache: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._pmu_rows_cache: Dict[Tuple, np.ndarray] = {}
        self._node_cache: Dict[Tuple, Tuple] = {}
        self._mix_cache: Dict[Tuple, List] = {}
        for vcpu in vcpus:
            self.refresh_vcpu(vcpu)

        # Live per-node warmth tables (stable dict objects) and bound
        # per-LLC advance methods (skips the CacheModel hop per epoch).
        self._warmth_tables = [
            cache.state.warmth_table for cache in machine.caches
        ]
        self._cache_advance = [
            cache.state.advance_compact for cache in machine.caches
        ]

        # Reusable page-mix gather buffers, sliced to the running count.
        num_pcpus = len(machine.pcpus)
        num_nodes = len(self.node_clock)
        self._rows_buf = np.empty((num_pcpus, num_nodes))
        self._over_buf = np.empty((num_pcpus, num_nodes))

        # Wake-time min-heap replacing the all-VCPU step-2 scan.  Lazy
        # invalidation: entries are validated against live VCPU state at
        # pop time.  Every BLOCKED-with-finite-wake VCPU has an entry.
        self.wake_heap: List[Tuple[float, int]] = [
            (v.wake_time, v.key)
            for v in vcpus
            if v.state is VcpuState.BLOCKED and math.isfinite(v.wake_time)
        ]
        heapq.heapify(self.wake_heap)

        # Phase-change min-heap replacing the per-epoch phase scan.
        self.phase_heap: List[Tuple[float, int]] = [
            (v.workload.next_phase_change, v.key)
            for v in vcpus
            if v.workload.active
            and not v.workload.done
            and v.workload.profile.phase is not None
            and math.isfinite(v.workload.next_phase_change)
        ]
        heapq.heapify(self.phase_heap)

        # Finite-work countdown replacing the _all_finite_done rescan.
        finite = [
            w
            for d in machine.domains
            for w in d.workloads
            if w.active and w.profile.is_finite
        ]
        self.has_finite = bool(finite)
        self.finite_remaining = sum(1 for w in finite if not w.done)

    # ------------------------------------------------------------------
    # Invariant maintenance
    # ------------------------------------------------------------------
    def refresh_vcpu(self, vcpu: Vcpu) -> None:
        """Recompute phase-dependent invariants after a phase change."""
        w = vcpu.workload
        key = vcpu.key
        self.rpi[key] = w.profile.refs_per_instruction * w.intensity_multiplier
        demand = w.cache_demand()
        self.demand[key] = demand
        tau = max(1e-4, demand.working_set_bytes / LLCState.FILL_BANDWIDTH)
        self.charge_factor[key] = math.exp(-self.epoch / tau)
        self._generation += 1
        self._gather_cache.clear()
        self._node_cache.clear()
        self._mix_cache.clear()

    # ------------------------------------------------------------------
    # Event-driven scans
    # ------------------------------------------------------------------
    def pop_due_wakes(self, now: float) -> List[Vcpu]:
        """Due wakeups, in VCPU-key order (the reference scan order)."""
        heap = self.wake_heap
        if not heap or heap[0][0] > now:
            return []
        vcpus = self.machine.vcpus
        due: List[Vcpu] = []
        seen: Set[int] = set()
        while heap and heap[0][0] <= now:
            _, key = heapq.heappop(heap)
            vcpu = vcpus[key]
            if (
                key not in seen
                and vcpu.state is VcpuState.BLOCKED
                and vcpu.wake_time <= now
            ):
                seen.add(key)
                due.append(vcpu)
        due.sort(key=lambda v: v.key)
        return due

    def push_wake(self, vcpu: Vcpu) -> None:
        """Track a VCPU that just blocked with a finite wake time."""
        if math.isfinite(vcpu.wake_time):
            heapq.heappush(self.wake_heap, (vcpu.wake_time, vcpu.key))

    def apply_phase_changes(self, end: float) -> None:
        """Apply all phase changes due by ``end``, in VCPU-key order."""
        heap = self.phase_heap
        if not heap or heap[0][0] > end:
            return
        machine = self.machine
        vcpus = machine.vcpus
        due: Set[int] = set()
        while heap and heap[0][0] <= end:
            _, key = heapq.heappop(heap)
            w = vcpus[key].workload
            # A finished or stale entry is simply dropped; live entries
            # always carry the workload's current next_phase_change.
            if w.active and not w.done and w.next_phase_change <= end:
                due.add(key)
        for key in sorted(due):
            vcpu = vcpus[key]
            w = vcpu.workload
            if w.maybe_phase_change(end):
                machine.log.emit(
                    end, "phase_change", vcpu=vcpu.name, slice=w.slice_id
                )
                self.refresh_vcpu(vcpu)
                nxt = w.next_phase_change
                if math.isfinite(nxt):
                    heapq.heappush(heap, (nxt, key))

    def all_finite_done(self) -> bool:
        """Countdown equivalent of ``Machine._all_finite_done``."""
        return self.has_finite and self.finite_remaining == 0

    # ------------------------------------------------------------------
    # Contention + progress (the vectorized _advance_running)
    # ------------------------------------------------------------------
    def advance_running(self, now: float, epoch: float) -> None:
        machine = self.machine

        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                running_pcpus.append(pcpu)
                running_vcpus.append(cur)
                sig_keys.append(cur.key)
                sig_pids.append(pcpu.pcpu_id)
        k = len(running_vcpus)
        if k == 0:
            # Nothing ran: warmth still decays on every LLC.
            for advance in self._cache_advance:
                advance(epoch, (), ())
            return

        # Look up (or build) the per-assignment gather.
        sig = (self._generation, tuple(sig_keys), tuple(sig_pids))
        if sig != self._gather_sig:
            cache = self._gather_cache
            gather = cache.get(sig)
            if gather is None:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig] = gather
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather

        # Per-LLC miss rates from the cached waterfill shares and the
        # current warmth (the only per-epoch input).  This is
        # CacheModel.miss_rates_from_shares unrolled over the gather's
        # flattened curve scalars — the op sequence per VCPU is exactly
        # CacheDemand.miss_rate's.
        miss = [0.0] * k
        for node_id, members in enumerate(gather.node_members):
            if not members:
                continue
            warmth = self._warmth_tables[node_id]
            positions = gather.node_positions[node_id]
            allocs, ws_l, minmr_l, span_l, shape_l = gather.node_solve[node_id]
            for j in range(len(members)):
                ws = ws_l[j]
                if ws <= 0:
                    f = 1.0
                else:
                    # In [0, 1] by construction (warmth and the capped
                    # share both are), so miss_rate's clamp is a no-op.
                    f = min(1.0, allocs[j] / ws) * warmth.get(members[j], 0.0)
                shape = shape_l[j]
                missing = 1.0 - f if shape == 1.0 else (1.0 - f) ** shape
                miss[positions[j]] = minmr_l[j] + span_l[j] * missing

        # Page mixes: each row is the reference's Domain.page_mix_for
        # (concentration blend, then row-normalise).
        mix = None
        if gather.mix_row_src is not None:
            # Dual-socket: scalar blend straight off the placement
            # mirrors — the same elementwise ops as the ufunc path,
            # without touching the (lazily synced) ndarrays.
            conc_l = gather.conc_l
            anti_l = gather.anti_l
            row_src = gather.mix_row_src
            over_src = gather.mix_over_src
            mix_rows = [None] * k
            for i in range(k):
                c = conc_l[i]
                a = anti_l[i]
                row = row_src[i]
                over = over_src[i]
                m0 = c * row[0] + a * over[0]
                m1 = c * row[1] + a * over[1]
                s = m0 + m1
                mix_rows[i] = [m0 / s, m1 / s]
        else:
            rows = self._rows_buf[:k]
            over = self._over_buf[:k]
            for placement, slices, positions in gather.mix_groups:
                rows[positions] = placement.matrix[slices]
                over[positions] = placement.overall
            mix = gather.conc_col * rows + gather.anti_conc_col * over
            mix /= mix.sum(axis=1)[:, None]
            mix_rows = mix.tolist()

        # Fixed point: rates -> traffic -> queueing -> rates.  Scalar
        # float64 expressions in the reference's exact op order; at the
        # machine's scale (co-runners == PCPUs) this beats ufunc
        # dispatch while producing identical bits.
        lat = machine.config.latency
        hit_ns = lat.llc_hit_ns
        node_of = gather.node_of
        rpi = gather.rpi
        cpi_base = gather.cpi_base
        mlp = gather.mlp
        clock = gather.clock
        ns2c = gather.ns2c
        penalty = [lat.local_dram_ns] * k
        rates = [0.0] * k
        traffic = [0.0] * k
        for _ in range(machine.config.contention_iterations - 1):
            for i in range(k):
                mr = miss[i]
                per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
                stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
                rate = clock[i] / (cpi_base[i] + stall)
                rates[i] = rate
                traffic[i] = rate * rpi[i] * mr * BYTES_PER_MISS
            penalty = machine.memsys.solve_compact(traffic, node_of, mix_rows)
        # Last iteration: the reference recomputes rates and then makes
        # one more (pure, side-effect-free) solve call whose result it
        # discards — so only the rates are computed here.
        for i in range(k):
            mr = miss[i]
            per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
            stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
            rates[i] = clock[i] / (cpi_base[i] + stall)

        # Progress pass 1: instruction budgets in PCPU order (overhead
        # consumption and busy-time accumulation are ordered effects).
        totals = gather.totals
        instructions = [0.0] * k
        refs = [0.0] * k
        misses = [0.0] * k
        for i in range(k):
            pcpu = running_pcpus[i]
            # Inlined Pcpu.consume_overhead with an overhead-free fast
            # path (identical arithmetic when overhead is pending).
            pending = pcpu.overhead_pending_s
            if pending > 0.0:
                used = pending if pending < epoch else epoch
                pcpu.overhead_pending_s = pending - used
                compute = epoch - used
            else:
                compute = epoch
            pcpu.busy_time_s += epoch
            machine.busy_time_s += epoch
            done = rates[i] * compute
            total = totals[i]
            if total is not None:
                remaining = total - running_vcpus[i].workload.instructions_done
                if remaining < 0.0:
                    remaining = 0.0
                if remaining < done:
                    done = remaining
            instructions[i] = done
            r = done * rpi[i]
            refs[i] = r
            misses[i] = r * miss[i]

        # PMU charges, batched: the access matrix is elementwise
        # (misses x page mix), the per-bank accumulation stays ordered.
        if mix is None:
            accesses = [
                [misses[i] * mix_rows[i][0], misses[i] * mix_rows[i][1]]
                for i in range(k)
            ]
        else:
            accesses = np.array(misses)[:, None] * mix
        machine.pmu.charge_epoch(
            gather.keys,
            instructions,
            refs,
            misses,
            accesses,
            node_of,
            rows=gather.pmu_rows,
        )

        # Progress pass 2: retire work, drift placement, handle
        # completion and blocking (same order, same transitions).
        end = now + epoch
        policy = machine.policy
        log = machine.log
        drift = gather.drift
        for i in range(k):
            pcpu = running_pcpus[i]
            vcpu = running_vcpus[i]
            w = vcpu.workload
            w.instructions_done += instructions[i]
            vcpu.slice_used_s += epoch
            vcpu.run_burst_remaining_s -= epoch

            if drift[i] > 0:
                vcpu.domain.placement.drift_slice_fast(
                    w.slice_id, pcpu.node, drift[i]
                )

            total = totals[i]
            if total is not None and w.instructions_done >= total:
                vcpu.mark_done(end)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                vcpu.block_until(end + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # LLC warmth: charge running sets, decay everyone else, using
        # the per-VCPU charge factors cached at phase boundaries.
        for node_id, members in enumerate(gather.node_members):
            self._cache_advance[node_id](
                epoch,
                members,
                gather.node_charge[node_id],
                gather.node_member_sets[node_id],
            )
