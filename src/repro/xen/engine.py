"""Structure-of-arrays fast path for the epoch engine.

The reference implementation in :mod:`repro.xen.simulator` prices every
epoch through per-VCPU dictionaries (demands, rates, traffic, penalties,
page mixes) and rescans all VCPUs for wakeups, phase changes and finite
completion.  That is the clearest possible statement of the model — and
the hot path of every experiment, so :class:`VectorEngine` re-implements
it with flat arrays keyed by VCPU index, cached invariants and event
heaps.

**The contract is bitwise equality**: for any scenario and seed, a run
through the vector engine produces exactly the same simulated results
(finish times, counter values, migration counts, overhead) as the
reference loop.  Four rules keep that true:

* elementwise float64 arithmetic (``+ - * /``) produces identical bits
  whether it runs through numpy ufuncs or Python scalars, so each
  per-VCPU expression may use whichever is faster at the machine's
  scale — but *reductions* may not be reordered: every ordered
  accumulation (IMC/QPI traffic, per-miss penalties, busy time) stays
  a sequential loop in exactly the reference's order;
* every cached invariant (``refs_per_instruction * intensity_multiplier``,
  the memoised :class:`CacheDemand`, the LLC warmth charge factor, the
  first-touch drift per epoch, the waterfilled LLC shares) depends only
  on the profile, the phase multipliers and the co-runner set, so it is
  invalidated precisely when :meth:`VcpuWorkload.maybe_phase_change`
  fires (a generation counter) or the running set changes;
* heap-driven wake and phase processing replays due events in VCPU-key
  order — the order the reference scans ``machine.vcpus`` — because
  wake handling mutates shared queue and RNG state;
* state *transitions* (done/block, context-switch hooks, overhead
  charges) happen in the reference's per-VCPU order even though the
  arithmetic before them is batched.

The engine holds only *derived* state; all simulation state lives in
the machine's VCPUs, workloads and hardware models.  Rebuilding the
engine from a live machine (``Machine.add_domain`` invalidates it) is
therefore lossless.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.hardware.cache import CacheDemand, LLCState
from repro.hardware.memory import BYTES_PER_MISS
from repro.xen.vcpu import Vcpu, VcpuState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["VectorEngine", "BatchedEngine"]


class _KeyArrays:
    """Key-indexed ndarray mirrors of the engine's per-VCPU constants.

    Rebuilt lazily once per phase generation so `_BatchInvariants` can
    assemble its per-assignment vectors with a handful of fancy-index
    gathers instead of per-element Python loops.  Fancy indexing copies
    the exact float64 bits, so everything read from here is bitwise
    identical to the scalar lists it mirrors.
    """

    __slots__ = (
        "rpi", "cpi", "mlp", "conc", "anti", "drift", "keep",
        "clock", "ns2c", "packed", "node_packed",
    )

    def __init__(self, engine: "VectorEngine") -> None:
        n = len(engine.rpi)
        # Packed (7, n) mirror: one fancy index gathers every per-VCPU
        # constant a batch build needs.  Row views alias the packed
        # storage, so the named arrays stay available.
        packed = np.empty((7, n))
        packed[0] = engine.rpi
        packed[1] = engine.cpi_base
        packed[2] = engine.mlp
        packed[3] = engine.conc
        # Elementwise (1.0 - x): identical bits to the scalar form.
        np.subtract(1.0, packed[3], out=packed[4])
        packed[5] = engine.drift_amount
        np.subtract(1.0, packed[5], out=packed[6])
        self.packed = packed
        self.rpi = packed[0]
        self.cpi = packed[1]
        self.mlp = packed[2]
        self.conc = packed[3]
        self.anti = packed[4]
        self.drift = packed[5]
        self.keep = packed[6]
        node_packed = np.empty((2, len(engine.node_clock)))
        node_packed[0] = engine.node_clock
        node_packed[1] = engine.node_ns2c
        self.node_packed = node_packed
        self.clock = node_packed[0]
        self.ns2c = node_packed[1]


class _Gather:
    """Per-running-set arrays, valid while the set and phases hold.

    A VCPU→PCPU assignment typically survives a whole 30 ms slice
    (dozens of epochs), so everything derivable from *which* VCPUs run
    *where* — profile constants, per-node co-runner groups, waterfilled
    LLC shares, page-mix gather indices — is built once per assignment
    and reused until the assignment or a phase generation changes.
    """

    __slots__ = (
        "keys",
        "node_of",
        "rpi",
        "cpi_base",
        "mlp",
        "clock",
        "ns2c",
        "drift",
        "totals",
        "conc_col",
        "anti_conc_col",
        "conc_l",
        "anti_l",
        "mix_row_src",
        "mix_over_src",
        "pmu_rows",
        "pmu_banks",
        "node_members",
        "node_member_sets",
        "node_charge",
        "node_positions",
        "node_solve",
        "node_batch",
        "node_miss_tuples",
        "mix_groups",
        "binv",
        "fused",
    )

    def __init__(self, engine: "VectorEngine", pcpus, vcpus, k: int) -> None:
        keys = [v.key for v in vcpus]
        node_of = [p.node for p in pcpus]
        self.keys = keys
        self.node_of = node_of
        self.rpi = [engine.rpi[key] for key in keys]
        self.cpi_base = [engine.cpi_base[key] for key in keys]
        self.mlp = [engine.mlp[key] for key in keys]
        self.clock = [engine.node_clock[n] for n in node_of]
        self.ns2c = [engine.node_ns2c[n] for n in node_of]
        self.drift = [engine.drift_amount[key] for key in keys]
        self.totals = [engine.total_instr[key] for key in keys]

        # Concentration scalars; (1.0 - c) is identical bits to the
        # scalar subtraction in MemoryPlacement.page_mix.  The column
        # vectors only feed the multi-node ufunc mix path, so the
        # dual-socket fast path skips building them.
        conc_l = [engine.conc[key] for key in keys]
        self.conc_l = conc_l
        self.anti_l = [1.0 - c for c in conc_l]
        if engine.two_node:
            self.conc_col = None
            self.anti_conc_col = None
        else:
            conc = np.array(conc_l)
            self.conc_col = conc[:, None]
            self.anti_conc_col = (1.0 - conc)[:, None]

        pmu = engine.machine.pmu
        self.pmu_rows = pmu.rows_for(keys)
        self.pmu_banks = pmu.banks_for(keys)

        # Per-node co-runner groups, sorted by key (the order the
        # reference's sorted(demands) solve iterates).  The waterfilled
        # allocations depend only on capacity and demands — not warmth —
        # so they are computed once per co-runner set, along with the
        # flattened miss-rate-curve scalars the per-epoch loop reads.
        num_nodes = len(engine.node_clock)
        index_of = {key: i for i, key in enumerate(keys)}
        members: List[List[int]] = [[] for _ in range(num_nodes)]
        for i in range(k):
            members[node_of[i]].append(keys[i])
        for m in members:
            m.sort()
        self.node_members = members
        self.node_positions = [
            [index_of[key] for key in m] for m in members
        ]
        self.node_member_sets = []
        self.node_charge = []
        self.node_solve = []
        self.node_batch = []
        self.node_miss_tuples = []
        caches = engine.machine.caches
        for node in range(num_nodes):
            m = members[node]
            node_key = (node, tuple(m))
            entry = engine._node_cache.get(node_key)
            if entry is None:
                demands = [engine.demand[key] for key in m]
                charge_l = [engine.charge_factor[key] for key in m]
                allocs = caches[node].occupancy_shares(demands)
                ws_l = [d.working_set_bytes for d in demands]
                minmr_l = [d.min_miss_rate for d in demands]
                span_l = [d.max_miss_rate - d.min_miss_rate for d in demands]
                shape_l = [d.curve_shape for d in demands]
                # Batch-kernel constants, member-ordered.  The capped
                # share `min(1.0, alloc / ws)` is exactly the scalar the
                # reference recomputes every epoch — same inputs, same
                # float — so it is safe to freeze per co-runner set.
                share_l = [
                    min(1.0, allocs[j] / ws_l[j]) if ws_l[j] > 0 else 0.0
                    for j in range(len(m))
                ]
                entry = (
                    frozenset(m),
                    charge_l,
                    (allocs, ws_l, minmr_l, span_l, shape_l),
                    (
                        np.array([share_l, minmr_l, span_l, charge_l]),
                        tuple(j for j, ws in enumerate(ws_l) if ws <= 0),
                        tuple(
                            (j, s) for j, s in enumerate(shape_l) if s != 1.0
                        ),
                    ),
                    # Member-ordered miss-curve tuples for the fused
                    # replay plan: (share, minmr, span, shape, ws<=0).
                    [
                        (
                            share_l[j],
                            minmr_l[j],
                            span_l[j],
                            shape_l[j],
                            ws_l[j] <= 0,
                        )
                        for j in range(len(m))
                    ],
                )
                engine._node_cache[node_key] = entry
            self.node_member_sets.append(entry[0])
            self.node_charge.append(entry[1])
            self.node_solve.append(entry[2])
            self.node_batch.append(entry[3])
            self.node_miss_tuples.append(entry[4])

        # Page-mix gather plan.  Dual-socket machines get direct
        # references to each VCPU's placement-mirror row (stable list
        # objects, see MemoryPlacement); other topologies group VCPUs
        # by placement object so each group's slice rows load with one
        # fancy index.
        if engine.two_node:
            row2 = engine.mix_row2
            self.mix_groups = None
            self.mix_row_src = [row2[key] for key in keys]
            over2 = engine.mix_over2
            self.mix_over_src = [over2[key] for key in keys]
        else:
            by_placement: Dict[int, Tuple[object, List[int], List[int]]] = {}
            placement_of = engine.placement_of
            for i in range(k):
                vcpu = vcpus[i]
                placement = placement_of[keys[i]]
                group = by_placement.get(id(placement))
                if group is None:
                    group = (placement, [], [])
                    by_placement[id(placement)] = group
                group[1].append(vcpu.workload.slice_id)
                group[2].append(i)
            self.mix_groups = [
                (placement, np.array(slices), np.array(positions))
                for placement, slices, positions in by_placement.values()
            ]
            self.mix_row_src = None
            self.mix_over_src = None
        #: lazily-built macro-step constants (see _BatchInvariants);
        #: sharing the gather's cache slot keeps one memo per signature.
        self.binv = None
        #: lazily-built fused-replay plan (see
        #: BatchedEngine._build_fused_plan) — every structure the scalar
        #: replay needs that depends only on the assignment, not on the
        #: evolving warmth/progress state.
        self.fused = None


class VectorEngine:
    """Vectorized epoch engine bound to one :class:`Machine`.

    Built lazily on the first stepped epoch and discarded whenever the
    machine's VCPU population changes; construction scans the live
    machine state once, after which per-epoch work touches only the
    VCPUs that are actually running, waking or changing phase.
    """

    #: True on engines that implement compute_horizon/advance_batch;
    #: the stepper consults it before attempting a macro-step.
    supports_batch = False

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.epoch = machine.config.epoch_s
        topo = machine.topology
        vcpus = machine.vcpus

        # Per-node constants.  ``ns_to_cycles`` is precomputed exactly as
        # the reference evaluates it (clock_hz * 1e-9).
        self.node_clock: List[float] = [node.clock_hz for node in topo.nodes]
        self.node_ns2c: List[float] = [c * 1e-9 for c in self.node_clock]
        self.two_node = topo.num_nodes == 2

        # Per-VCPU invariants, keyed by VCPU key.  Profile constants are
        # immutable; the phase-dependent ones (rpi, demand, warmth
        # charge) are refreshed by refresh_vcpu() on phase change.
        n = len(vcpus)
        self.cpi_base: List[float] = [v.workload.profile.cpi_base for v in vcpus]
        self.mlp: List[float] = [v.workload.profile.mlp for v in vcpus]
        self.conc: List[float] = [
            v.workload.profile.slice_concentration for v in vcpus
        ]
        self.drift_amount: List[float] = [
            min(1.0, v.workload.profile.touch_rate * self.epoch) for v in vcpus
        ]
        self.rpi: List[float] = [0.0] * n
        self.demand: List[Optional[CacheDemand]] = [None] * n
        self.charge_factor: List[float] = [1.0] * n
        self.total_instr: List[float] = [0.0] * n
        # Per-key placement mirrors (refreshed with the phase, since the
        # active slice moves with it).  Placement objects are fixed after
        # machine setup and the dual-socket row/overall mirrors are
        # stable list objects, so gather builds reduce to indexed loads.
        self.placement_of: List[object] = [None] * n
        self.mix_row2: List[Optional[list]] = [None] * n
        self.mix_over2: List[Optional[list]] = [None] * n
        self._generation = 0
        #: per-key phase generation: bumped by refresh_vcpu(), woven
        #: into the gather signature so a phase change invalidates only
        #: the cached assignments that include the changed VCPU —
        #: everyone else's memos survive.
        self.key_gen: List[int] = [0] * n
        # Cached per-running-set gathers (see _Gather).  Assignments
        # recur as queues rotate, so gathers are memoised by
        # (keys, pcpus) with the per-key generations stored alongside:
        # a phase change replaces the stale entry in place, so the dict
        # never grows past the number of distinct assignments (the size
        # cap is a safety valve only).
        self._gather: Optional[_Gather] = None
        self._gather_sig: Optional[Tuple] = None
        self._gather_cache: Dict[Tuple, Tuple[Tuple, _Gather]] = {}
        # Per-co-runner-set sub-memo shared across gathers (waterfill
        # shares recur as queues rotate).  Phase-dependent, so
        # refresh_vcpu() evicts entries mentioning the refreshed key.
        self._node_cache: Dict[Tuple, Tuple] = {}
        # ndarray mirrors of the per-key lists, rebuilt lazily when the
        # phase generation moves (see _KeyArrays / key_arrays()).
        self._key_arrays: Optional[_KeyArrays] = None
        self._key_arrays_gen = -1
        for vcpu in vcpus:
            self.refresh_vcpu(vcpu)

        # Live per-node warmth tables (stable dict objects) and bound
        # per-LLC advance methods (skips the CacheModel hop per epoch).
        self._warmth_tables = [
            cache.state.warmth_table for cache in machine.caches
        ]
        self._cache_advance = [
            cache.state.advance_compact for cache in machine.caches
        ]

        # Reusable page-mix gather buffers, sliced to the running count.
        num_pcpus = len(machine.pcpus)
        num_nodes = len(self.node_clock)
        self._rows_buf = np.empty((num_pcpus, num_nodes))
        self._over_buf = np.empty((num_pcpus, num_nodes))

        # Wake-time min-heap replacing the all-VCPU step-2 scan.  Lazy
        # invalidation: entries are validated against live VCPU state at
        # pop time.  Every BLOCKED-with-finite-wake VCPU has an entry.
        self.wake_heap: List[Tuple[float, int]] = [
            (v.wake_time, v.key)
            for v in vcpus
            if v.state is VcpuState.BLOCKED and math.isfinite(v.wake_time)
        ]
        heapq.heapify(self.wake_heap)

        # Phase-change min-heap replacing the per-epoch phase scan.
        self.phase_heap: List[Tuple[float, int]] = [
            (v.workload.next_phase_change, v.key)
            for v in vcpus
            if v.workload.active
            and not v.workload.done
            and v.workload.profile.phase is not None
            and math.isfinite(v.workload.next_phase_change)
        ]
        heapq.heapify(self.phase_heap)

        # Finite-work countdown replacing the _all_finite_done rescan.
        finite = [
            w
            for d in machine.domains
            for w in d.workloads
            if w.active and w.profile.is_finite
        ]
        self.has_finite = bool(finite)
        self.finite_remaining = sum(1 for w in finite if not w.done)

    # ------------------------------------------------------------------
    # Invariant maintenance
    # ------------------------------------------------------------------
    def refresh_vcpu(self, vcpu: Vcpu) -> None:
        """Recompute phase-dependent invariants after a phase change."""
        w = vcpu.workload
        key = vcpu.key
        self.rpi[key] = w.profile.refs_per_instruction * w.intensity_multiplier
        demand = w.cache_demand()
        self.demand[key] = demand
        tau = max(1e-4, demand.working_set_bytes / LLCState.FILL_BANDWIDTH)
        self.charge_factor[key] = math.exp(-self.epoch / tau)
        self.total_instr[key] = w.profile.total_instructions
        placement = vcpu.domain.placement
        self.placement_of[key] = placement
        if self.two_node:
            self.mix_row2[key] = placement._rows2[w.slice_id]
            self.mix_over2[key] = placement._over2
        self._generation += 1
        self.key_gen[key] += 1
        # Selective eviction: only memos that embed this key's phase-
        # dependent data (demand, charge factor, slice id) are stale.
        # Gather-cache entries mentioning the key become unreachable
        # through their per-key-generation signatures; the size cap
        # reclaims them.
        node_cache = self._node_cache
        for nk in [nk for nk in node_cache if key in nk[1]]:
            del node_cache[nk]

    def key_arrays(self) -> _KeyArrays:
        """Current-generation ndarray mirrors of the per-key constants."""
        if self._key_arrays_gen != self._generation:
            self._key_arrays = _KeyArrays(self)
            self._key_arrays_gen = self._generation
        return self._key_arrays

    # ------------------------------------------------------------------
    # Event-driven scans
    # ------------------------------------------------------------------
    def pop_due_wakes(self, now: float) -> List[Vcpu]:
        """Due wakeups, in VCPU-key order (the reference scan order)."""
        heap = self.wake_heap
        if not heap or heap[0][0] > now:
            return []
        vcpus = self.machine.vcpus
        due: List[Vcpu] = []
        seen: Set[int] = set()
        while heap and heap[0][0] <= now:
            _, key = heapq.heappop(heap)
            vcpu = vcpus[key]
            if (
                key not in seen
                and vcpu.state is VcpuState.BLOCKED
                and vcpu.wake_time <= now
            ):
                seen.add(key)
                due.append(vcpu)
        due.sort(key=lambda v: v.key)
        return due

    def push_wake(self, vcpu: Vcpu) -> None:
        """Track a VCPU that just blocked with a finite wake time."""
        if math.isfinite(vcpu.wake_time):
            heapq.heappush(self.wake_heap, (vcpu.wake_time, vcpu.key))

    def apply_phase_changes(self, end: float) -> None:
        """Apply all phase changes due by ``end``, in VCPU-key order."""
        heap = self.phase_heap
        if not heap or heap[0][0] > end:
            return
        machine = self.machine
        vcpus = machine.vcpus
        due: Set[int] = set()
        while heap and heap[0][0] <= end:
            _, key = heapq.heappop(heap)
            w = vcpus[key].workload
            # A finished or stale entry is simply dropped; live entries
            # always carry the workload's current next_phase_change.
            if w.active and not w.done and w.next_phase_change <= end:
                due.add(key)
        for key in sorted(due):
            vcpu = vcpus[key]
            w = vcpu.workload
            if w.maybe_phase_change(end):
                machine.log.emit(
                    end, "phase_change", vcpu=vcpu.name, slice=w.slice_id
                )
                self.refresh_vcpu(vcpu)
                nxt = w.next_phase_change
                if math.isfinite(nxt):
                    heapq.heappush(heap, (nxt, key))

    def all_finite_done(self) -> bool:
        """Countdown equivalent of ``Machine._all_finite_done``."""
        return self.has_finite and self.finite_remaining == 0

    # ------------------------------------------------------------------
    # Contention + progress (the vectorized _advance_running)
    # ------------------------------------------------------------------
    def advance_running(self, now: float, epoch: float) -> None:
        machine = self.machine

        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                running_pcpus.append(pcpu)
                running_vcpus.append(cur)
                sig_keys.append(cur.key)
                sig_pids.append(pcpu.pcpu_id)
        k = len(running_vcpus)
        if k == 0:
            # Nothing ran: warmth still decays on every LLC.
            for advance in self._cache_advance:
                advance(epoch, (), ())
            return

        # Look up (or build) the per-assignment gather.
        kg = self.key_gen
        sig_kp = (tuple(sig_keys), tuple(sig_pids))
        gens = tuple(kg[key] for key in sig_keys)
        sig = (sig_kp, gens)
        if sig != self._gather_sig:
            cache = self._gather_cache
            entry = cache.get(sig_kp)
            if entry is None or entry[0] != gens:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig_kp] = (gens, gather)
            else:
                gather = entry[1]
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather

        # Per-LLC miss rates from the cached waterfill shares and the
        # current warmth (the only per-epoch input).  This is
        # CacheModel.miss_rates_from_shares unrolled over the gather's
        # flattened curve scalars — the op sequence per VCPU is exactly
        # CacheDemand.miss_rate's.
        miss = [0.0] * k
        for node_id, members in enumerate(gather.node_members):
            if not members:
                continue
            warmth = self._warmth_tables[node_id]
            positions = gather.node_positions[node_id]
            allocs, ws_l, minmr_l, span_l, shape_l = gather.node_solve[node_id]
            for j in range(len(members)):
                ws = ws_l[j]
                if ws <= 0:
                    f = 1.0
                else:
                    # In [0, 1] by construction (warmth and the capped
                    # share both are), so miss_rate's clamp is a no-op.
                    f = min(1.0, allocs[j] / ws) * warmth.get(members[j], 0.0)
                shape = shape_l[j]
                missing = 1.0 - f if shape == 1.0 else (1.0 - f) ** shape
                miss[positions[j]] = minmr_l[j] + span_l[j] * missing

        # Page mixes: each row is the reference's Domain.page_mix_for
        # (concentration blend, then row-normalise).
        mix = None
        if gather.mix_row_src is not None:
            # Dual-socket: scalar blend straight off the placement
            # mirrors — the same elementwise ops as the ufunc path,
            # without touching the (lazily synced) ndarrays.
            conc_l = gather.conc_l
            anti_l = gather.anti_l
            row_src = gather.mix_row_src
            over_src = gather.mix_over_src
            mix_rows = [None] * k
            for i in range(k):
                c = conc_l[i]
                a = anti_l[i]
                row = row_src[i]
                over = over_src[i]
                m0 = c * row[0] + a * over[0]
                m1 = c * row[1] + a * over[1]
                s = m0 + m1
                mix_rows[i] = [m0 / s, m1 / s]
        else:
            rows = self._rows_buf[:k]
            over = self._over_buf[:k]
            for placement, slices, positions in gather.mix_groups:
                rows[positions] = placement.matrix[slices]
                over[positions] = placement.overall
            mix = gather.conc_col * rows + gather.anti_conc_col * over
            mix /= mix.sum(axis=1)[:, None]
            mix_rows = mix.tolist()

        # Fixed point: rates -> traffic -> queueing -> rates.  Scalar
        # float64 expressions in the reference's exact op order; at the
        # machine's scale (co-runners == PCPUs) this beats ufunc
        # dispatch while producing identical bits.
        lat = machine.config.latency
        hit_ns = lat.llc_hit_ns
        node_of = gather.node_of
        rpi = gather.rpi
        cpi_base = gather.cpi_base
        mlp = gather.mlp
        clock = gather.clock
        ns2c = gather.ns2c
        penalty = [lat.local_dram_ns] * k
        rates = [0.0] * k
        traffic = [0.0] * k
        for _ in range(machine.config.contention_iterations - 1):
            for i in range(k):
                mr = miss[i]
                per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
                stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
                rate = clock[i] / (cpi_base[i] + stall)
                rates[i] = rate
                traffic[i] = rate * rpi[i] * mr * BYTES_PER_MISS
            penalty = machine.memsys.solve_compact(traffic, node_of, mix_rows)
        # Last iteration: the reference recomputes rates and then makes
        # one more (pure, side-effect-free) solve call whose result it
        # discards — so only the rates are computed here.
        for i in range(k):
            mr = miss[i]
            per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
            stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
            rates[i] = clock[i] / (cpi_base[i] + stall)

        # Progress pass 1: instruction budgets in PCPU order (overhead
        # consumption and busy-time accumulation are ordered effects).
        totals = gather.totals
        instructions = [0.0] * k
        refs = [0.0] * k
        misses = [0.0] * k
        for i in range(k):
            pcpu = running_pcpus[i]
            # Inlined Pcpu.consume_overhead with an overhead-free fast
            # path (identical arithmetic when overhead is pending).
            pending = pcpu.overhead_pending_s
            if pending > 0.0:
                used = pending if pending < epoch else epoch
                pcpu.overhead_pending_s = pending - used
                compute = epoch - used
            else:
                compute = epoch
            pcpu.busy_time_s += epoch
            machine.busy_time_s += epoch
            done = rates[i] * compute
            total = totals[i]
            if total is not None:
                remaining = total - running_vcpus[i].workload.instructions_done
                if remaining < 0.0:
                    remaining = 0.0
                if remaining < done:
                    done = remaining
            instructions[i] = done
            r = done * rpi[i]
            refs[i] = r
            misses[i] = r * miss[i]

        # PMU charges, batched: the access matrix is elementwise
        # (misses x page mix), the per-bank accumulation stays ordered.
        if mix is None:
            accesses = [
                [misses[i] * mix_rows[i][0], misses[i] * mix_rows[i][1]]
                for i in range(k)
            ]
        else:
            accesses = np.array(misses)[:, None] * mix
        machine.pmu.charge_epoch(
            gather.keys,
            instructions,
            refs,
            misses,
            accesses,
            node_of,
            rows=gather.pmu_rows,
        )

        # Progress pass 2: retire work, drift placement, handle
        # completion and blocking (same order, same transitions).
        end = now + epoch
        policy = machine.policy
        log = machine.log
        drift = gather.drift
        for i in range(k):
            pcpu = running_pcpus[i]
            vcpu = running_vcpus[i]
            w = vcpu.workload
            w.instructions_done += instructions[i]
            vcpu.slice_used_s += epoch
            vcpu.run_burst_remaining_s -= epoch

            if drift[i] > 0:
                vcpu.domain.placement.drift_slice_fast(
                    w.slice_id, pcpu.node, drift[i]
                )

            total = totals[i]
            if total is not None and w.instructions_done >= total:
                vcpu.mark_done(end)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                vcpu.block_until(end + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # LLC warmth: charge running sets, decay everyone else, using
        # the per-VCPU charge factors cached at phase boundaries.
        for node_id, members in enumerate(gather.node_members):
            self._cache_advance[node_id](
                epoch,
                members,
                gather.node_charge[node_id],
                gather.node_member_sets[node_id],
            )


#: Running-set-size-keyed cache of the constant inner-affine vectors of
#: the fused batch recurrence (see _BatchInvariants): i2 = [-1]*k +
#: [1]*2k, i1 = [1]*k + [0]*2k.  Read-only by construction.
_AFF_INNER_CACHE: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}


def _aff_inner(k: int) -> Tuple[np.ndarray, np.ndarray]:
    ent = _AFF_INNER_CACHE.get(k)
    if ent is None:
        k3 = 3 * k
        i1 = np.zeros(k3)
        i1[:k] = 1.0
        i2 = np.ones(k3)
        i2[:k] = -1.0
        ent = (i1, i2)
        _AFF_INNER_CACHE[k] = ent
    return ent


class _BatchInvariants:
    """Per-assignment constants of the macro-step kernels.

    Everything here is derivable from the :class:`_Gather` (plus the
    per-domain grouping of the running set), so it lives on the gather
    (``gather.binv``) and shares its lifetime and memoisation
    signature.  Assignment churn makes these builds frequent on busy
    machines, so every per-VCPU vector is gathered from the engine's
    key-indexed :class:`_KeyArrays` with fancy indexing — exact bit
    copies of the scalar constants — instead of Python-level loops.
    """

    __slots__ = (
        "rpi",
        "cpi",
        "mlp",
        "clock",
        "ns2c",
        "conc2",
        "anti2",
        "aff_o1",
        "aff_o2",
        "aff_i1",
        "aff_i2",
        "indep_drift",
        "alias_groups",
        "dom_groups",
        "mask0",
        "share",
        "minmr",
        "span",
        "cf",
        "ws_bad",
        "shaped",
        "node_pos_arr",
    )

    def __init__(
        self,
        engine: "VectorEngine",
        gather: _Gather,
        running_vcpus: List[Vcpu],
    ) -> None:
        k = len(running_vcpus)
        g = engine.key_arrays()
        idx = np.array(gather.keys)
        nd = np.array(gather.node_of)
        # One fancy gather pulls every per-VCPU constant (packed rows:
        # rpi, cpi, mlp, conc, anti, drift, keep); the result is a fresh
        # copy, so mutating its rows below never touches the mirrors.
        P = g.packed[:, idx]
        N = g.node_packed[:, nd]
        self.rpi = P[0]
        self.cpi = P[1]
        self.mlp = P[2]
        self.clock = N[0]
        self.ns2c = N[1]
        # Doubled columns ([node-0 | node-1] halves of the RR/OO mix
        # matrices) share each VCPU's concentration scalars.
        conc = P[3]
        anti = P[4]
        self.conc2 = np.concatenate((conc, conc))
        self.anti2 = np.concatenate((anti, anti))
        mask0 = nd == 0
        self.mask0 = mask0

        # Aliased placement rows: several running VCPUs reading (and
        # possibly drifting) the same row object.  Their columns cannot
        # evolve independently — the batch replays the row's exact
        # per-epoch update sequence on Python scalars instead.  `keep`
        # is precomputed as the same `1.0 - amount` the reference
        # evaluates inside drift_slice_fast.
        drift = gather.drift
        node_of = gather.node_of
        row_src = gather.mix_row_src
        self.alias_groups = []
        alias_cols: Set[int] = set()
        ids = [id(r) for r in row_src]
        if len(set(ids)) != k:
            by_row: Dict[int, List[int]] = {}
            for i in range(k):
                by_row.setdefault(ids[i], []).append(i)
            for cols in by_row.values():
                if len(cols) < 2:
                    continue
                upd = [
                    (i, 1.0 - drift[i], drift[i], node_of[i])
                    for i in cols
                    if drift[i] > 0.0
                ]
                if not upd:
                    continue  # nobody drifts it: the row is constant
                num_slices = running_vcpus[cols[0]].domain.placement.num_slices
                self.alias_groups.append((cols, upd, num_slices))
                alias_cols.update(cols)

        # Independently-owned rows as a linear per-epoch map: row' =
        # row * keep + add.  VCPUs without drift (and aliased columns,
        # overwritten by the scalar replay) get keep=1, add=0 — `x *
        # 1.0` and `x + 0.0` are bitwise identities for the
        # non-negative row values, so one fused update covers all
        # columns.  (`np.where` selects the stored drift floats
        # verbatim; a zero-drift VCPU contributes the same 0.0 either
        # way.)
        drift_v = P[5]
        keep_v = P[6]
        add0 = np.where(mask0, drift_v, 0.0)
        add1 = np.where(mask0, 0.0, drift_v)
        if alias_cols:
            cols = list(alias_cols)
            keep_v[cols] = 1.0
            add0[cols] = 0.0
            add1[cols] = 0.0
        self.indep_drift = bool((keep_v != 1.0).any())

        # Running VCPUs grouped by domain (the shared `overall` mix
        # they drift), in running order — the order the reference's
        # per-epoch progress pass applies their drift increments.  Each
        # group carries the overrides for its aliased columns: a
        # non-drifting reader contributes no increment even though its
        # row moves, and an aliased drifter's increments come from the
        # scalar replay (its row deltas interleave with its co-owners').
        col_override: Dict[int, Tuple[int, int]] = {}
        for gi, (cols, upd, _ns) in enumerate(self.alias_groups):
            upd_pos = {t[0]: ui for ui, t in enumerate(upd)}
            for c in cols:
                col_override[c] = (gi, upd_pos.get(c, -1))
        groups: Dict[int, list] = {}
        for i in range(k):
            over = gather.mix_over_src[i]
            group = groups.get(id(over))
            if group is None:
                placement = running_vcpus[i].domain.placement
                group = [over, [], placement, placement.num_slices, False]
                groups[id(over)] = group
            group[1].append(i)
            if drift[i] > 0.0:
                group[4] = True
        self.dom_groups = []
        for over, idxs, placement, num_slices, has_drift in groups.values():
            ovr = tuple(
                (p, *col_override[c])
                for p, c in enumerate(idxs)
                if c in col_override
            )
            idxs_arr = np.array(idxs)
            self.dom_groups.append(
                (over, idxs_arr, idxs_arr + k, placement, num_slices,
                 has_drift, ovr)
            )

        # Flattened miss-curve constants, gather-position-ordered so the
        # warmth/miss kernels run once over all nodes.  The member-
        # ordered (share, minmr, span, charge) rows are prebuilt per
        # co-runner set in the engine's node cache; scattering them to
        # gather positions is two fancy assignments.
        mc = np.empty((4, k))
        ws_bad = []
        shaped = []
        self.node_pos_arr = []
        for node_id, members in enumerate(gather.node_members):
            if not members:
                self.node_pos_arr.append(None)
                continue
            positions = gather.node_positions[node_id]
            pos = np.array(positions)
            self.node_pos_arr.append(pos)
            mcn, bad_j, shaped_j = gather.node_batch[node_id]
            mc[:, pos] = mcn
            for j in bad_j:
                ws_bad.append(positions[j])
            for j, shape in shaped_j:
                shaped.append((positions[j], shape))
        self.share = mc[0]
        self.minmr = mc[1]
        self.span = mc[2]
        self.cf = mc[3]
        self.ws_bad = tuple(ws_bad)
        self.shaped = tuple(shaped)

        # Fused per-epoch recurrence x' = o + o2*(i1 + i2*x) over the
        # packed state [warmth | row-0 | row-1] (see advance_batch).
        # Warmth columns: i1+i2*x = 1 + (-1)*w == 1 - w, and o1+o2*u =
        # 1 + (-cf)*u == 1 - cf*u — IEEE negation is exact and x - y
        # == x + (-y), (-a)*b == -(a*b) bit for bit, so these are the
        # reference's three warmth ops verbatim.  Row columns: the
        # inner pass is the identity (1*x is exact; 0.0 + x is exact
        # because placement fractions are sums/products of non-negative
        # floats, so -0.0 never occurs) and the outer pass is the
        # drift map add + keep*x (addition commutes bitwise).
        k3 = 3 * k
        o1 = np.empty(k3)
        o1[:k] = 1.0
        o1[k : 2 * k] = add0
        o1[2 * k :] = add1
        o2 = np.empty(k3)
        np.negative(self.cf, out=o2[:k])
        o2[k : 2 * k] = keep_v
        o2[2 * k :] = keep_v
        self.aff_o1 = o1
        self.aff_o2 = o2
        self.aff_i1, self.aff_i2 = _aff_inner(k)


class _FusedState:
    """Hoisted per-batch state for the fused scalar replay.

    Carries the seeded accumulator lists (shared, mutated in place by
    :meth:`BatchedEngine._fused_epochs`) plus the gather/plan handles
    the commit needs.  ``mbusy`` is the one plain-float accumulator —
    the epoch loop reads it into a local and writes the final back.
    The stacked engine packs these lists into lane-stacked ndarrays
    and unpacks the finals before commit; everything in between is
    private to the batch, which is what makes the hand-off bitwise.
    """

    __slots__ = (
        "gather",
        "plan",
        "k",
        "kb",
        "running_pcpus",
        "running_vcpus",
        "pend",
        "busy",
        "mbusy",
        "idone",
        "sused",
        "burst",
        "bi",
        "br",
        "bm",
        "bl",
        "bx",
        "m0",
        "m1",
    )


class BatchedEngine(VectorEngine):
    """Macro-stepping engine: one 2D kernel pass per quiet-epoch run.

    Extends :class:`VectorEngine` with an *event horizon*: the number of
    upcoming epochs guaranteed free of discrete events — scheduler
    ticks, sampling boundaries, wakeups, phase changes, finite-work
    completions, run-burst expiries, fault stalls/crashes, the epoch cap
    and the run's time limit.  All ``K`` quiet epochs advance in one
    batch of (epochs x running VCPUs) array kernels.

    The bitwise contract survives batching because inside the horizon
    every epoch applies the *same* elementwise recurrences to the same
    running set: per-VCPU trajectories (warmth, placement drift, page
    mix, miss rate, fixed-point rates) vectorize along the epoch axis,
    while every ordered reduction — IMC/QPI traffic, busy time, PMU bank
    accumulation, the per-domain `overall` drift chain — is reproduced
    as a sequential ``cumsum`` in the reference's exact accumulation
    order.  Scheduler RNG parity is kept by replaying the (no-op) steal
    calls idle PCPUs would make each interior epoch.

    Topologies other than the paper's dual-socket host fall back to
    singleton stepping (``compute_horizon`` returns 1), which is the
    inherited :class:`VectorEngine` path.
    """

    supports_batch = True

    #: horizons at or below this replay the singleton path instead of
    #: launching the 2D kernels: a short batch cannot amortise the
    #: kernels' fixed dispatch cost, and the replay is bitwise-exact by
    #: construction (it *is* the singleton path, minus event checks the
    #: horizon already proved are no-ops).  The fused scalar replay
    #: (hoisted scans/commits + inlined dual-socket solve) moved the
    #: measured break-even on the loaded SPEC scenario from ~5 epochs
    #: out to ~16: at the paper's k=8 running set the 2D kernels are
    #: dispatch-bound, so they only win on long quiet runs (lightly
    #: loaded machines routinely see horizons in the hundreds).
    _REPLAY_MAX = 16

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine)
        self._cache_advance_batch = [
            cache.state.advance_compact_batch for cache in machine.caches
        ]
        config = machine.config
        # getattr: a machine restored from a pre-fusion checkpoint pickles
        # a SimConfig without the new knobs.
        self._fuse_ticks = getattr(config, "fuse_ticks", True)
        self._speculative = getattr(config, "speculative", False)
        #: pending fused-boundary plan for the batch compute_horizon just
        #: sized: a list of ``(j, time, slice_proj, repicks)`` tuples, one
        #: per provably-quiescent Credit tick inside the horizon.
        self._fuse_plan: Optional[list] = None
        self._horizon_hist: Dict[int, int] = {}
        self._batch_calls = 0
        self._fused_tick_total = 0
        self._repick_total = 0
        self._spec_attempts = 0
        self._spec_misses = 0
        #: hoisted latency/topology constants for the fused replay,
        #: built on first use (see _build_fused_plan).
        self._fused_scalars: Optional[tuple] = None
        #: run-static constants for _horizon_fused, built on first call
        #: (policy params and latency floors never change mid-run).
        self._fh_const: Optional[tuple] = None

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def compute_horizon(self, now: float, limit: float) -> int:
        """Quiet epochs (including the current one) safe to macro-step.

        Called after the stepper has run this epoch's fault, tick, wake
        and scheduling phases; returns 1 whenever any discrete event
        could fire before the batch would end.  With tick fusion enabled
        (the default) a horizon may additionally span Credit ticks the
        policy's quiescence projection proves are no-ops — the plan of
        fused boundaries is left in ``_fuse_plan`` for advance_batch.
        """
        self._fuse_plan = None
        machine = self.machine
        if not self.two_node:
            kb = 1
        else:
            fuse = self._fuse_ticks
            if fuse:
                faults = machine.faults
                if faults is not None and faults.plan.stall_rate > 0:
                    # Pending stall overhead lands at arbitrary epochs and
                    # is invisible to the quiescence projection — keep the
                    # classic stall-capped sizing for these runs.
                    fuse = False
            if fuse:
                kb = self._horizon_fused(now, limit)
            else:
                kb = self._horizon_classic(now, limit)
        hist = self._horizon_hist
        hist[kb] = hist.get(kb, 0) + 1
        return kb

    def _horizon_classic(self, now: float, limit: float) -> int:
        """PR 5 horizon sizing: every Credit tick terminates the batch."""
        machine = self.machine
        e0 = machine.epoch_index
        epoch = self.epoch
        kb = machine._epochs_per_tick - (e0 % machine._epochs_per_tick)
        ks = machine._epochs_per_sample - (e0 % machine._epochs_per_sample)
        if ks < kb:
            kb = ks
        cap = machine.config.max_epochs
        if cap is not None and cap - e0 < kb:
            kb = cap - e0
        crash_time = math.inf
        faults = machine.faults
        if faults is not None:
            if faults.plan.stall_rate > 0:
                next_stall = faults.next_stall_epoch()
                if next_stall is None:
                    return 1
                if next_stall - e0 < kb:
                    kb = next_stall - e0
            next_crash = faults.next_crash_time()
            if next_crash is not None:
                crash_time = next_crash
        if kb <= 1:
            return 1

        # Running-set floors.  Completions stay *exclusive*: with rates
        # bounded by clock / cpi_base (the queueing stall is
        # non-negative), a one-epoch margin under each finite-work
        # budget guarantees no completion fires at any batch epoch.
        # Run-burst expiries are *inclusive*: the budget drains by
        # exactly one epoch per step regardless of contention, so the
        # expiry epoch is known in advance — the batch may end ON it and
        # fire the block transition at the batch boundary.
        idle = False
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is None:
                idle = True
                continue
            key = cur.key
            w = cur.workload
            total = w.profile.total_instructions
            if total is not None:
                remaining = total - w.instructions_done
                rate_max = self.node_clock[pcpu.node] / self.cpi_base[key]
                floor = int(remaining / (rate_max * epoch)) - 1
                if floor < kb:
                    kb = floor
            burst = cur.run_burst_remaining_s
            if burst <= (kb + 1) * epoch:
                # Expiry may land inside the window: replay the exact
                # per-epoch subtraction chain (`x -= epoch`, the same
                # sequential float ops the progress pass performs) to
                # find the first epoch whose end leaves the budget at
                # or below zero, and end the batch there.
                x = burst
                for j in range(kb):
                    x -= epoch
                    if x <= 0.0:
                        kb = j + 1
                        break
            if kb <= 1:
                return 1
        if idle:
            # After a scheduling pass an idle PCPU implies every queue
            # is empty (the pass steals unconditionally); guard the
            # invariant anyway — queued work next to an idle PCPU means
            # rescheduling activity every epoch.
            for pcpu in machine.pcpus:
                if pcpu.queue.head_rank() is not None:
                    return 1

        # Time-driven events: walk the exact epoch-end trajectory (the
        # same sequential float adds the stepper performs) against the
        # wake heap, the phase heap, the crash schedule and the run
        # limit.  A phase change due at a batch-final epoch end is fine:
        # the stepper applies phase changes once at the batch end.
        wake = self.wake_heap[0][0] if self.wake_heap else math.inf
        phase = self.phase_heap[0][0] if self.phase_heap else math.inf
        t = now
        j = 0
        while j < kb:
            if j > 0 and (
                wake <= t or crash_time <= t or t >= limit - 1e-12
            ):
                kb = j
                break
            t_next = t + epoch
            if phase <= t_next:
                kb = j + 1
                break
            t = t_next
            j += 1
        return kb if kb > 1 else 1

    def _horizon_fused(self, now: float, limit: float) -> int:
        """Horizon sizing that spans provably-quiescent Credit ticks.

        One merged walk along the epoch axis checks, per epoch, the same
        caps as :meth:`_horizon_classic` (wakes, crashes, the run limit,
        phase changes, inclusive run-burst expiries) *plus*, at every
        tick boundary, a quiescence projection of the tick's arithmetic:

        * the policy must promise stock Credit behaviour for that tick
          (:meth:`SchedulerPolicy.tick_is_quiescent`);
        * the projected debit/refill must not tickle-preempt anyone (no
          queue head outranking a running VCPU's post-tick priority) and
          must not flip a *queued* VCPU across the UNDER/OVER line (a
          flip reorders its queue at ``_requeue_for_priority``, which can
          change every later pick);
        * a projected slice expiry is fusable only as a *re-pick*: no
          idle PCPU, every queue empty machine-wide, and the policy's
          ``fused_repick_steals_none`` licence in force — then the
          expiry provably re-selects the incumbent and the boundary's
          real calls replay at commit time (RNG draws included).

        Ticks that pass are recorded in ``self._fuse_plan`` as
        ``(j, time, slice_proj, repicks)`` and committed by
        advance_batch; the first tick that fails terminates the horizon
        exactly where the classic sizing would.

        The finite-work completion floor is tightened relative to the
        classic one: every LLC reference costs at least
        ``min(llc_hit_ns, local_dram_ns)`` (remote latency is local plus
        a non-negative premium, and queueing only inflates penalties),
        so ``clock / (cpi_base + rpi * floor_ns * ns2c / mlp)`` is still
        a true upper bound on the retire rate while sitting far below
        ``clock / cpi_base`` for memory-bound keys.  Under
        ``speculative=True`` the floor is skipped entirely and the
        post-kernel validation in advance_batch truncates mis-speculated
        batches instead.
        """
        machine = self.machine
        e0 = machine.epoch_index
        epoch = self.epoch
        kmax = machine._epochs_per_sample - (e0 % machine._epochs_per_sample)
        cap = machine.config.max_epochs
        if cap is not None and cap - e0 < kmax:
            kmax = cap - e0
        crash_time = math.inf
        faults = machine.faults
        if faults is not None:
            # stall_rate > 0 routes to _horizon_classic before this point
            next_crash = faults.next_crash_time()
            if next_crash is not None:
                crash_time = next_crash
        if kmax <= 1:
            return 1

        fh = self._fh_const
        if fh is None:
            lat = machine.config.latency
            params = machine.policy.params
            fh = self._fh_const = (
                # every LLC reference costs at least the cheaper of a
                # hit and local DRAM; remote is local plus a premium
                lat.llc_hit_ns
                if lat.llc_hit_ns < lat.local_dram_ns
                else lat.local_dram_ns,
                machine._epochs_per_tick,
                params.credits_per_tick,
                params.credit_floor,
                params.credit_cap,
                params.ticks_per_acct,
                params.slice_s,
                bool(
                    machine.policy.fused_repick_steals_none
                    and params.cache_hot_s > 0.0
                ),
            )
        (
            floor_ns,
            ept,
            cpt,
            cfloor,
            ccap,
            tpa,
            slice_s,
            repick_base,
        ) = fh
        speculative = self._speculative
        running_pcpus = []
        running_vcpus = []
        idle = False
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is None:
                idle = True
                continue
            running_pcpus.append(pcpu)
            running_vcpus.append(cur)
            if speculative:
                continue
            w = cur.workload
            total = w.profile.total_instructions
            if total is not None:
                key = cur.key
                node = pcpu.node
                rate_ub = self.node_clock[node] / (
                    self.cpi_base[key]
                    + self.rpi[key]
                    * floor_ns
                    * self.node_ns2c[node]
                    / self.mlp[key]
                )
                floor = int((total - w.instructions_done) / (rate_ub * epoch)) - 1
                if floor < kmax:
                    kmax = floor
        if kmax <= 1:
            return 1
        if idle:
            # Same invariant guard as the classic sizing: an idle PCPU
            # next to queued work means rescheduling every epoch.
            for pcpu in machine.pcpus:
                if pcpu.queue.head_rank() is not None:
                    return 1

        policy = machine.policy
        k = len(running_vcpus)
        wake = self.wake_heap[0][0] if self.wake_heap else math.inf
        phase = self.phase_heap[0][0] if self.phase_heap else math.inf

        # Armed run-burst chains: exact per-epoch `x -= epoch` replicas
        # for every budget that could drain inside the window; budgets
        # beyond (kmax + 1) epochs cannot reach zero in it.
        arm_limit = (kmax + 1) * epoch
        bursts = [
            v.run_burst_remaining_s
            for v in running_vcpus
            if v.run_burst_remaining_s <= arm_limit
        ]
        nb = len(bursts)

        # Tick-quiescence projection state.  slice_w lazily catches up
        # to the current epoch (scalar adds, the same float ops the
        # progress chain performs); credits_w replays the exact
        # debit/refill arithmetic; queued VCPU credits move only at
        # projected refills and are tracked on demand.
        slice_w = [v.slice_used_s for v in running_vcpus]
        synced = 0
        credits_w = [v.credits for v in running_vcpus]
        queued_credits: Dict[int, float] = {}
        refill_active: Optional[list] = None
        pos_of: Optional[Dict[int, int]] = None
        total_weight = 0.0
        supply = 0.0
        tick_base = machine.tick_index
        next_tick = ept - (e0 % ept)
        repick_ok = repick_base and not idle
        plan: list = []

        kb = kmax
        t = now
        j = 0
        while j < kb:
            if j > 0:
                if wake <= t or crash_time <= t or t >= limit - 1e-12:
                    kb = j
                    break
                if j == next_tick:
                    T = tick_base + len(plan)
                    fusable = policy.tick_is_quiescent(T)
                    repicks: Tuple[int, ...] = ()
                    if fusable:
                        # Projected debit (+BOOST clear) on running VCPUs:
                        # value-identical to max(floor, c - debit).
                        new_credits = []
                        for c in credits_w:
                            nc = c - cpt
                            if nc < cfloor:
                                nc = cfloor
                            new_credits.append(nc)
                        if T % tpa == 0:
                            if refill_active is None:
                                refill_active = [
                                    v for v in machine.vcpus if v.runnable
                                ]
                                total_weight = sum(
                                    v.domain.weight for v in refill_active
                                )
                                supply = cpt * tpa * len(machine.pcpus)
                                pos_of = {
                                    v.key: i
                                    for i, v in enumerate(running_vcpus)
                                }
                            # Refill in machine order, value-identical to
                            # min(cap, c + share).  The runnable set is
                            # frozen inside a batch, so the active list,
                            # weight sum and supply are loop-invariant.
                            for v in refill_active:
                                i = pos_of.get(v.key)
                                if i is not None:
                                    c = new_credits[i]
                                else:
                                    c = queued_credits.get(v.key, v.credits)
                                share = supply * (
                                    v.domain.weight / total_weight
                                )
                                nc = c + share
                                if nc > ccap:
                                    nc = ccap
                                if i is not None:
                                    new_credits[i] = nc
                                elif not v.boosted and c < 0.0 <= nc:
                                    # Queued OVER->UNDER flip: requeue
                                    # reorders and may newly tickle.
                                    fusable = False
                                    break
                                else:
                                    queued_credits[v.key] = nc
                    if fusable:
                        gap = j - synced
                        if gap:
                            for i in range(k):
                                x = slice_w[i]
                                for _ in range(gap):
                                    x = x + epoch
                                slice_w[i] = x
                            synced = j
                        expire = []
                        for i in range(k):
                            rank = 1 if new_credits[i] >= 0.0 else 2
                            head = running_pcpus[i].queue.head_rank()
                            if head is not None and head < rank:
                                # Queue head would tickle-preempt: a real
                                # context switch, not a no-op boundary.
                                fusable = False
                                break
                            if slice_w[i] >= slice_s - 1e-12:
                                expire.append(i)
                        if fusable and expire:
                            if repick_ok and not any(
                                p.queue for p in machine.pcpus
                            ):
                                repicks = tuple(expire)
                            else:
                                fusable = False
                    if not fusable:
                        kb = j
                        break
                    slice_proj = list(slice_w)
                    for i in repicks:
                        # switch-in resets the slice before this epoch's
                        # progress add
                        slice_w[i] = 0.0
                    credits_w = new_credits
                    plan.append((j, t, slice_proj, repicks))
                    next_tick += ept
            t_next = t + epoch
            if phase <= t_next:
                kb = j + 1
                break
            expired = False
            for bi in range(nb):
                x = bursts[bi] - epoch
                bursts[bi] = x
                if x <= 0.0:
                    expired = True
            if expired:
                kb = j + 1
                break
            t = t_next
            j += 1

        if kb <= 1:
            return 1
        if plan:
            # Every entry precedes the final cut by construction (breaks
            # set kb to the current epoch or one past it, and entries are
            # appended strictly before either).
            self._fuse_plan = plan
        return kb

    # ------------------------------------------------------------------
    # Batched advance
    # ------------------------------------------------------------------
    def advance_batch(self, now: float, epoch: float, kb: int) -> float:
        """Advance ``kb`` quiet epochs in one batch; returns the batch end.

        The caller (the stepper) has already run this epoch's pre-solve
        phases and guarantees — via :meth:`compute_horizon` — that no
        discrete event fires strictly inside the batch.
        """
        machine = self.machine
        profiler = machine.profiler
        policy = machine.policy
        plan = self._fuse_plan
        self._fuse_plan = None
        self._batch_calls += 1

        if kb <= self._REPLAY_MAX and (
            plan or self._speculative or not self.two_node
        ):
            # Short horizon with fused ticks, speculation, or an exotic
            # topology: replay through the full per-epoch path.
            return self._advance_replay(now, epoch, kb, plan)

        # Batch end time: exactly the `end = now + epoch` chain the
        # singleton stepper would accumulate (the full per-epoch list is
        # only materialised on the paths that replay interior epochs).
        t = now
        for _ in range(kb):
            t = t + epoch
        end_batch = t
        times: Optional[List[float]] = None

        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        idle_pcpus = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                running_pcpus.append(pcpu)
                running_vcpus.append(cur)
                sig_keys.append(cur.key)
                sig_pids.append(pcpu.pcpu_id)
            else:
                idle_pcpus.append(pcpu)
        k = len(running_vcpus)

        if k == 0 and kb <= self._REPLAY_MAX:
            return self._advance_replay(now, epoch, kb, plan)

        if k == 0:
            # Nothing ran.  Fused ticks still advance tick_index (with
            # every queue empty the real call touches no credits), the
            # idle PCPUs replay their per-epoch steal attempts, and
            # warmth decays epoch by epoch on every LLC.
            if plan:
                t0 = profiler.start()
                for ft in plan:
                    machine._run_tick(ft[1])
                profiler.stop("tick_fuse", t0)
                self._fused_tick_total += len(plan)
            t = now
            for _ in range(1, kb):
                t = t + epoch
                tj = t
                for pcpu in idle_pcpus:
                    t0 = profiler.start()
                    policy.steal(pcpu, tj, under_only=False)
                    profiler.stop("balance", t0)
            for _ in range(kb):
                for advance in self._cache_advance:
                    advance(epoch, (), ())
            return end_batch

        kg = self.key_gen
        sig_kp = (tuple(sig_keys), tuple(sig_pids))
        gens = tuple(kg[key] for key in sig_keys)
        sig = (sig_kp, gens)
        if sig != self._gather_sig:
            cache = self._gather_cache
            entry = cache.get(sig_kp)
            if entry is None or entry[0] != gens:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig_kp] = (gens, gather)
            else:
                gather = entry[1]
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather

        if kb <= self._REPLAY_MAX:
            # Short horizon, event-free interior: the fused scalar
            # replay runs the exact per-epoch arithmetic with the
            # running-set scan, gather lookup and all state commits
            # hoisted out of the epoch loop.  Idle PCPUs (per-epoch
            # steal attempts) and non-default contention depths take
            # the generic replay.
            if idle_pcpus or machine.config.contention_iterations != 2:
                return self._advance_replay(now, epoch, kb, plan)
            return self._advance_replay_fused(
                end_batch, epoch, kb, gather, running_pcpus,
                running_vcpus, k
            )

        # The kernel path replays interior-epoch times (fused-tick and
        # idle-steal boundaries), so materialise the full chain here.
        times = [now]
        t = now
        for _ in range(kb):
            t = t + epoch
            times.append(t)

        inv = gather.binv
        if inv is None:
            inv = _BatchInvariants(self, gather, running_vcpus)
            gather.binv = inv

        # --- Warmth + drift trajectories -------------------------------
        # X[t] packs the whole per-epoch state [warmth | row-0 | row-1]:
        # W[t, i] is VCPU i's warmth entering batch epoch t (the
        # reference reads warmth *before* each epoch's end-of-epoch
        # charge, so row t uses t charge applications) and the row
        # halves hold each VCPU's placement-row components.  One nested
        # affine update — x' = o1 + o2*(i1 + i2*x), constants built in
        # _BatchInvariants with a bitwise-identity proof per block —
        # advances everything with four ufunc calls per epoch.
        warmth_tables = self._warmth_tables
        k2 = 2 * k
        k3 = 3 * k
        X = np.empty((kb + 1, k3))
        x0 = X[0]
        for node_id, members in enumerate(gather.node_members):
            if members:
                table = warmth_tables[node_id]
                x0[inv.node_pos_arr[node_id]] = [
                    table.get(key, 0.0) for key in members
                ]
        row_src = gather.mix_row_src
        x0[k:k2] = [row[0] for row in row_src]
        x0[k2:] = [row[1] for row in row_src]
        o1 = inv.aff_o1
        o2 = inv.aff_o2
        i1 = inv.aff_i1
        i2 = inv.aff_i2
        tmp = np.empty(k3)
        # In-place updates (ufuncs with out=) are the same ufunc
        # applications as the expression forms, per element.
        for tt in range(kb):
            np.multiply(i2, X[tt], out=tmp)
            np.add(i1, tmp, out=tmp)
            np.multiply(o2, tmp, out=tmp)
            np.add(o1, tmp, out=X[tt + 1])
        W = X[:kb, :k]
        RR = X[:, k:]
        F = inv.share * W
        for pos in inv.ws_bad:
            F[:, pos] = 1.0
        missing = 1.0 - F
        for pos, shape in inv.shaped:
            # Python-float pow only: ndarray ** float rounds
            # differently from the scalar `(1 - f) ** shape`.
            missing[:, pos] = [
                base ** shape for base in missing[:, pos].tolist()
            ]
        M = inv.minmr + inv.span * missing
        R0 = RR[:, :k]
        R1 = RR[:, k:]

        # Aliased rows: replay the exact per-epoch update sequence in
        # running order on Python scalars (the same ops
        # drift_slice_fast performs); every reader column shares the
        # row's trajectory and every drifter records its own `overall`
        # increments, already divided by num_slices.
        alias_inc = []
        for cols, upd, num_slices in inv.alias_groups:
            row = row_src[cols[0]]
            r0 = row[0]
            r1 = row[1]
            traj0 = [r0]
            traj1 = [r1]
            inc0 = [[] for _ in upd]
            inc1 = [[] for _ in upd]
            for _tt in range(kb):
                for u, (_ci, keep, amount, node) in enumerate(upd):
                    n0 = r0 * keep
                    n1 = r1 * keep
                    if node == 0:
                        n0 = n0 + amount
                    else:
                        n1 = n1 + amount
                    inc0[u].append((n0 - r0) / num_slices)
                    inc1[u].append((n1 - r1) / num_slices)
                    r0 = n0
                    r1 = n1
                traj0.append(r0)
                traj1.append(r1)
            for ci in cols:
                R0[:, ci] = traj0
                R1[:, ci] = traj1
            alias_inc.append((inc0, inc1))

        OO = np.empty((kb, 2 * k))
        O0 = OO[:, :k]
        O1 = OO[:, k:]
        over_chains = []
        DR = None
        for over, idxs, idxs_k, placement, num_slices, has_drift, ovr in (
            inv.dom_groups
        ):
            if not has_drift:
                O0[:, idxs] = over[0]
                O1[:, idxs] = over[1]
                continue
            m = idxs.size
            # Per-epoch, per-member `overall += (new - old) / num_slices`
            # increments, flattened epoch-major in running order — the
            # exact sequence of adds the reference's progress pass makes
            # — then one cumsum gives every intermediate chain state.
            # Aliased columns are overridden: non-drifting readers add
            # nothing, aliased drifters use their replayed increments.
            # The row deltas are hoisted across groups (one subtraction
            # over the packed RR matrix).
            if DR is None:
                DR = RR[1:] - RR[:-1]
            D0 = DR[:, idxs] / num_slices
            D1 = DR[:, idxs_k] / num_slices
            for p, gi, ui in ovr:
                if ui < 0:
                    D0[:, p] = 0.0
                    D1[:, p] = 0.0
                else:
                    g_inc0, g_inc1 = alias_inc[gi]
                    D0[:, p] = g_inc0[ui]
                    D1[:, p] = g_inc1[ui]
            chains = np.empty((2, kb * m + 1))
            chains[0, 0] = over[0]
            chains[0, 1:] = D0.ravel()
            chains[1, 0] = over[1]
            chains[1, 1:] = D1.ravel()
            ch = chains.cumsum(axis=1)
            O0[:, idxs] = ch[0, ::m][:kb, None]
            O1[:, idxs] = ch[1, ::m][:kb, None]
            # The full cumsum is kept (not just its last element): a
            # speculative truncation commits the chain state after the
            # shortened batch, a prefix of the same array.
            over_chains.append((over, placement, ch, m))

        mm = inv.conc2 * RR[:kb] + inv.anti2 * OO
        s = mm[:, :k] + mm[:, k:]
        mix0 = mm[:, :k] / s
        mix1 = mm[:, k:] / s

        # --- Fixed point: rates -> traffic -> queueing -> rates --------
        lat = machine.config.latency
        rpi = inv.rpi
        node_of = gather.node_of
        mask0 = inv.mask0
        # (1 - M) * hit_ns is round-invariant; hoisting it keeps the
        # reference's op order (it is the same first two ops).
        base_ref = (1.0 - M) * lat.llc_hit_ns
        penalty = np.full((kb, k), lat.local_dram_ns)
        memsolve = machine.memsys.solve_compact_batch
        for _ in range(machine.config.contention_iterations - 1):
            per_ref_ns = base_ref + M * penalty
            rates = inv.clock / (
                inv.cpi + rpi * per_ref_ns * inv.ns2c / inv.mlp
            )
            traffic = rates * rpi * M * BYTES_PER_MISS
            penalty = memsolve(traffic, node_of, mix0, mix1, local_mask=mask0)
        per_ref_ns = base_ref + M * penalty
        rates = inv.clock / (inv.cpi + rpi * per_ref_ns * inv.ns2c / inv.mlp)

        # --- Speculative validation ------------------------------------
        # With the completion floor waived, find the earliest epoch at
        # which an *optimistic* seeded budget chain (rates * epoch — the
        # real per-epoch budget never exceeds it, and float adds are
        # monotone) could cross a finite-work total, and truncate the
        # batch there before anything is committed.  The real crossing
        # lands at or after the optimistic one, so the shortened batch's
        # interior epochs stay clamp-free and only the final epoch needs
        # the reference's remaining-work clamp (applied below).
        if self._speculative:
            self._spec_attempts += 1
            t0s = profiler.start()
            totals = gather.totals
            cut = kb
            col = np.empty(kb + 1)
            for i in range(k):
                total = totals[i]
                if total is None:
                    continue
                col[0] = running_vcpus[i].workload.instructions_done
                np.multiply(rates[:, i], epoch, out=col[1:])
                crossed = np.nonzero(col.cumsum()[1:] >= total)[0]
                if crossed.size:
                    c = int(crossed[0]) + 1
                    if c < cut:
                        cut = c
            profiler.stop("speculate", t0s)
            if cut < kb:
                t0r = profiler.start()
                self._spec_misses += 1
                kb = cut
                end_batch = times[kb]
                if plan:
                    plan = [ft for ft in plan if ft[0] < kb]
                profiler.stop("rollback", t0r)
                if kb <= self._REPLAY_MAX:
                    # Below kernel break-even: nothing was committed, so
                    # fall back to singleton replay of the short batch.
                    return self._advance_replay(now, epoch, kb, plan)
                rates = rates[:kb]
                M = M[:kb]
                mix0 = mix0[:kb]
                mix1 = mix1[:kb]

        # --- Fused-boundary commit -------------------------------------
        # Seeds for the progress chains and the overhead walk are read
        # *before* the boundary calls mutate live state.
        slice_seed = [v.slice_used_s for v in running_vcpus]
        init_pending = [p.overhead_pending_s for p in running_pcpus]
        pend_events: list = []
        repick_reset: Dict[int, int] = {}
        if plan:
            # Commit each fused tick with the *real* calls — on_tick,
            # refresh charges, and (for re-picks) the scheduling pass —
            # so debit/refill arithmetic, preemption bookkeeping and RNG
            # draws replay exactly.  slice_used is pre-set to its
            # projected chain value so the expiry check fires on the
            # same floats the singleton path would see; the packed chain
            # below overwrites the finals from the captured seeds.
            # Hypervisor charges are intercepted (machine.charge_overhead
            # is shadowed for the duration) so the overhead walk can
            # replay the exact add/drain interleaving.
            t0f = profiler.start()
            col_of = {p.pcpu_id: i for i, p in enumerate(running_pcpus)}
            cur_j = 0
            real_charge = machine.charge_overhead

            def _recording_charge(source, pcpu, seconds):
                real_charge(source, pcpu, seconds)
                if seconds > 0.0:
                    ci = col_of.get(pcpu.pcpu_id)
                    if ci is not None:
                        pend_events.append((ci, cur_j, seconds))

            machine.charge_overhead = _recording_charge
            try:
                for ft in plan:
                    cur_j = ft[0]
                    proj = ft[2]
                    for i in range(k):
                        running_vcpus[i].slice_used_s = proj[i]
                    machine._run_tick(ft[1])
                    repicks = ft[3]
                    if repicks:
                        machine._schedule_pass(ft[1])
                        for i in repicks:
                            if running_pcpus[i].current is not running_vcpus[i]:
                                raise AssertionError(
                                    "fused slice expiry re-picked a "
                                    "different VCPU"
                                )
                            repick_reset[i] = cur_j
                    for pcpu in running_pcpus:
                        if pcpu.current is None:
                            raise AssertionError(
                                "fused tick preempted outside the plan"
                            )
            finally:
                del machine.charge_overhead
            self._fused_tick_total += len(plan)
            self._repick_total += sum(len(ft[3]) for ft in plan)
            profiler.stop("tick_fuse", t0f)

        # Interior scheduling passes: running PCPUs are untouched (their
        # VCPU stays runnable all batch), but each idle PCPU makes one
        # steal attempt per epoch.  With every queue empty those calls
        # cannot succeed or mutate queues — they exist to keep the
        # scheduler's RNG draw sequence (e.g. credit.steal's
        # permutation) aligned with the reference, epoch by epoch.
        # (Idle PCPUs and fused re-picks are mutually exclusive, and
        # quiescent ticks draw nothing, so committing the plan first
        # leaves every RNG stream's draw order identical.)
        if idle_pcpus:
            for j in range(1, kb):
                tj = times[j]
                for pcpu in idle_pcpus:
                    t0 = profiler.start()
                    policy.steal(pcpu, tj, under_only=False)
                    profiler.stop("balance", t0)

        # --- Progress pass 1: compute budgets and busy time ------------
        # Pending hypervisor overhead is rare inside a batch; the common
        # case multiplies by the scalar epoch (bitwise identical to a
        # full matrix of epochs).  Fused refresh/switch charges are
        # replayed as adds at their exact epoch, interleaved with the
        # per-epoch drain in reference order (charge phases precede the
        # progress drain within an epoch).
        compute = None
        ev_by_col: Optional[Dict[int, list]] = None
        if pend_events:
            ev_by_col = {}
            for ci, ej, cost in pend_events:
                ev_by_col.setdefault(ci, []).append((ej, cost))
        for i in range(k):
            pending = init_pending[i]
            evs = ev_by_col.get(i) if ev_by_col else None
            if pending <= 0.0 and not evs:
                continue
            if compute is None:
                compute = np.full((kb, k), epoch)
            col = compute[:, i]
            ei = 0
            ne = len(evs) if evs else 0
            tt = 0
            while tt < kb:
                while ei < ne and evs[ei][0] == tt:
                    pending = pending + evs[ei][1]
                    ei += 1
                if pending > 0.0:
                    used = pending if pending < epoch else epoch
                    pending = pending - used
                    col[tt] = epoch - used
                    tt += 1
                elif ei < ne:
                    tt = evs[ei][0]
                else:
                    break
            running_pcpus[i].overhead_pending_s = pending

        # The horizon's one-epoch margin guarantees the reference's
        # remaining-work clamp never binds inside the batch.
        done = rates * epoch if compute is None else rates * compute
        if self._speculative:
            # Exact-final clamp: replay the reference's remaining-work
            # clamp on the batch-final epoch for any finite column that
            # crosses there.  Interior rows cannot cross — the
            # validation cut the batch at the earliest optimistic
            # crossing and real budgets never exceed the optimistic.
            totals = gather.totals
            ccol = np.empty(kb + 1)
            for i in range(k):
                total = totals[i]
                if total is None:
                    continue
                dcol = done[:, i]
                ccol[0] = running_vcpus[i].workload.instructions_done
                ccol[1:] = dcol
                entry = float(ccol.cumsum()[kb - 1])
                remaining = total - entry
                if remaining < 0.0:
                    remaining = 0.0
                if remaining < float(dcol[kb - 1]):
                    dcol[kb - 1] = remaining
        refs = done * rpi
        misses = refs * M

        # --- PMU charges + progress chains -----------------------------
        # One seeded cumsum covers every per-column accumulator chain:
        # busy time, instructions, slice usage, burst budget, plus the
        # seven PMU blocks (instructions, refs, misses, local, remote,
        # node-0, node-1 — seeded and committed by the PMU's packed-
        # chain halves).  Columns are independent, so packing them side
        # by side is bitwise neutral, `x - epoch == x + (-epoch)`
        # exactly, and the local/remote split reuses the scalar path's
        # expressions elementwise.
        acc0 = misses * mix0
        acc1 = misses * mix1
        local = np.where(mask0, acc0, acc1)
        pmu = machine.pmu
        k4 = 4 * k
        chain = np.empty((kb + 1, k4 + 7 * k))
        c0 = chain[0]
        c0[:k] = [p.busy_time_s for p in running_pcpus]
        c0[k : 2 * k] = [
            v.workload.instructions_done for v in running_vcpus
        ]
        c0[2 * k : 3 * k] = slice_seed
        c0[3 * k : k4] = [v.run_burst_remaining_s for v in running_vcpus]
        pmu.batch_seed_into(gather.pmu_banks, gather.pmu_rows, c0[k4:])
        body = chain[1:]
        body[:, :k] = epoch
        body[:, k : 2 * k] = done
        body[:, 2 * k : 3 * k] = epoch
        body[:, 3 * k : k4] = -epoch
        body[:, k4 : 5 * k] = done
        body[:, 5 * k : 6 * k] = refs
        body[:, 6 * k : 7 * k] = misses
        body[:, 7 * k : 8 * k] = local
        body[:, 8 * k : 9 * k] = (acc0 + acc1) - local
        body[:, 9 * k : 10 * k] = acc0
        body[:, 10 * k :] = acc1
        tot = chain.cumsum(axis=0)[-1]
        pmu.batch_commit(gather.pmu_banks, gather.pmu_rows, tot[k4:])
        final = tot[:k4].tolist()
        for i in range(k):
            running_pcpus[i].busy_time_s = final[i]
            vcpu = running_vcpus[i]
            vcpu.workload.instructions_done = final[k + i]
            vcpu.slice_used_s = final[2 * k + i]
            vcpu.run_burst_remaining_s = final[3 * k + i]
        for i, jr in repick_reset.items():
            # A fused re-pick reset the slice at epoch jr; the final is
            # the same scalar add chain the singleton path accumulates
            # from that reset.
            x = 0.0
            for _ in range(kb - jr):
                x = x + epoch
            running_vcpus[i].slice_used_s = x
        machine_busy = np.empty(kb * k + 1)
        machine_busy[0] = machine.busy_time_s
        machine_busy[1:] = epoch
        machine.busy_time_s = float(machine_busy.cumsum()[-1])

        if inv.indep_drift or inv.alias_groups:
            drift = gather.drift
            r0_final = R0[kb].tolist()
            r1_final = R1[kb].tolist()
            for i in range(k):
                if drift[i] > 0.0:
                    row = row_src[i]
                    row[0] = r0_final[i]
                    row[1] = r1_final[i]
            for over, placement, ch, m in over_chains:
                over[0] = float(ch[0, kb * m])
                over[1] = float(ch[1, kb * m])
                placement._np_stale = True

        # --- Batch-final transitions -----------------------------------
        # The horizon's burst cap is *inclusive*: a run-burst that
        # drains to zero at the batch-final epoch blocks here, with the
        # same transition sequence (and per-VCPU order) the reference's
        # progress pass applies at that epoch.  Completions cannot fire
        # inside a batch (the horizon's exclusive finite-work floor),
        # so the mirrored `if` arm is a guard, not a live path.
        totals = gather.totals
        log = machine.log
        for i in range(k):
            vcpu = running_vcpus[i]
            w = vcpu.workload
            total = totals[i]
            if total is not None and w.instructions_done >= total:
                pcpu = running_pcpus[i]
                vcpu.mark_done(end_batch)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end_batch, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                pcpu = running_pcpus[i]
                vcpu.block_until(end_batch + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # --- LLC warmth commit -----------------------------------------
        warm = X[kb, :k]
        for node_id, members in enumerate(gather.node_members):
            pos = inv.node_pos_arr[node_id]
            self._cache_advance_batch[node_id](
                epoch,
                kb,
                members,
                warm[pos].tolist() if pos is not None else (),
                gather.node_member_sets[node_id],
            )
        return end_batch

    def _advance_replay(
        self, now: float, epoch: float, kb: int, plan: Optional[list]
    ) -> float:
        """Short horizon: replay the per-epoch path directly.

        Each interior epoch runs the (no-op) idle-PCPU steal attempts
        the reference's scheduling pass would make — or, at a fused tick
        boundary, the *real* tick plus a full scheduling pass — then the
        inherited singleton advance.  The same calls in the same order,
        so equality is by construction rather than by kernel proof;
        per-epoch live state makes slice projections unnecessary.
        """
        machine = self.machine
        profiler = machine.profiler
        policy = machine.policy
        ticks = {ft[0]: ft for ft in plan} if plan else None
        t = now
        for j in range(kb):
            if j > 0:
                ft = ticks.get(j) if ticks else None
                if ft is not None:
                    t0 = profiler.start()
                    machine._run_tick(t)
                    machine._schedule_pass(t)
                    profiler.stop("tick_fuse", t0)
                    self._fused_tick_total += 1
                    self._repick_total += len(ft[3])
                else:
                    for pcpu in machine.pcpus:
                        if pcpu.current is None:
                            t0 = profiler.start()
                            policy.steal(pcpu, t, under_only=False)
                            profiler.stop("balance", t0)
            self.advance_running(t, epoch)
            t = t + epoch
        return t

    def _build_fused_plan(
        self, gather: _Gather, running_vcpus: List[Vcpu], k: int
    ) -> tuple:
        """Assignment-static structures for :meth:`_advance_replay_fused`.

        Everything here depends only on the (keys, pcpus, generations)
        signature the gather is memoised under, so it is built once and
        cached on ``gather.fused``; per batch only the warmth lists and
        the placement mirrors are reseeded from live state.  Returns
        ``(flat_plan, flat_charge, row_a, row_b, miss, mix_rows,
        reseed_w, row_pairs, over_pairs, rloc, oloc, w_by_node,
        scalars)``:

        * ``flat_plan`` — per-member miss-curve tuples ``(w_l, j, pos,
          share, minmr, span, shape, bad)`` in node-then-member order;
          ``share`` is the same precomputed ``min(1.0, alloc / ws)``
          the per-epoch path multiplies in, ``bad`` flags ``ws <= 0``.
        * ``flat_charge`` — ``(w_l, j, charge_factor)`` warmth-charge
          tuples in the same order.
        * ``row_a`` / ``row_b`` — zipped per-VCPU constant tuples for
          the two epoch passes (one ``UNPACK_SEQUENCE`` per iteration
          instead of a pile of list subscripts).
        * ``miss`` / ``mix_rows`` — scratch lists fully overwritten
          each epoch.
        * ``reseed_w`` — ``(warmth_table, members, w_l)`` per node.
        * ``row_pairs`` / ``over_pairs`` — distinct ``(live, mirror)``
          list pairs; aliased readers share one mirror so intra-epoch
          interleavings replay exactly.
        * ``w_by_node`` — node id → warmth list for the final commit.
        * ``scalars`` — hoisted latency/topology constants for the
          inlined dual-socket solve.
        """
        reseed_w = []
        w_by_node: Dict[int, list] = {}
        flat_plan = []
        flat_charge = []
        for node_id, members in enumerate(gather.node_members):
            if not members:
                continue
            positions = gather.node_positions[node_id]
            w_l = [0.0] * len(members)
            reseed_w.append((self._warmth_tables[node_id], members, w_l))
            w_by_node[node_id] = w_l
            for j, (share, minmr, span, shape, bad) in enumerate(
                gather.node_miss_tuples[node_id]
            ):
                flat_plan.append(
                    (w_l, j, positions[j], share, minmr, span, shape, bad)
                )
            for j, cf in enumerate(gather.node_charge[node_id]):
                flat_charge.append((w_l, j, cf))

        row_src = gather.mix_row_src
        over_src = gather.mix_over_src
        rloc_by_id: Dict[int, list] = {}
        oloc_by_id: Dict[int, list] = {}
        rloc: list = [None] * k
        oloc: list = [None] * k
        ns_l = [0] * k
        row_pairs = []
        over_pairs = []
        for i in range(k):
            row = row_src[i]
            loc = rloc_by_id.get(id(row))
            if loc is None:
                loc = [0.0, 0.0]
                rloc_by_id[id(row)] = loc
                row_pairs.append((row, loc))
            rloc[i] = loc
            over = over_src[i]
            loc = oloc_by_id.get(id(over))
            if loc is None:
                loc = [0.0, 0.0]
                oloc_by_id[id(over)] = loc
                over_pairs.append((over, loc))
            oloc[i] = loc
            ns_l[i] = running_vcpus[i].domain.placement.num_slices

        node_of = gather.node_of
        miss = [0.0] * k
        mix_rows = [[0.0, 0.0] for _ in range(k)]
        node0_l = [node_of[i] == 0 for i in range(k)]
        # One merged per-VCPU tuple list serves both epoch passes: a
        # single UNPACK_SEQUENCE per iteration replaces a pile of list
        # subscripts, and one zip build (horizons are short, p50 ~3, so
        # build cost matters more than unpack width).
        rows = list(
            zip(
                gather.conc_l,
                gather.anti_l,
                rloc,
                oloc,
                gather.rpi,
                gather.cpi_base,
                gather.mlp,
                gather.clock,
                gather.ns2c,
                mix_rows,
                node0_l,
                gather.totals,
                gather.drift,
                ns_l,
            )
        )

        scalars = self._fused_scalars
        if scalars is None:
            machine = self.machine
            lat = machine.config.latency
            memsys = machine.memsys
            mnodes = memsys.topology.nodes
            cap = 8.0
            scalars = self._fused_scalars = (
                lat.llc_hit_ns,
                lat.local_dram_ns,
                mnodes[0].imc_bandwidth,
                mnodes[1].imc_bandwidth,
                memsys.topology.qpi_bandwidth,
                memsys.latency.local_dram_ns,
                memsys.latency.remote_extra_ns,
                cap,
                1.0 - 1.0 / cap,
                BYTES_PER_MISS,
            )
        return (
            flat_plan,
            flat_charge,
            rows,
            miss,
            mix_rows,
            reseed_w,
            row_pairs,
            over_pairs,
            rloc,
            oloc,
            w_by_node,
            scalars,
        )

    def begin_fused_batch(
        self, now: float, epoch: float, kb: int, kb_max: Optional[int] = None
    ) -> Optional[tuple]:
        """Stacked-engine entry: seed a fused batch without running it.

        Mirrors the decision chain :meth:`advance_batch` walks before
        committing to :meth:`_advance_replay_fused` — short horizon, no
        fused ticks, no speculation, dual-socket, default contention
        depth, every PCPU running — and, when all of it holds, performs
        the gather memoisation and state seeding but **not** the epoch
        loop.  Returns ``(state, end_batch)``; the caller must then run
        ``kb`` epochs over ``state`` (via :meth:`_fused_epochs` or a
        bitwise-equal kernel) and call :meth:`finish_fused_batch`.
        Returns None when any precondition fails, in which case the
        caller falls back to :meth:`advance_batch` unchanged — the
        checks here are a conservative mirror, so a None is always
        safe.

        ``kb_max`` overrides the solo replay cap: the stacked engine
        passes a larger bound (and accepts ``kb == 1`` singletons)
        because batch partitioning is bitwise-neutral — running the
        replay as one ``kb`` batch, as chunks, or epoch by epoch
        evolves the same state.  Solo callers keep the default cap.
        """
        if kb_max is None:
            if kb <= 1 or kb > self._REPLAY_MAX:
                return None
        elif kb < 1 or kb > kb_max:
            return None
        if self._fuse_plan or self._speculative or not self.two_node:
            return None
        machine = self.machine
        if machine.config.contention_iterations != 2:
            return None
        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is None:
                return None
            running_pcpus.append(pcpu)
            running_vcpus.append(cur)
            sig_keys.append(cur.key)
            sig_pids.append(pcpu.pcpu_id)
        k = len(running_vcpus)
        if k == 0:
            return None

        # Same gather memoisation as advance_batch.
        kg = self.key_gen
        sig_kp = (tuple(sig_keys), tuple(sig_pids))
        gens = tuple(kg[key] for key in sig_keys)
        sig = (sig_kp, gens)
        if sig != self._gather_sig:
            cache = self._gather_cache
            entry = cache.get(sig_kp)
            if entry is None or entry[0] != gens:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig_kp] = (gens, gather)
            else:
                gather = entry[1]
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather

        self._fuse_plan = None
        self._batch_calls += 1
        t = now
        for _ in range(kb):
            t = t + epoch
        state = self._fused_seed(gather, running_pcpus, running_vcpus, k)
        state.kb = kb
        return state, t

    def finish_fused_batch(
        self, state: "_FusedState", end_batch: float, epoch: float, kb: int
    ) -> float:
        """Commit a batch begun by :meth:`begin_fused_batch`."""
        return self._fused_commit(state, end_batch, epoch, kb)

    def _fused_seed(
        self,
        gather: _Gather,
        running_pcpus: list,
        running_vcpus: List[Vcpu],
        k: int,
    ) -> "_FusedState":
        """Seed the hoisted per-batch state for the fused replay.

        Reseeds the assignment-static plan's warmth and placement
        mirrors from live state and snapshots every accumulator chain
        (busy time, PMU banks, progress, placement mixes) into Python
        locals — the lists the epoch loop then evolves in place.
        """
        machine = self.machine

        # --- Assignment-static plan, cached on the gather --------------
        plan = gather.fused
        if plan is None:
            plan = gather.fused = self._build_fused_plan(
                gather, running_vcpus, k
            )
        (
            flat_plan,
            flat_charge,
            rows,
            miss,
            mix_rows,
            reseed_w,
            row_pairs,
            over_pairs,
            rloc,
            oloc,
            w_by_node,
            scalars,
        ) = plan

        # Reseed the state-dependent inputs: member warmth from the live
        # tables, placement-row / `overall` mirrors from the live lists
        # (aliased readers share one mirror, so intra-epoch
        # interleavings replay exactly).
        for table, members, w_l in reseed_w:
            for j, key in enumerate(members):
                w_l[j] = table.get(key, 0.0)
        for src, loc in row_pairs:
            loc[0] = src[0]
            loc[1] = src[1]
        for src, loc in over_pairs:
            loc[0] = src[0]
            loc[1] = src[1]

        # Accumulator seeds (live values in, finals out).
        pmu = machine.pmu
        banks = gather.pmu_banks
        rows_arr = gather.pmu_rows
        matrix = pmu._node_matrix
        state = _FusedState()
        state.gather = gather
        state.plan = plan
        state.k = k
        state.running_pcpus = running_pcpus
        state.running_vcpus = running_vcpus
        state.pend = [p.overhead_pending_s for p in running_pcpus]
        state.busy = [p.busy_time_s for p in running_pcpus]
        state.mbusy = machine.busy_time_s
        state.idone = [v.workload.instructions_done for v in running_vcpus]
        state.sused = [v.slice_used_s for v in running_vcpus]
        state.burst = [v.run_burst_remaining_s for v in running_vcpus]
        state.bi = [b.instructions for b in banks]
        state.br = [b.llc_refs for b in banks]
        state.bm = [b.llc_misses for b in banks]
        state.bl = [b.local_accesses for b in banks]
        state.bx = [b.remote_accesses for b in banks]
        state.m0 = [float(matrix[r, 0]) for r in rows_arr.tolist()]
        state.m1 = [float(matrix[r, 1]) for r in rows_arr.tolist()]
        return state

    def _advance_replay_fused(
        self,
        end_batch: float,
        epoch: float,
        kb: int,
        gather: _Gather,
        running_pcpus: list,
        running_vcpus: List[Vcpu],
        k: int,
    ) -> float:
        """Short event-free horizon: scalar replay with hoisted state.

        Runs :meth:`advance_running`'s exact arithmetic — same Python-
        float expressions, same accumulation order — for ``kb`` epochs,
        but performs the running-set scan, gather lookup, warmth/PMU/
        placement reads and every state commit once per batch instead
        of once per epoch.  All accumulator chains (busy time, PMU
        banks, placement drift, page-mix rows, the shared `overall`
        vectors) evolve on Python locals seeded from live state; the
        finals are written back after the last epoch, which is bitwise
        neutral because nothing else reads them mid-batch (the caller
        guarantees no fused tick, no idle PCPU, no speculation and an
        event-free interior).  Dual-socket only.

        Split into seed / epochs / commit phases so the stacked engine
        (:mod:`repro.xen.stacked`) can interleave many machines' epoch
        loops; running them back to back here is the solo path.
        """
        state = self._fused_seed(gather, running_pcpus, running_vcpus, k)
        self._fused_epochs(state, epoch, kb)
        return self._fused_commit(state, end_batch, epoch, kb)

    def _fused_epochs(
        self, state: "_FusedState", epoch: float, kb: int
    ) -> None:
        """Run ``kb`` epochs of the fused scalar replay over ``state``.

        Pure accumulator evolution — every read and write goes through
        ``state``'s lists (shared with the seeded plan), so running the
        loop in chunks (``kb = a`` then ``kb = b``) is bitwise the
        single ``kb = a + b`` call.  The stacked engine relies on both
        properties: chunked resumption for lane lockstep, and the state
        contract for its vectorized kernel.
        """
        (
            flat_plan,
            flat_charge,
            rows,
            miss,
            mix_rows,
            reseed_w,
            row_pairs,
            over_pairs,
            rloc,
            oloc,
            w_by_node,
            scalars,
        ) = state.plan
        (
            hit_ns,
            local_dram,
            bw0,
            bw1,
            qpi_bw,
            s_dram,
            s_remote,
            cap,
            knee,
            bpm,
        ) = scalars
        pend_l = state.pend
        busy_l = state.busy
        mbusy = state.mbusy
        id_l = state.idone
        slice_l = state.sused
        burst_l = state.burst
        bi_l = state.bi
        br_l = state.br
        bm_l = state.bm
        bl_l = state.bl
        bx_l = state.bx
        m0_l = state.m0
        m1_l = state.m1

        # --- Per-epoch replay ------------------------------------------
        # Each epoch preserves the reference phase order: miss curves,
        # then page mix + first contention round (rates feed traffic,
        # traffic feeds the inlined dual-socket solve), then penalties +
        # final rates + progress/PMU/drift, then warmth charge.  Merging
        # the per-i loops is bitwise neutral because no merged statement
        # reads another VCPU's output from the same pass; every
        # cross-VCPU accumulator (imc/qpi flows, machine busy time)
        # still folds in ascending VCPU order.
        for _tt in range(kb):
            for w_l, j, pos, share, minmr, span, shape, bad in flat_plan:
                f = 1.0 if bad else share * w_l[j]
                missing = 1.0 - f if shape == 1.0 else (1.0 - f) ** shape
                miss[pos] = minmr + span * missing

            imc0 = 0.0
            imc1 = 0.0
            qpi_t = 0.0
            i = 0
            for (
                c, a, row, over, rp, cb, ml, ck, n2, mrow, nd0, _t, _d, _n
            ) in rows:
                m0 = c * row[0] + a * over[0]
                m1 = c * row[1] + a * over[1]
                s = m0 + m1
                x0 = m0 / s
                x1 = m1 / s
                mrow[0] = x0
                mrow[1] = x1
                mr = miss[i]
                i += 1
                per_ref_ns = (1.0 - mr) * hit_ns + mr * local_dram
                stall = rp * per_ref_ns * n2 / ml
                rate = ck / (cb + stall)
                t = rate * rp * mr * bpm
                flow0 = t * x0
                flow1 = t * x1
                imc0 += flow0
                imc1 += flow1
                if nd0:
                    qpi_t += flow1
                else:
                    qpi_t += flow0

            rho0 = imc0 / bw0
            rho1 = imc1 / bw1
            factor0 = cap if rho0 >= knee else 1.0 / (1.0 - rho0)
            factor1 = cap if rho1 >= knee else 1.0 / (1.0 - rho1)
            qpi_rho = qpi_t / qpi_bw
            qpi_factor = cap if qpi_rho >= knee else 1.0 / (1.0 - qpi_rho)
            dram0 = s_dram * factor0
            dram1 = s_dram * factor1
            remote_add = s_remote * qpi_factor

            i = 0
            for (
                _c, _a, row, over, rp, cb, ml, ck, n2, mrow, nd0, total,
                d, nsl,
            ) in rows:
                penalty = 0.0
                frac = mrow[0]
                if frac > 0:
                    penalty += (
                        frac * dram0 if nd0 else frac * (dram0 + remote_add)
                    )
                frac = mrow[1]
                if frac > 0:
                    penalty += (
                        frac * (dram1 + remote_add) if nd0 else frac * dram1
                    )
                mr = miss[i]
                per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty
                stall = rp * per_ref_ns * n2 / ml
                rate = ck / (cb + stall)

                pending = pend_l[i]
                if pending > 0.0:
                    used = pending if pending < epoch else epoch
                    pend_l[i] = pending - used
                    compute = epoch - used
                else:
                    compute = epoch
                busy_l[i] += epoch
                mbusy += epoch
                done = rate * compute
                if total is not None:
                    remaining = total - id_l[i]
                    if remaining < 0.0:
                        remaining = 0.0
                    if remaining < done:
                        done = remaining
                r = done * rp
                mi = r * mr
                a0 = mi * mrow[0]
                a1 = mi * mrow[1]
                m0_l[i] += a0
                m1_l[i] += a1
                bi_l[i] += done
                br_l[i] += r
                bm_l[i] += mi
                local = a0 if nd0 else a1
                bl_l[i] += local
                bx_l[i] += (a0 + a1) - local

                id_l[i] += done
                slice_l[i] += epoch
                burst_l[i] -= epoch
                i += 1
                if d > 0:
                    r0 = row[0]
                    r1 = row[1]
                    keep = 1.0 - d
                    n0 = r0 * keep
                    n1 = r1 * keep
                    if nd0:
                        n0 = n0 + d
                    else:
                        n1 = n1 + d
                    row[0] = n0
                    row[1] = n1
                    over[0] += (n0 - r0) / nsl
                    over[1] += (n1 - r1) / nsl

            for w_l, j, cf in flat_charge:
                w_l[j] = 1.0 - (1.0 - w_l[j]) * cf

        state.mbusy = mbusy

    def _fused_commit(
        self, state: "_FusedState", end_batch: float, epoch: float, kb: int
    ) -> float:
        """Write a fused batch's finals back and run batch-final events."""
        machine = self.machine
        gather = state.gather
        k = state.k
        running_pcpus = state.running_pcpus
        running_vcpus = state.running_vcpus
        (
            flat_plan,
            flat_charge,
            rows,
            miss,
            mix_rows,
            reseed_w,
            row_pairs,
            over_pairs,
            rloc,
            oloc,
            w_by_node,
            scalars,
        ) = state.plan
        pend_l = state.pend
        busy_l = state.busy
        mbusy = state.mbusy
        id_l = state.idone
        slice_l = state.sused
        burst_l = state.burst
        bi_l = state.bi
        br_l = state.br
        bm_l = state.bm
        bl_l = state.bl
        bx_l = state.bx
        m0_l = state.m0
        m1_l = state.m1
        drift = gather.drift
        totals = gather.totals
        row_src = gather.mix_row_src
        over_src = gather.mix_over_src
        banks = gather.pmu_banks
        rows_arr = gather.pmu_rows
        matrix = machine.pmu._node_matrix

        # --- Commit ----------------------------------------------------
        for i in range(k):
            pcpu = running_pcpus[i]
            pcpu.overhead_pending_s = pend_l[i]
            pcpu.busy_time_s = busy_l[i]
            vcpu = running_vcpus[i]
            vcpu.workload.instructions_done = id_l[i]
            vcpu.slice_used_s = slice_l[i]
            vcpu.run_burst_remaining_s = burst_l[i]
        machine.busy_time_s = mbusy

        rows_l = rows_arr.tolist()
        for i in range(k):
            b = banks[i]
            b.instructions = bi_l[i]
            b.llc_refs = br_l[i]
            b.llc_misses = bm_l[i]
            b.local_accesses = bl_l[i]
            b.remote_accesses = bx_l[i]
            r = rows_l[i]
            matrix[r, 0] = m0_l[i]
            matrix[r, 1] = m1_l[i]

        committed_rows: Set[int] = set()
        for i in range(k):
            if drift[i] <= 0:
                continue
            row = row_src[i]
            rid = id(row)
            if rid not in committed_rows:
                committed_rows.add(rid)
                loc = rloc[i]
                row[0] = loc[0]
                row[1] = loc[1]
            running_vcpus[i].domain.placement._np_stale = True
        for i in range(k):
            over = over_src[i]
            loc = oloc[i]
            over[0] = loc[0]
            over[1] = loc[1]

        # Batch-final transitions, in running order (interior epochs are
        # transition-free by the horizon contract; the burst cap is
        # inclusive, so a burst draining to zero blocks here).
        policy = machine.policy
        log = machine.log
        for i in range(k):
            vcpu = running_vcpus[i]
            w = vcpu.workload
            total = totals[i]
            if total is not None and w.instructions_done >= total:
                pcpu = running_pcpus[i]
                vcpu.mark_done(end_batch)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end_batch, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                pcpu = running_pcpus[i]
                vcpu.block_until(end_batch + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # --- LLC warmth commit -----------------------------------------
        # Every node advances (a member-less node still decays its
        # warm entries), exactly like the per-epoch path.
        for node_id, members in enumerate(gather.node_members):
            self._cache_advance_batch[node_id](
                epoch,
                kb,
                members,
                w_by_node.get(node_id, ()),
                gather.node_member_sets[node_id],
            )
        return end_batch

    # ------------------------------------------------------------------
    # Horizon statistics
    # ------------------------------------------------------------------
    def horizon_stats(self) -> Optional[dict]:
        """Horizon-length distribution and fusion counters for this run.

        Returns None before the first horizon decision.  ``p50``/``p90``
        are weighted percentiles over per-decision horizon lengths (the
        smallest length covering that fraction of decisions); ``epochs``
        is their weighted sum, ``batches`` counts advance_batch calls
        (horizons of length > 1).  Counters reset with the engine, so a
        run resumed from a checkpoint reports post-resume statistics
        only.
        """
        hist = self._horizon_hist
        if not hist:
            return None
        lengths = sorted(hist)
        steps = sum(hist.values())

        def pct(q: float) -> int:
            target = q * steps
            cum = 0
            for length in lengths:
                cum += hist[length]
                if cum >= target:
                    return length
            return lengths[-1]

        return {
            "horizons": steps,
            "epochs": sum(length * n for length, n in hist.items()),
            "batches": self._batch_calls,
            "fused_ticks": self._fused_tick_total,
            "fused_repicks": self._repick_total,
            "spec_attempts": self._spec_attempts,
            "spec_misses": self._spec_misses,
            "p50": pct(0.5),
            "p90": pct(0.9),
            "max": lengths[-1],
            "hist": [[length, hist[length]] for length in lengths],
        }
