"""Structure-of-arrays fast path for the epoch engine.

The reference implementation in :mod:`repro.xen.simulator` prices every
epoch through per-VCPU dictionaries (demands, rates, traffic, penalties,
page mixes) and rescans all VCPUs for wakeups, phase changes and finite
completion.  That is the clearest possible statement of the model — and
the hot path of every experiment, so :class:`VectorEngine` re-implements
it with flat arrays keyed by VCPU index, cached invariants and event
heaps.

**The contract is bitwise equality**: for any scenario and seed, a run
through the vector engine produces exactly the same simulated results
(finish times, counter values, migration counts, overhead) as the
reference loop.  Four rules keep that true:

* elementwise float64 arithmetic (``+ - * /``) produces identical bits
  whether it runs through numpy ufuncs or Python scalars, so each
  per-VCPU expression may use whichever is faster at the machine's
  scale — but *reductions* may not be reordered: every ordered
  accumulation (IMC/QPI traffic, per-miss penalties, busy time) stays
  a sequential loop in exactly the reference's order;
* every cached invariant (``refs_per_instruction * intensity_multiplier``,
  the memoised :class:`CacheDemand`, the LLC warmth charge factor, the
  first-touch drift per epoch, the waterfilled LLC shares) depends only
  on the profile, the phase multipliers and the co-runner set, so it is
  invalidated precisely when :meth:`VcpuWorkload.maybe_phase_change`
  fires (a generation counter) or the running set changes;
* heap-driven wake and phase processing replays due events in VCPU-key
  order — the order the reference scans ``machine.vcpus`` — because
  wake handling mutates shared queue and RNG state;
* state *transitions* (done/block, context-switch hooks, overhead
  charges) happen in the reference's per-VCPU order even though the
  arithmetic before them is batched.

The engine holds only *derived* state; all simulation state lives in
the machine's VCPUs, workloads and hardware models.  Rebuilding the
engine from a live machine (``Machine.add_domain`` invalidates it) is
therefore lossless.
"""

from __future__ import annotations

import heapq
import math
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.hardware.cache import CacheDemand, LLCState
from repro.hardware.memory import BYTES_PER_MISS
from repro.xen.vcpu import Vcpu, VcpuState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["VectorEngine", "BatchedEngine"]


class _KeyArrays:
    """Key-indexed ndarray mirrors of the engine's per-VCPU constants.

    Rebuilt lazily once per phase generation so `_BatchInvariants` can
    assemble its per-assignment vectors with a handful of fancy-index
    gathers instead of per-element Python loops.  Fancy indexing copies
    the exact float64 bits, so everything read from here is bitwise
    identical to the scalar lists it mirrors.
    """

    __slots__ = (
        "rpi", "cpi", "mlp", "conc", "anti", "drift", "keep",
        "clock", "ns2c",
    )

    def __init__(self, engine: "VectorEngine") -> None:
        self.rpi = np.array(engine.rpi)
        self.cpi = np.array(engine.cpi_base)
        self.mlp = np.array(engine.mlp)
        conc = np.array(engine.conc)
        self.conc = conc
        # Elementwise (1.0 - x): identical bits to the scalar form.
        self.anti = 1.0 - conc
        drift = np.array(engine.drift_amount)
        self.drift = drift
        self.keep = 1.0 - drift
        self.clock = np.array(engine.node_clock)
        self.ns2c = np.array(engine.node_ns2c)


class _Gather:
    """Per-running-set arrays, valid while the set and phases hold.

    A VCPU→PCPU assignment typically survives a whole 30 ms slice
    (dozens of epochs), so everything derivable from *which* VCPUs run
    *where* — profile constants, per-node co-runner groups, waterfilled
    LLC shares, page-mix gather indices — is built once per assignment
    and reused until the assignment or a phase generation changes.
    """

    __slots__ = (
        "keys",
        "node_of",
        "rpi",
        "cpi_base",
        "mlp",
        "clock",
        "ns2c",
        "drift",
        "totals",
        "conc_col",
        "anti_conc_col",
        "conc_l",
        "anti_l",
        "mix_row_src",
        "mix_over_src",
        "pmu_rows",
        "node_members",
        "node_member_sets",
        "node_charge",
        "node_positions",
        "node_solve",
        "node_batch",
        "mix_groups",
        "binv",
    )

    def __init__(self, engine: "VectorEngine", pcpus, vcpus, k: int) -> None:
        keys = [v.key for v in vcpus]
        node_of = [p.node for p in pcpus]
        self.keys = keys
        self.node_of = node_of
        self.rpi = [engine.rpi[key] for key in keys]
        self.cpi_base = [engine.cpi_base[key] for key in keys]
        self.mlp = [engine.mlp[key] for key in keys]
        self.clock = [engine.node_clock[n] for n in node_of]
        self.ns2c = [engine.node_ns2c[n] for n in node_of]
        self.drift = [engine.drift_amount[key] for key in keys]
        self.totals = [
            v.workload.profile.total_instructions for v in vcpus
        ]

        # Sub-memoised pieces: many distinct global signatures (the
        # per-PCPU queue rotations multiply) share the same per-node
        # co-runner sets, concentration columns, page-mix groups and
        # PMU rows, so those live in engine-level caches.
        keys_t = tuple(keys)
        cols = engine._conc_cache.get(keys_t)
        if cols is None:
            conc_l = [engine.conc[key] for key in keys]
            conc = np.array(conc_l)
            # (1.0 - concentration), elementwise — identical bits to
            # the scalar subtraction in MemoryPlacement.page_mix.
            cols = (
                conc[:, None],
                (1.0 - conc)[:, None],
                conc_l,
                [1.0 - c for c in conc_l],
            )
            engine._conc_cache[keys_t] = cols
        self.conc_col, self.anti_conc_col, self.conc_l, self.anti_l = cols

        rows = engine._pmu_rows_cache.get(keys_t)
        if rows is None:
            rows = engine.machine.pmu.rows_for(keys)
            engine._pmu_rows_cache[keys_t] = rows
        self.pmu_rows = rows

        # Per-node co-runner groups, sorted by key (the order the
        # reference's sorted(demands) solve iterates).  The waterfilled
        # allocations depend only on capacity and demands — not warmth —
        # so they are computed once per co-runner set, along with the
        # flattened miss-rate-curve scalars the per-epoch loop reads.
        num_nodes = len(engine.node_clock)
        index_of = {key: i for i, key in enumerate(keys)}
        members: List[List[int]] = [[] for _ in range(num_nodes)]
        for i in range(k):
            members[node_of[i]].append(keys[i])
        for m in members:
            m.sort()
        self.node_members = members
        self.node_positions = [
            [index_of[key] for key in m] for m in members
        ]
        self.node_member_sets = []
        self.node_charge = []
        self.node_solve = []
        self.node_batch = []
        caches = engine.machine.caches
        for node in range(num_nodes):
            m = members[node]
            node_key = (node, tuple(m))
            entry = engine._node_cache.get(node_key)
            if entry is None:
                demands = [engine.demand[key] for key in m]
                charge_l = [engine.charge_factor[key] for key in m]
                allocs = caches[node].occupancy_shares(demands)
                ws_l = [d.working_set_bytes for d in demands]
                minmr_l = [d.min_miss_rate for d in demands]
                span_l = [d.max_miss_rate - d.min_miss_rate for d in demands]
                shape_l = [d.curve_shape for d in demands]
                # Batch-kernel constants, member-ordered.  The capped
                # share `min(1.0, alloc / ws)` is exactly the scalar the
                # reference recomputes every epoch — same inputs, same
                # float — so it is safe to freeze per co-runner set.
                share_l = [
                    min(1.0, allocs[j] / ws_l[j]) if ws_l[j] > 0 else 0.0
                    for j in range(len(m))
                ]
                entry = (
                    frozenset(m),
                    charge_l,
                    (allocs, ws_l, minmr_l, span_l, shape_l),
                    (
                        np.array([share_l, minmr_l, span_l, charge_l]),
                        tuple(j for j, ws in enumerate(ws_l) if ws <= 0),
                        tuple(
                            (j, s) for j, s in enumerate(shape_l) if s != 1.0
                        ),
                    ),
                )
                engine._node_cache[node_key] = entry
            self.node_member_sets.append(entry[0])
            self.node_charge.append(entry[1])
            self.node_solve.append(entry[2])
            self.node_batch.append(entry[3])

        # Page-mix gather plan.  Dual-socket machines get direct
        # references to each VCPU's placement-mirror row (stable list
        # objects, see MemoryPlacement); other topologies group VCPUs
        # by placement object so each group's slice rows load with one
        # fancy index.
        plan = engine._mix_cache.get(keys_t)
        if plan is None:
            if engine.two_node:
                row_src = []
                over_src = []
                for vcpu in vcpus:
                    placement = vcpu.domain.placement
                    row_src.append(placement._rows2[vcpu.workload.slice_id])
                    over_src.append(placement._over2)
                plan = (None, row_src, over_src)
            else:
                by_placement: Dict[int, Tuple[object, List[int], List[int]]] = {}
                for i in range(k):
                    vcpu = vcpus[i]
                    placement = vcpu.domain.placement
                    group = by_placement.get(id(placement))
                    if group is None:
                        group = (placement, [], [])
                        by_placement[id(placement)] = group
                    group[1].append(vcpu.workload.slice_id)
                    group[2].append(i)
                groups = [
                    (placement, np.array(slices), np.array(positions))
                    for placement, slices, positions in by_placement.values()
                ]
                plan = (groups, None, None)
            engine._mix_cache[keys_t] = plan
        self.mix_groups, self.mix_row_src, self.mix_over_src = plan
        #: lazily-built macro-step constants (see _BatchInvariants);
        #: sharing the gather's cache slot keeps one memo per signature.
        self.binv = None


class VectorEngine:
    """Vectorized epoch engine bound to one :class:`Machine`.

    Built lazily on the first stepped epoch and discarded whenever the
    machine's VCPU population changes; construction scans the live
    machine state once, after which per-epoch work touches only the
    VCPUs that are actually running, waking or changing phase.
    """

    #: True on engines that implement compute_horizon/advance_batch;
    #: the stepper consults it before attempting a macro-step.
    supports_batch = False

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        self.epoch = machine.config.epoch_s
        topo = machine.topology
        vcpus = machine.vcpus

        # Per-node constants.  ``ns_to_cycles`` is precomputed exactly as
        # the reference evaluates it (clock_hz * 1e-9).
        self.node_clock: List[float] = [node.clock_hz for node in topo.nodes]
        self.node_ns2c: List[float] = [c * 1e-9 for c in self.node_clock]
        self.two_node = topo.num_nodes == 2

        # Per-VCPU invariants, keyed by VCPU key.  Profile constants are
        # immutable; the phase-dependent ones (rpi, demand, warmth
        # charge) are refreshed by refresh_vcpu() on phase change.
        n = len(vcpus)
        self.cpi_base: List[float] = [v.workload.profile.cpi_base for v in vcpus]
        self.mlp: List[float] = [v.workload.profile.mlp for v in vcpus]
        self.conc: List[float] = [
            v.workload.profile.slice_concentration for v in vcpus
        ]
        self.drift_amount: List[float] = [
            min(1.0, v.workload.profile.touch_rate * self.epoch) for v in vcpus
        ]
        self.rpi: List[float] = [0.0] * n
        self.demand: List[Optional[CacheDemand]] = [None] * n
        self.charge_factor: List[float] = [1.0] * n
        self._generation = 0
        #: per-key phase generation: bumped by refresh_vcpu(), woven
        #: into the gather signature so a phase change invalidates only
        #: the cached assignments that include the changed VCPU —
        #: everyone else's memos survive.
        self.key_gen: List[int] = [0] * n
        # Cached per-running-set gathers (see _Gather).  Assignments
        # recur as queues rotate, so gathers are memoised by signature;
        # the per-key generations in the signature strand stale entries
        # (the size cap eventually drops them).
        self._gather: Optional[_Gather] = None
        self._gather_sig: Optional[Tuple] = None
        self._gather_cache: Dict[Tuple, _Gather] = {}
        # Sub-memos shared across gathers.  The first two depend only on
        # immutable profile/topology facts; the last two are phase-
        # dependent, so refresh_vcpu() evicts their entries mentioning
        # the refreshed key.
        self._conc_cache: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}
        self._pmu_rows_cache: Dict[Tuple, np.ndarray] = {}
        self._node_cache: Dict[Tuple, Tuple] = {}
        self._mix_cache: Dict[Tuple, List] = {}
        # ndarray mirrors of the per-key lists, rebuilt lazily when the
        # phase generation moves (see _KeyArrays / key_arrays()).
        self._key_arrays: Optional[_KeyArrays] = None
        self._key_arrays_gen = -1
        for vcpu in vcpus:
            self.refresh_vcpu(vcpu)

        # Live per-node warmth tables (stable dict objects) and bound
        # per-LLC advance methods (skips the CacheModel hop per epoch).
        self._warmth_tables = [
            cache.state.warmth_table for cache in machine.caches
        ]
        self._cache_advance = [
            cache.state.advance_compact for cache in machine.caches
        ]

        # Reusable page-mix gather buffers, sliced to the running count.
        num_pcpus = len(machine.pcpus)
        num_nodes = len(self.node_clock)
        self._rows_buf = np.empty((num_pcpus, num_nodes))
        self._over_buf = np.empty((num_pcpus, num_nodes))

        # Wake-time min-heap replacing the all-VCPU step-2 scan.  Lazy
        # invalidation: entries are validated against live VCPU state at
        # pop time.  Every BLOCKED-with-finite-wake VCPU has an entry.
        self.wake_heap: List[Tuple[float, int]] = [
            (v.wake_time, v.key)
            for v in vcpus
            if v.state is VcpuState.BLOCKED and math.isfinite(v.wake_time)
        ]
        heapq.heapify(self.wake_heap)

        # Phase-change min-heap replacing the per-epoch phase scan.
        self.phase_heap: List[Tuple[float, int]] = [
            (v.workload.next_phase_change, v.key)
            for v in vcpus
            if v.workload.active
            and not v.workload.done
            and v.workload.profile.phase is not None
            and math.isfinite(v.workload.next_phase_change)
        ]
        heapq.heapify(self.phase_heap)

        # Finite-work countdown replacing the _all_finite_done rescan.
        finite = [
            w
            for d in machine.domains
            for w in d.workloads
            if w.active and w.profile.is_finite
        ]
        self.has_finite = bool(finite)
        self.finite_remaining = sum(1 for w in finite if not w.done)

    # ------------------------------------------------------------------
    # Invariant maintenance
    # ------------------------------------------------------------------
    def refresh_vcpu(self, vcpu: Vcpu) -> None:
        """Recompute phase-dependent invariants after a phase change."""
        w = vcpu.workload
        key = vcpu.key
        self.rpi[key] = w.profile.refs_per_instruction * w.intensity_multiplier
        demand = w.cache_demand()
        self.demand[key] = demand
        tau = max(1e-4, demand.working_set_bytes / LLCState.FILL_BANDWIDTH)
        self.charge_factor[key] = math.exp(-self.epoch / tau)
        self._generation += 1
        self.key_gen[key] += 1
        # Selective eviction: only memos that embed this key's phase-
        # dependent data (demand, charge factor, slice id) are stale.
        # Gather-cache entries mentioning the key become unreachable
        # through their per-key-generation signatures; the size cap
        # reclaims them.
        node_cache = self._node_cache
        for nk in [nk for nk in node_cache if key in nk[1]]:
            del node_cache[nk]
        mix_cache = self._mix_cache
        for kt in [kt for kt in mix_cache if key in kt]:
            del mix_cache[kt]

    def key_arrays(self) -> _KeyArrays:
        """Current-generation ndarray mirrors of the per-key constants."""
        if self._key_arrays_gen != self._generation:
            self._key_arrays = _KeyArrays(self)
            self._key_arrays_gen = self._generation
        return self._key_arrays

    # ------------------------------------------------------------------
    # Event-driven scans
    # ------------------------------------------------------------------
    def pop_due_wakes(self, now: float) -> List[Vcpu]:
        """Due wakeups, in VCPU-key order (the reference scan order)."""
        heap = self.wake_heap
        if not heap or heap[0][0] > now:
            return []
        vcpus = self.machine.vcpus
        due: List[Vcpu] = []
        seen: Set[int] = set()
        while heap and heap[0][0] <= now:
            _, key = heapq.heappop(heap)
            vcpu = vcpus[key]
            if (
                key not in seen
                and vcpu.state is VcpuState.BLOCKED
                and vcpu.wake_time <= now
            ):
                seen.add(key)
                due.append(vcpu)
        due.sort(key=lambda v: v.key)
        return due

    def push_wake(self, vcpu: Vcpu) -> None:
        """Track a VCPU that just blocked with a finite wake time."""
        if math.isfinite(vcpu.wake_time):
            heapq.heappush(self.wake_heap, (vcpu.wake_time, vcpu.key))

    def apply_phase_changes(self, end: float) -> None:
        """Apply all phase changes due by ``end``, in VCPU-key order."""
        heap = self.phase_heap
        if not heap or heap[0][0] > end:
            return
        machine = self.machine
        vcpus = machine.vcpus
        due: Set[int] = set()
        while heap and heap[0][0] <= end:
            _, key = heapq.heappop(heap)
            w = vcpus[key].workload
            # A finished or stale entry is simply dropped; live entries
            # always carry the workload's current next_phase_change.
            if w.active and not w.done and w.next_phase_change <= end:
                due.add(key)
        for key in sorted(due):
            vcpu = vcpus[key]
            w = vcpu.workload
            if w.maybe_phase_change(end):
                machine.log.emit(
                    end, "phase_change", vcpu=vcpu.name, slice=w.slice_id
                )
                self.refresh_vcpu(vcpu)
                nxt = w.next_phase_change
                if math.isfinite(nxt):
                    heapq.heappush(heap, (nxt, key))

    def all_finite_done(self) -> bool:
        """Countdown equivalent of ``Machine._all_finite_done``."""
        return self.has_finite and self.finite_remaining == 0

    # ------------------------------------------------------------------
    # Contention + progress (the vectorized _advance_running)
    # ------------------------------------------------------------------
    def advance_running(self, now: float, epoch: float) -> None:
        machine = self.machine

        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                running_pcpus.append(pcpu)
                running_vcpus.append(cur)
                sig_keys.append(cur.key)
                sig_pids.append(pcpu.pcpu_id)
        k = len(running_vcpus)
        if k == 0:
            # Nothing ran: warmth still decays on every LLC.
            for advance in self._cache_advance:
                advance(epoch, (), ())
            return

        # Look up (or build) the per-assignment gather.
        kg = self.key_gen
        sig = (
            tuple(sig_keys),
            tuple(sig_pids),
            tuple(kg[key] for key in sig_keys),
        )
        if sig != self._gather_sig:
            cache = self._gather_cache
            gather = cache.get(sig)
            if gather is None:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig] = gather
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather

        # Per-LLC miss rates from the cached waterfill shares and the
        # current warmth (the only per-epoch input).  This is
        # CacheModel.miss_rates_from_shares unrolled over the gather's
        # flattened curve scalars — the op sequence per VCPU is exactly
        # CacheDemand.miss_rate's.
        miss = [0.0] * k
        for node_id, members in enumerate(gather.node_members):
            if not members:
                continue
            warmth = self._warmth_tables[node_id]
            positions = gather.node_positions[node_id]
            allocs, ws_l, minmr_l, span_l, shape_l = gather.node_solve[node_id]
            for j in range(len(members)):
                ws = ws_l[j]
                if ws <= 0:
                    f = 1.0
                else:
                    # In [0, 1] by construction (warmth and the capped
                    # share both are), so miss_rate's clamp is a no-op.
                    f = min(1.0, allocs[j] / ws) * warmth.get(members[j], 0.0)
                shape = shape_l[j]
                missing = 1.0 - f if shape == 1.0 else (1.0 - f) ** shape
                miss[positions[j]] = minmr_l[j] + span_l[j] * missing

        # Page mixes: each row is the reference's Domain.page_mix_for
        # (concentration blend, then row-normalise).
        mix = None
        if gather.mix_row_src is not None:
            # Dual-socket: scalar blend straight off the placement
            # mirrors — the same elementwise ops as the ufunc path,
            # without touching the (lazily synced) ndarrays.
            conc_l = gather.conc_l
            anti_l = gather.anti_l
            row_src = gather.mix_row_src
            over_src = gather.mix_over_src
            mix_rows = [None] * k
            for i in range(k):
                c = conc_l[i]
                a = anti_l[i]
                row = row_src[i]
                over = over_src[i]
                m0 = c * row[0] + a * over[0]
                m1 = c * row[1] + a * over[1]
                s = m0 + m1
                mix_rows[i] = [m0 / s, m1 / s]
        else:
            rows = self._rows_buf[:k]
            over = self._over_buf[:k]
            for placement, slices, positions in gather.mix_groups:
                rows[positions] = placement.matrix[slices]
                over[positions] = placement.overall
            mix = gather.conc_col * rows + gather.anti_conc_col * over
            mix /= mix.sum(axis=1)[:, None]
            mix_rows = mix.tolist()

        # Fixed point: rates -> traffic -> queueing -> rates.  Scalar
        # float64 expressions in the reference's exact op order; at the
        # machine's scale (co-runners == PCPUs) this beats ufunc
        # dispatch while producing identical bits.
        lat = machine.config.latency
        hit_ns = lat.llc_hit_ns
        node_of = gather.node_of
        rpi = gather.rpi
        cpi_base = gather.cpi_base
        mlp = gather.mlp
        clock = gather.clock
        ns2c = gather.ns2c
        penalty = [lat.local_dram_ns] * k
        rates = [0.0] * k
        traffic = [0.0] * k
        for _ in range(machine.config.contention_iterations - 1):
            for i in range(k):
                mr = miss[i]
                per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
                stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
                rate = clock[i] / (cpi_base[i] + stall)
                rates[i] = rate
                traffic[i] = rate * rpi[i] * mr * BYTES_PER_MISS
            penalty = machine.memsys.solve_compact(traffic, node_of, mix_rows)
        # Last iteration: the reference recomputes rates and then makes
        # one more (pure, side-effect-free) solve call whose result it
        # discards — so only the rates are computed here.
        for i in range(k):
            mr = miss[i]
            per_ref_ns = (1.0 - mr) * hit_ns + mr * penalty[i]
            stall = rpi[i] * per_ref_ns * ns2c[i] / mlp[i]
            rates[i] = clock[i] / (cpi_base[i] + stall)

        # Progress pass 1: instruction budgets in PCPU order (overhead
        # consumption and busy-time accumulation are ordered effects).
        totals = gather.totals
        instructions = [0.0] * k
        refs = [0.0] * k
        misses = [0.0] * k
        for i in range(k):
            pcpu = running_pcpus[i]
            # Inlined Pcpu.consume_overhead with an overhead-free fast
            # path (identical arithmetic when overhead is pending).
            pending = pcpu.overhead_pending_s
            if pending > 0.0:
                used = pending if pending < epoch else epoch
                pcpu.overhead_pending_s = pending - used
                compute = epoch - used
            else:
                compute = epoch
            pcpu.busy_time_s += epoch
            machine.busy_time_s += epoch
            done = rates[i] * compute
            total = totals[i]
            if total is not None:
                remaining = total - running_vcpus[i].workload.instructions_done
                if remaining < 0.0:
                    remaining = 0.0
                if remaining < done:
                    done = remaining
            instructions[i] = done
            r = done * rpi[i]
            refs[i] = r
            misses[i] = r * miss[i]

        # PMU charges, batched: the access matrix is elementwise
        # (misses x page mix), the per-bank accumulation stays ordered.
        if mix is None:
            accesses = [
                [misses[i] * mix_rows[i][0], misses[i] * mix_rows[i][1]]
                for i in range(k)
            ]
        else:
            accesses = np.array(misses)[:, None] * mix
        machine.pmu.charge_epoch(
            gather.keys,
            instructions,
            refs,
            misses,
            accesses,
            node_of,
            rows=gather.pmu_rows,
        )

        # Progress pass 2: retire work, drift placement, handle
        # completion and blocking (same order, same transitions).
        end = now + epoch
        policy = machine.policy
        log = machine.log
        drift = gather.drift
        for i in range(k):
            pcpu = running_pcpus[i]
            vcpu = running_vcpus[i]
            w = vcpu.workload
            w.instructions_done += instructions[i]
            vcpu.slice_used_s += epoch
            vcpu.run_burst_remaining_s -= epoch

            if drift[i] > 0:
                vcpu.domain.placement.drift_slice_fast(
                    w.slice_id, pcpu.node, drift[i]
                )

            total = totals[i]
            if total is not None and w.instructions_done >= total:
                vcpu.mark_done(end)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                vcpu.block_until(end + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # LLC warmth: charge running sets, decay everyone else, using
        # the per-VCPU charge factors cached at phase boundaries.
        for node_id, members in enumerate(gather.node_members):
            self._cache_advance[node_id](
                epoch,
                members,
                gather.node_charge[node_id],
                gather.node_member_sets[node_id],
            )


class _BatchInvariants:
    """Per-assignment constants of the macro-step kernels.

    Everything here is derivable from the :class:`_Gather` (plus the
    per-domain grouping of the running set), so it lives on the gather
    (``gather.binv``) and shares its lifetime and memoisation
    signature.  Assignment churn makes these builds frequent on busy
    machines, so every per-VCPU vector is gathered from the engine's
    key-indexed :class:`_KeyArrays` with fancy indexing — exact bit
    copies of the scalar constants — instead of Python-level loops.
    """

    __slots__ = (
        "rpi",
        "cpi",
        "mlp",
        "clock",
        "ns2c",
        "conc2",
        "anti2",
        "keep2",
        "add2",
        "indep_drift",
        "alias_groups",
        "dom_groups",
        "mask0",
        "share",
        "minmr",
        "span",
        "cf",
        "ws_bad",
        "shaped",
        "node_pos_arr",
    )

    def __init__(
        self,
        engine: "VectorEngine",
        gather: _Gather,
        running_vcpus: List[Vcpu],
    ) -> None:
        k = len(running_vcpus)
        g = engine.key_arrays()
        idx = np.array(gather.keys)
        nd = np.array(gather.node_of)
        self.rpi = g.rpi[idx]
        self.cpi = g.cpi[idx]
        self.mlp = g.mlp[idx]
        self.clock = g.clock[nd]
        self.ns2c = g.ns2c[nd]
        # Doubled columns ([node-0 | node-1] halves of the RR/OO mix
        # matrices) share each VCPU's concentration scalars.
        conc = g.conc[idx]
        anti = g.anti[idx]
        self.conc2 = np.concatenate((conc, conc))
        self.anti2 = np.concatenate((anti, anti))
        mask0 = nd == 0
        self.mask0 = mask0

        # Aliased placement rows: several running VCPUs reading (and
        # possibly drifting) the same row object.  Their columns cannot
        # evolve independently — the batch replays the row's exact
        # per-epoch update sequence on Python scalars instead.  `keep`
        # is precomputed as the same `1.0 - amount` the reference
        # evaluates inside drift_slice_fast.
        drift = gather.drift
        node_of = gather.node_of
        row_src = gather.mix_row_src
        by_row: Dict[int, List[int]] = {}
        for i in range(k):
            by_row.setdefault(id(row_src[i]), []).append(i)
        self.alias_groups = []
        alias_cols: Set[int] = set()
        for cols in by_row.values():
            if len(cols) < 2:
                continue
            upd = [
                (i, 1.0 - drift[i], drift[i], node_of[i])
                for i in cols
                if drift[i] > 0.0
            ]
            if not upd:
                continue  # nobody drifts it: the row is constant
            num_slices = running_vcpus[cols[0]].domain.placement.num_slices
            self.alias_groups.append((cols, upd, num_slices))
            alias_cols.update(cols)

        # Independently-owned rows as a linear per-epoch map: row' =
        # row * keep + add.  VCPUs without drift (and aliased columns,
        # overwritten by the scalar replay) get keep=1, add=0 — `x *
        # 1.0` and `x + 0.0` are bitwise identities for the
        # non-negative row values, so one fused update covers all
        # columns.  (`np.where` selects the stored drift floats
        # verbatim; a zero-drift VCPU contributes the same 0.0 either
        # way.)
        drift_v = g.drift[idx]
        keep_v = g.keep[idx]
        add0 = np.where(mask0, drift_v, 0.0)
        add1 = np.where(mask0, 0.0, drift_v)
        if alias_cols:
            cols = list(alias_cols)
            keep_v[cols] = 1.0
            add0[cols] = 0.0
            add1[cols] = 0.0
        self.keep2 = np.concatenate((keep_v, keep_v))
        self.add2 = np.concatenate((add0, add1))
        self.indep_drift = bool((keep_v != 1.0).any())

        # Running VCPUs grouped by domain (the shared `overall` mix
        # they drift), in running order — the order the reference's
        # per-epoch progress pass applies their drift increments.  Each
        # group carries the overrides for its aliased columns: a
        # non-drifting reader contributes no increment even though its
        # row moves, and an aliased drifter's increments come from the
        # scalar replay (its row deltas interleave with its co-owners').
        col_override: Dict[int, Tuple[int, int]] = {}
        for gi, (cols, upd, _ns) in enumerate(self.alias_groups):
            upd_pos = {t[0]: ui for ui, t in enumerate(upd)}
            for c in cols:
                col_override[c] = (gi, upd_pos.get(c, -1))
        groups: Dict[int, list] = {}
        for i in range(k):
            over = gather.mix_over_src[i]
            group = groups.get(id(over))
            if group is None:
                placement = running_vcpus[i].domain.placement
                group = [over, [], placement, placement.num_slices, False]
                groups[id(over)] = group
            group[1].append(i)
            if drift[i] > 0.0:
                group[4] = True
        self.dom_groups = []
        for over, idxs, placement, num_slices, has_drift in groups.values():
            ovr = tuple(
                (p, *col_override[c])
                for p, c in enumerate(idxs)
                if c in col_override
            )
            self.dom_groups.append(
                (over, idxs, placement, num_slices, has_drift, ovr)
            )

        # Flattened miss-curve constants, gather-position-ordered so the
        # warmth/miss kernels run once over all nodes.  The member-
        # ordered (share, minmr, span, charge) rows are prebuilt per
        # co-runner set in the engine's node cache; scattering them to
        # gather positions is two fancy assignments.
        mc = np.empty((4, k))
        ws_bad = []
        shaped = []
        self.node_pos_arr = []
        for node_id, members in enumerate(gather.node_members):
            if not members:
                self.node_pos_arr.append(None)
                continue
            positions = gather.node_positions[node_id]
            pos = np.array(positions)
            self.node_pos_arr.append(pos)
            mcn, bad_j, shaped_j = gather.node_batch[node_id]
            mc[:, pos] = mcn
            for j in bad_j:
                ws_bad.append(positions[j])
            for j, shape in shaped_j:
                shaped.append((positions[j], shape))
        self.share = mc[0]
        self.minmr = mc[1]
        self.span = mc[2]
        self.cf = mc[3]
        self.ws_bad = tuple(ws_bad)
        self.shaped = tuple(shaped)


class BatchedEngine(VectorEngine):
    """Macro-stepping engine: one 2D kernel pass per quiet-epoch run.

    Extends :class:`VectorEngine` with an *event horizon*: the number of
    upcoming epochs guaranteed free of discrete events — scheduler
    ticks, sampling boundaries, wakeups, phase changes, finite-work
    completions, run-burst expiries, fault stalls/crashes, the epoch cap
    and the run's time limit.  All ``K`` quiet epochs advance in one
    batch of (epochs x running VCPUs) array kernels.

    The bitwise contract survives batching because inside the horizon
    every epoch applies the *same* elementwise recurrences to the same
    running set: per-VCPU trajectories (warmth, placement drift, page
    mix, miss rate, fixed-point rates) vectorize along the epoch axis,
    while every ordered reduction — IMC/QPI traffic, busy time, PMU bank
    accumulation, the per-domain `overall` drift chain — is reproduced
    as a sequential ``cumsum`` in the reference's exact accumulation
    order.  Scheduler RNG parity is kept by replaying the (no-op) steal
    calls idle PCPUs would make each interior epoch.

    Topologies other than the paper's dual-socket host fall back to
    singleton stepping (``compute_horizon`` returns 1), which is the
    inherited :class:`VectorEngine` path.
    """

    supports_batch = True

    #: horizons at or below this replay the singleton path instead of
    #: launching the 2D kernels: a short batch cannot amortise the
    #: kernels' fixed dispatch cost, and the replay is bitwise-exact by
    #: construction (it *is* the singleton path, minus event checks the
    #: horizon already proved are no-ops).  Measured break-even on the
    #: steady-state SPEC scenario sits between 4 and 5 epochs.
    _REPLAY_MAX = 4

    def __init__(self, machine: "Machine") -> None:
        super().__init__(machine)
        self._cache_advance_batch = [
            cache.state.advance_compact_batch for cache in machine.caches
        ]

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def compute_horizon(self, now: float, limit: float) -> int:
        """Quiet epochs (including the current one) safe to macro-step.

        Called after the stepper has run this epoch's fault, tick, wake
        and scheduling phases; returns 1 whenever any discrete event
        could fire before the batch would end.
        """
        machine = self.machine
        if not self.two_node:
            return 1
        e0 = machine.epoch_index
        epoch = self.epoch
        kb = machine._epochs_per_tick - (e0 % machine._epochs_per_tick)
        ks = machine._epochs_per_sample - (e0 % machine._epochs_per_sample)
        if ks < kb:
            kb = ks
        cap = machine.config.max_epochs
        if cap is not None and cap - e0 < kb:
            kb = cap - e0
        crash_time = math.inf
        faults = machine.faults
        if faults is not None:
            if faults.plan.stall_rate > 0:
                next_stall = faults.next_stall_epoch()
                if next_stall is None:
                    return 1
                if next_stall - e0 < kb:
                    kb = next_stall - e0
            next_crash = faults.next_crash_time()
            if next_crash is not None:
                crash_time = next_crash
        if kb <= 1:
            return 1

        # Running-set floors.  Completions stay *exclusive*: with rates
        # bounded by clock / cpi_base (the queueing stall is
        # non-negative), a one-epoch margin under each finite-work
        # budget guarantees no completion fires at any batch epoch.
        # Run-burst expiries are *inclusive*: the budget drains by
        # exactly one epoch per step regardless of contention, so the
        # expiry epoch is known in advance — the batch may end ON it and
        # fire the block transition at the batch boundary.
        idle = False
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is None:
                idle = True
                continue
            key = cur.key
            w = cur.workload
            total = w.profile.total_instructions
            if total is not None:
                remaining = total - w.instructions_done
                rate_max = self.node_clock[pcpu.node] / self.cpi_base[key]
                floor = int(remaining / (rate_max * epoch)) - 1
                if floor < kb:
                    kb = floor
            burst = cur.run_burst_remaining_s
            if burst <= (kb + 1) * epoch:
                # Expiry may land inside the window: replay the exact
                # per-epoch subtraction chain (`x -= epoch`, the same
                # sequential float ops the progress pass performs) to
                # find the first epoch whose end leaves the budget at
                # or below zero, and end the batch there.
                x = burst
                for j in range(kb):
                    x -= epoch
                    if x <= 0.0:
                        kb = j + 1
                        break
            if kb <= 1:
                return 1
        if idle:
            # After a scheduling pass an idle PCPU implies every queue
            # is empty (the pass steals unconditionally); guard the
            # invariant anyway — queued work next to an idle PCPU means
            # rescheduling activity every epoch.
            for pcpu in machine.pcpus:
                if pcpu.queue.head_rank() is not None:
                    return 1

        # Time-driven events: walk the exact epoch-end trajectory (the
        # same sequential float adds the stepper performs) against the
        # wake heap, the phase heap, the crash schedule and the run
        # limit.  A phase change due at a batch-final epoch end is fine:
        # the stepper applies phase changes once at the batch end.
        wake = self.wake_heap[0][0] if self.wake_heap else math.inf
        phase = self.phase_heap[0][0] if self.phase_heap else math.inf
        t = now
        j = 0
        while j < kb:
            if j > 0 and (
                wake <= t or crash_time <= t or t >= limit - 1e-12
            ):
                kb = j
                break
            t_next = t + epoch
            if phase <= t_next:
                kb = j + 1
                break
            t = t_next
            j += 1
        return kb if kb > 1 else 1

    # ------------------------------------------------------------------
    # Batched advance
    # ------------------------------------------------------------------
    def advance_batch(self, now: float, epoch: float, kb: int) -> float:
        """Advance ``kb`` quiet epochs in one batch; returns the batch end.

        The caller (the stepper) has already run this epoch's pre-solve
        phases and guarantees — via :meth:`compute_horizon` — that no
        discrete event fires strictly inside the batch.
        """
        machine = self.machine
        profiler = machine.profiler
        policy = machine.policy

        if kb <= self._REPLAY_MAX:
            # Short horizon: replay the per-epoch path directly.  Each
            # interior epoch runs the (no-op) idle-PCPU steal attempts
            # the reference's scheduling pass would make, then the
            # inherited singleton advance — the same calls in the same
            # order, so equality is by construction rather than by
            # kernel proof.
            t = now
            for j in range(kb):
                if j > 0:
                    for pcpu in machine.pcpus:
                        if pcpu.current is None:
                            t0 = profiler.start()
                            policy.steal(pcpu, t, under_only=False)
                            profiler.stop("balance", t0)
                self.advance_running(t, epoch)
                t = t + epoch
            return t

        # Epoch-boundary times: exactly the `end = now + epoch` chain the
        # singleton stepper would accumulate.
        times = [now]
        t = now
        for _ in range(kb):
            t = t + epoch
            times.append(t)
        end_batch = times[-1]

        running_pcpus = []
        running_vcpus = []
        sig_keys = []
        sig_pids = []
        idle_pcpus = []
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                running_pcpus.append(pcpu)
                running_vcpus.append(cur)
                sig_keys.append(cur.key)
                sig_pids.append(pcpu.pcpu_id)
            else:
                idle_pcpus.append(pcpu)
        k = len(running_vcpus)

        # Interior scheduling passes: running PCPUs are untouched (their
        # VCPU stays runnable all batch), but each idle PCPU makes one
        # steal attempt per epoch.  With every queue empty those calls
        # cannot succeed or mutate queues — they exist to keep the
        # scheduler's RNG draw sequence (e.g. credit.steal's
        # permutation) aligned with the reference, epoch by epoch.
        if idle_pcpus:
            for j in range(1, kb):
                tj = times[j]
                for pcpu in idle_pcpus:
                    t0 = profiler.start()
                    policy.steal(pcpu, tj, under_only=False)
                    profiler.stop("balance", t0)

        if k == 0:
            # Nothing ran: warmth decays epoch by epoch on every LLC.
            for _ in range(kb):
                for advance in self._cache_advance:
                    advance(epoch, (), ())
            return end_batch

        kg = self.key_gen
        sig = (
            tuple(sig_keys),
            tuple(sig_pids),
            tuple(kg[key] for key in sig_keys),
        )
        if sig != self._gather_sig:
            cache = self._gather_cache
            gather = cache.get(sig)
            if gather is None:
                gather = _Gather(self, running_pcpus, running_vcpus, k)
                machine.profiler.count("gather_build")
                if len(cache) >= 1024:
                    cache.clear()
                cache[sig] = gather
            self._gather = gather
            self._gather_sig = sig
        else:
            gather = self._gather
        inv = gather.binv
        if inv is None:
            inv = _BatchInvariants(self, gather, running_vcpus)
            gather.binv = inv

        # --- Warmth + drift trajectories -------------------------------
        # W[t, i] is VCPU i's warmth entering batch epoch t: the
        # reference reads warmth *before* each epoch's end-of-epoch
        # charge, so row t uses t charge applications.  RR packs both
        # placement-row components as [node-0 cols | node-1 cols];
        # independently-owned rows evolve with one fused linear update.
        # Both recurrences share one loop over the epoch axis.
        warmth_tables = self._warmth_tables
        warm = np.empty(k)
        for node_id, members in enumerate(gather.node_members):
            if members:
                table = warmth_tables[node_id]
                warm[inv.node_pos_arr[node_id]] = [
                    table.get(key, 0.0) for key in members
                ]
        row_src = gather.mix_row_src
        rr = np.array(
            [row[0] for row in row_src] + [row[1] for row in row_src]
        )
        W = np.empty((kb + 1, k))
        RR = np.empty((kb + 1, 2 * k))
        cf = inv.cf
        wtmp = np.empty(k)
        # In-place recurrences (subtract/multiply with out=) are the
        # same ufunc applications as the expression forms, per element.
        W[0] = warm
        if inv.indep_drift:
            keep2 = inv.keep2
            add2 = inv.add2
            rtmp = np.empty(2 * k)
            RR[0] = rr
            for tt in range(kb):
                np.subtract(1.0, W[tt], out=wtmp)
                np.multiply(wtmp, cf, out=wtmp)
                np.subtract(1.0, wtmp, out=W[tt + 1])
                np.multiply(RR[tt], keep2, out=rtmp)
                np.add(rtmp, add2, out=RR[tt + 1])
        else:
            RR[:] = rr
            for tt in range(kb):
                np.subtract(1.0, W[tt], out=wtmp)
                np.multiply(wtmp, cf, out=wtmp)
                np.subtract(1.0, wtmp, out=W[tt + 1])
        warm = W[kb]
        W = W[:kb]
        F = inv.share * W
        for pos in inv.ws_bad:
            F[:, pos] = 1.0
        missing = 1.0 - F
        for pos, shape in inv.shaped:
            # Python-float pow only: ndarray ** float rounds
            # differently from the scalar `(1 - f) ** shape`.
            missing[:, pos] = [
                base ** shape for base in missing[:, pos].tolist()
            ]
        M = inv.minmr + inv.span * missing
        R0 = RR[:, :k]
        R1 = RR[:, k:]

        # Aliased rows: replay the exact per-epoch update sequence in
        # running order on Python scalars (the same ops
        # drift_slice_fast performs); every reader column shares the
        # row's trajectory and every drifter records its own `overall`
        # increments, already divided by num_slices.
        alias_inc = []
        for cols, upd, num_slices in inv.alias_groups:
            row = row_src[cols[0]]
            r0 = row[0]
            r1 = row[1]
            traj0 = [r0]
            traj1 = [r1]
            inc0 = [[] for _ in upd]
            inc1 = [[] for _ in upd]
            for _tt in range(kb):
                for u, (_ci, keep, amount, node) in enumerate(upd):
                    n0 = r0 * keep
                    n1 = r1 * keep
                    if node == 0:
                        n0 = n0 + amount
                    else:
                        n1 = n1 + amount
                    inc0[u].append((n0 - r0) / num_slices)
                    inc1[u].append((n1 - r1) / num_slices)
                    r0 = n0
                    r1 = n1
                traj0.append(r0)
                traj1.append(r1)
            for ci in cols:
                R0[:, ci] = traj0
                R1[:, ci] = traj1
            alias_inc.append((inc0, inc1))

        OO = np.empty((kb, 2 * k))
        O0 = OO[:, :k]
        O1 = OO[:, k:]
        over_chains = []
        DR = None
        for over, idxs, placement, num_slices, has_drift, ovr in inv.dom_groups:
            if not has_drift:
                O0[:, idxs] = over[0]
                O1[:, idxs] = over[1]
                continue
            m = len(idxs)
            # Per-epoch, per-member `overall += (new - old) / num_slices`
            # increments, flattened epoch-major in running order — the
            # exact sequence of adds the reference's progress pass makes
            # — then one cumsum gives every intermediate chain state.
            # Aliased columns are overridden: non-drifting readers add
            # nothing, aliased drifters use their replayed increments.
            # The row deltas are hoisted across groups (one subtraction
            # over the packed RR matrix).
            if DR is None:
                DR = RR[1:] - RR[:-1]
            D0 = DR[:, idxs] / num_slices
            D1 = DR[:, [i + k for i in idxs]] / num_slices
            for p, gi, ui in ovr:
                if ui < 0:
                    D0[:, p] = 0.0
                    D1[:, p] = 0.0
                else:
                    g_inc0, g_inc1 = alias_inc[gi]
                    D0[:, p] = g_inc0[ui]
                    D1[:, p] = g_inc1[ui]
            chains = np.empty((2, kb * m + 1))
            chains[0, 0] = over[0]
            chains[0, 1:] = D0.ravel()
            chains[1, 0] = over[1]
            chains[1, 1:] = D1.ravel()
            ch = np.cumsum(chains, axis=1)
            O0[:, idxs] = ch[0, ::m][:kb, None]
            O1[:, idxs] = ch[1, ::m][:kb, None]
            over_chains.append((over, placement, ch[0, -1], ch[1, -1]))

        mm = inv.conc2 * RR[:kb] + inv.anti2 * OO
        s = mm[:, :k] + mm[:, k:]
        mix0 = mm[:, :k] / s
        mix1 = mm[:, k:] / s

        # --- Fixed point: rates -> traffic -> queueing -> rates --------
        lat = machine.config.latency
        rpi = inv.rpi
        node_of = gather.node_of
        mask0 = inv.mask0
        # (1 - M) * hit_ns is round-invariant; hoisting it keeps the
        # reference's op order (it is the same first two ops).
        base_ref = (1.0 - M) * lat.llc_hit_ns
        penalty = np.full((kb, k), lat.local_dram_ns)
        memsolve = machine.memsys.solve_compact_batch
        for _ in range(machine.config.contention_iterations - 1):
            per_ref_ns = base_ref + M * penalty
            rates = inv.clock / (
                inv.cpi + rpi * per_ref_ns * inv.ns2c / inv.mlp
            )
            traffic = rates * rpi * M * BYTES_PER_MISS
            penalty = memsolve(traffic, node_of, mix0, mix1, local_mask=mask0)
        per_ref_ns = base_ref + M * penalty
        rates = inv.clock / (inv.cpi + rpi * per_ref_ns * inv.ns2c / inv.mlp)

        # --- Progress pass 1: compute budgets and busy time ------------
        # Pending hypervisor overhead is rare inside a batch; the common
        # case multiplies by the scalar epoch (bitwise identical to a
        # full matrix of epochs).
        compute = None
        for i in range(k):
            pcpu = running_pcpus[i]
            pending = pcpu.overhead_pending_s
            if pending > 0.0:
                if compute is None:
                    compute = np.full((kb, k), epoch)
                col = compute[:, i]
                for tt in range(kb):
                    if pending <= 0.0:
                        break
                    used = pending if pending < epoch else epoch
                    pending = pending - used
                    col[tt] = epoch - used
                pcpu.overhead_pending_s = pending

        # The horizon's one-epoch margin guarantees the reference's
        # remaining-work clamp never binds inside the batch.
        done = rates * epoch if compute is None else rates * compute
        refs = done * rpi
        misses = refs * M

        # --- PMU charges -----------------------------------------------
        acc0 = misses * mix0
        acc1 = misses * mix1
        machine.pmu.charge_epoch_batch(
            gather.keys,
            done,
            refs,
            misses,
            acc0,
            acc1,
            node_of,
            gather.pmu_rows,
            local_mask=mask0,
        )

        # --- Progress passes: busy time, retired work, drift commit ----
        # One seeded cumsum covers every per-column accumulator chain
        # (busy time, instructions, slice usage, burst budget): columns
        # are independent, so packing them side by side is bitwise
        # neutral, and `x - epoch == x + (-epoch)` exactly.
        chain = np.empty((kb + 1, 4 * k))
        chain[0, :k] = [p.busy_time_s for p in running_pcpus]
        chain[0, k : 2 * k] = [
            v.workload.instructions_done for v in running_vcpus
        ]
        chain[0, 2 * k : 3 * k] = [v.slice_used_s for v in running_vcpus]
        chain[0, 3 * k :] = [v.run_burst_remaining_s for v in running_vcpus]
        body = chain[1:]
        body[:, :k] = epoch
        body[:, k : 2 * k] = done
        body[:, 2 * k : 3 * k] = epoch
        body[:, 3 * k :] = -epoch
        final = np.cumsum(chain, axis=0)[-1].tolist()
        for i in range(k):
            running_pcpus[i].busy_time_s = final[i]
            vcpu = running_vcpus[i]
            vcpu.workload.instructions_done = final[k + i]
            vcpu.slice_used_s = final[2 * k + i]
            vcpu.run_burst_remaining_s = final[3 * k + i]
        machine_busy = np.empty(kb * k + 1)
        machine_busy[0] = machine.busy_time_s
        machine_busy[1:] = epoch
        machine.busy_time_s = float(np.cumsum(machine_busy)[-1])

        if inv.indep_drift or inv.alias_groups:
            drift = gather.drift
            r0_final = R0[kb].tolist()
            r1_final = R1[kb].tolist()
            for i in range(k):
                if drift[i] > 0.0:
                    row = row_src[i]
                    row[0] = r0_final[i]
                    row[1] = r1_final[i]
            for over, placement, o0, o1 in over_chains:
                over[0] = float(o0)
                over[1] = float(o1)
                placement._np_stale = True

        # --- Batch-final transitions -----------------------------------
        # The horizon's burst cap is *inclusive*: a run-burst that
        # drains to zero at the batch-final epoch blocks here, with the
        # same transition sequence (and per-VCPU order) the reference's
        # progress pass applies at that epoch.  Completions cannot fire
        # inside a batch (the horizon's exclusive finite-work floor),
        # so the mirrored `if` arm is a guard, not a live path.
        totals = gather.totals
        log = machine.log
        for i in range(k):
            vcpu = running_vcpus[i]
            w = vcpu.workload
            total = totals[i]
            if total is not None and w.instructions_done >= total:
                pcpu = running_pcpus[i]
                vcpu.mark_done(end_batch)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)
                log.emit(end_batch, "finish", vcpu=vcpu.name)
                self.finite_remaining -= 1
            elif vcpu.run_burst_remaining_s <= 0:
                pcpu = running_pcpus[i]
                vcpu.block_until(end_batch + w.draw_block_time())
                self.push_wake(vcpu)
                pcpu.current = None
                machine.context_switches += 1
                policy.on_context_switch(pcpu, vcpu, None)

        # --- LLC warmth commit -----------------------------------------
        for node_id, members in enumerate(gather.node_members):
            pos = inv.node_pos_arr[node_id]
            self._cache_advance_batch[node_id](
                epoch,
                kb,
                members,
                warm[pos].tolist() if pos is not None else (),
                gather.node_member_sets[node_id],
            )
        return end_batch
