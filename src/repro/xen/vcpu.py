"""Virtual CPU: scheduling state plus the fields vProbe adds.

Mirrors Xen's ``struct vcpu`` / ``csched_vcpu`` at the granularity the
paper cares about: Credit-scheduler bookkeeping (credits, priority) and
the three fields §IV-B adds — ``node_affinity``, ``LLC_pressure`` and
``vcpu_type`` — plus BRM's ``uncore_penalty`` for the baseline.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.workloads.appmodel import VcpuWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.xen.domain import Domain

__all__ = ["VcpuState", "VcpuType", "Vcpu"]


class VcpuState(enum.Enum):
    """Lifecycle states of a VCPU."""

    RUNNABLE = "runnable"  #: waiting in some PCPU's run queue
    RUNNING = "running"  #: currently on a PCPU
    BLOCKED = "blocked"  #: waiting for I/O (or an idle guest VCPU)
    DONE = "done"  #: finite workload completed


class VcpuType(enum.Enum):
    """The paper's LLC classes (Eq. 3)."""

    LLC_FR = "llc-fr"  #: friendly — negligible LLC demand
    LLC_FI = "llc-fi"  #: fitting — fits alone, hurt by contention
    LLC_T = "llc-t"  #: thrashing — misses heavily even alone

    @property
    def memory_intensive(self) -> bool:
        """LLC-T and LLC-FI VCPUs are the partitioner's targets."""
        return self is not VcpuType.LLC_FR


class Vcpu:
    """One virtual CPU.

    Parameters
    ----------
    key:
        Globally unique integer id (index into the machine's VCPU table).
    domain:
        Owning domain.
    index:
        Index of this VCPU within its domain.
    workload:
        The application state this VCPU executes.
    """

    __slots__ = (
        "key",
        "domain",
        "index",
        "workload",
        "state",
        "pcpu",
        "credits",
        "boosted",
        "run_start_time",
        "last_ran_time",
        "slice_used_s",
        "run_burst_remaining_s",
        "wake_time",
        "node_affinity",
        "llc_pressure",
        "vcpu_type",
        "assigned_node",
        "uncore_penalty",
        "migrations",
        "cross_node_migrations",
        "finish_time",
    )

    def __init__(
        self,
        key: int,
        domain: "Domain",
        index: int,
        workload: VcpuWorkload,
    ) -> None:
        self.key = key
        self.domain = domain
        self.index = index
        self.workload = workload

        # -- Credit scheduler state ------------------------------------
        self.state = VcpuState.BLOCKED if not workload.active else VcpuState.RUNNABLE
        self.pcpu: Optional[int] = None  #: last/current PCPU id
        self.credits: float = 0.0
        #: Xen 4.0 Credit BOOST: set when waking from sleep, cleared at
        #: the first accounting tick that debits this VCPU.
        self.boosted: bool = False
        self.run_start_time: float = 0.0  #: when the current run began
        #: when this VCPU last occupied a PCPU (for the cache-hot test)
        self.last_ran_time: float = -1.0
        self.slice_used_s: float = 0.0  #: continuous run time this slice
        self.run_burst_remaining_s: float = float("inf")
        self.wake_time: float = float("inf")  #: when a blocked VCPU wakes

        # -- vProbe fields (csched_vcpu additions, §IV-B) ---------------
        self.node_affinity: Optional[int] = None
        self.llc_pressure: float = 0.0
        self.vcpu_type: VcpuType = VcpuType.LLC_FR
        #: node the partitioner pinned this VCPU to this period (or None)
        self.assigned_node: Optional[int] = None

        # -- BRM baseline field -----------------------------------------
        self.uncore_penalty: float = 0.0

        # -- statistics ---------------------------------------------------
        self.migrations: int = 0
        self.cross_node_migrations: int = 0
        self.finish_time: Optional[float] = None

    # ------------------------------------------------------------------
    @property
    def runnable(self) -> bool:
        """True when the VCPU can occupy a PCPU."""
        return self.state in (VcpuState.RUNNABLE, VcpuState.RUNNING)

    @property
    def priority_under(self) -> bool:
        """Credit priority: UNDER (still has credit) vs OVER."""
        return self.credits >= 0

    @property
    def priority_rank(self) -> int:
        """Scheduling class: 0 = BOOST, 1 = UNDER, 2 = OVER.

        Lower ranks run first; Credit's queues and preemption compare
        ranks, never raw credits.
        """
        if self.boosted:
            return 0
        return 1 if self.credits >= 0 else 2

    @property
    def name(self) -> str:
        """Readable identifier, e.g. ``vm1.v3``."""
        return f"{self.domain.name}.v{self.index}"

    def begin_run(self, now: float) -> None:
        """Transition to RUNNING (burst bookkeeping handled by the sim)."""
        self.state = VcpuState.RUNNING
        self.run_start_time = now

    def stop_run(self, now: float | None = None) -> None:
        """Transition RUNNING -> RUNNABLE (preemption/deschedule)."""
        if self.state is VcpuState.RUNNING:
            self.state = VcpuState.RUNNABLE
            if now is not None:
                self.last_ran_time = now

    def block_until(self, wake_time: float) -> None:
        """Block the VCPU until ``wake_time``."""
        self.state = VcpuState.BLOCKED
        self.wake_time = wake_time
        self.slice_used_s = 0.0
        self.boosted = False

    def mark_done(self, now: float) -> None:
        """Finite workload finished: leave the scheduling game."""
        self.state = VcpuState.DONE
        self.finish_time = now

    def record_migration(self, cross_node: bool) -> None:
        """Bump migration statistics."""
        self.migrations += 1
        if cross_node:
            self.cross_node_migrations += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Vcpu({self.name}, key={self.key}, state={self.state.value}, "
            f"pcpu={self.pcpu}, type={self.vcpu_type.value})"
        )
