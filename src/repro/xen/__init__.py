"""Xen hypervisor substrate: domains, VCPUs, PCPUs, Credit scheduler,
and the epoch-based machine simulator they all run on.

This package re-implements (as a simulation) the parts of Xen 4.0.1
that the paper's prototype modifies: the Credit scheduler's accounting
and NUMA-blind idle-stealing load balancer, per-domain memory placement,
and the context-switch points where Perfctr-Xen collects counters.
"""

from repro.xen.vcpu import Vcpu, VcpuState
from repro.xen.runqueue import RunQueue
from repro.xen.pcpu import Pcpu
from repro.xen.domain import Domain
from repro.xen.memalloc import MemoryPlacement, place_split, place_single_node, place_interleaved
from repro.xen.credit import CreditScheduler, CreditParams, SchedulerPolicy
from repro.xen.simulator import Machine, SimConfig, SimResult

__all__ = [
    "Vcpu",
    "VcpuState",
    "RunQueue",
    "Pcpu",
    "Domain",
    "MemoryPlacement",
    "place_split",
    "place_single_node",
    "place_interleaved",
    "SchedulerPolicy",
    "CreditScheduler",
    "CreditParams",
    "Machine",
    "SimConfig",
    "SimResult",
]
