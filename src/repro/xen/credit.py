"""Xen's Credit scheduler and the scheduler-policy interface.

The Credit scheduler is the substrate the paper modifies (§II-B, §IV).
Behaviour reproduced here, matching Xen 4.0.1's documented design:

* each domain's VCPUs earn *credits* in proportion to its weight every
  accounting period (30 ms); running VCPUs are debited every 10 ms tick;
* a VCPU with credits left has priority UNDER, an exhausted one OVER;
  queues serve UNDER before OVER, FIFO within a class;
* a running VCPU is preempted when its 30 ms slice expires (if anyone
  is waiting) or when an UNDER VCPU waits behind an OVER one;
* **load balancing is NUMA-blind**: an idle PCPU steals the head of any
  non-empty peer queue, scanning peers in arbitrary order with no regard
  for node boundaries or application behaviour — the §II-B problem.

Subclasses (vProbe and the baselines) override the hook methods; the
simulator only ever talks to :class:`SchedulerPolicy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["CreditParams", "SchedulerPolicy", "CreditScheduler"]


@dataclass(frozen=True, slots=True)
class CreditParams:
    """Credit-scheduler tuning constants (Xen defaults)."""

    tick_s: float = 0.010  #: accounting tick
    ticks_per_acct: int = 3  #: accounting period = 30 ms
    credits_per_tick: float = 100.0  #: debit per tick of running
    credit_cap: float = 300.0  #: clamp after refill
    credit_floor: float = -300.0  #: clamp after debit
    #: a VCPU that ran within this window is considered cache-hot and
    #: skipped by balance steals (__csched_vcpu_is_cache_hot); stolen
    #: work is therefore work that has waited, which rate-limits
    #: migration churn exactly as on real Xen
    cache_hot_s: float = 0.020

    def __post_init__(self) -> None:
        check_positive(self.tick_s, "tick_s")
        if self.ticks_per_acct <= 0:
            raise ValueError("ticks_per_acct must be > 0")
        check_positive(self.credits_per_tick, "credits_per_tick")

    @property
    def slice_s(self) -> float:
        """Maximum continuous run before round-robin preemption."""
        return self.tick_s * self.ticks_per_acct


class SchedulerPolicy:
    """Interface between the machine simulator and a VCPU scheduler.

    The machine owns all mechanics (queues, context switches, time); a
    policy makes decisions at the hook points below.  The base class
    implements stock Credit behaviour; subclasses override selectively.
    """

    #: Human-readable policy name used in reports.
    name = "base"

    #: Whether this policy reads PMU counters (charges collection cost).
    collects_pmu = False

    #: Licence for the batched engine's fused slice-expiry re-pick: True
    #: promises that :meth:`steal` returns ``None`` whenever every queued
    #: VCPU machine-wide stopped running at exactly ``now`` (cache-hot)
    #: and the thief's own queue is non-empty.  The engine still *calls*
    #: the real steal at the fused boundary — the flag only licenses
    #: proving the call is a no-op in advance, so any RNG it draws
    #: replays exactly.  Policies with a custom steal must leave this
    #: False unless the same guarantee holds.
    fused_repick_steals_none = False

    def __init__(self, params: CreditParams | None = None) -> None:
        self.params = params or CreditParams()
        self.machine: Optional["Machine"] = None

    # -- lifecycle -------------------------------------------------------
    def attach(self, machine: "Machine") -> None:
        """Bind the policy to a machine (called once by the machine)."""
        self.machine = machine

    # -- hooks ------------------------------------------------------------
    def on_tick(self, now: float, tick_index: int) -> None:
        """10 ms accounting tick: debit/refill credits, preempt."""
        raise NotImplementedError

    def steal(self, pcpu: Pcpu, now: float, under_only: bool = False) -> Optional[Vcpu]:
        """A PCPU without useful local work asks for some.

        Xen's balancer runs whenever the local candidate is the idle
        VCPU *or* has OVER priority; in the latter case only an UNDER
        VCPU is worth stealing (``under_only=True``).  Returns a VCPU
        already removed from its victim queue (the machine completes
        the migration bookkeeping), or None.
        """
        raise NotImplementedError

    def tick_is_quiescent(self, tick_index: int) -> bool:
        """May the batched engine fold the tick at ``tick_index`` into a batch?

        Returning True promises that :meth:`on_tick` at ``tick_index`` is
        *exactly* the stock Credit arithmetic — debit running VCPUs,
        refill+requeue on accounting periods, slice/priority preemption —
        with no additional state, RNG draws, or hypervisor charges beyond
        one ``pmu.record_collection()`` per occupied PCPU (the stepper's
        refresh charge, replayed by the engine).  The engine then decides
        no-op-ness from projected credit/priority/slice state alone; a
        tick it cannot prove quiescent still terminates the horizon as
        before.  Fused horizons never cross a sampling boundary (the
        horizon is capped there structurally), so sampling-period work
        such as vProbe's partitioning pass is outside this contract.

        The base policy conservatively refuses; subclasses opt in only
        when the promise above holds for *their* tick behaviour.
        """
        return False

    def on_sample_period(self, now: float) -> None:
        """End of a sampling period (vProbe's partitioning point)."""

    def on_context_switch(self, pcpu: Pcpu, prev: Optional[Vcpu], nxt: Optional[Vcpu]) -> None:
        """Called by the machine around every context switch."""

    def on_vcpu_wake(self, vcpu: Vcpu, now: float) -> int:
        """Choose the PCPU a waking VCPU is enqueued on.

        Base behaviour: wherever it last ran, falling back to PCPU 0
        before first placement.  Subclasses model tickle-time placement.
        """
        return vcpu.pcpu if vcpu.pcpu is not None else 0


class CreditScheduler(SchedulerPolicy):
    """Stock Xen Credit scheduler with NUMA-blind load balancing."""

    name = "credit"

    #: Credit's balancer skips cache-hot candidates, and an ``under_only``
    #: call has no desperation fallback — so with every queued VCPU
    #: freshly preempted at ``now`` a re-pick-time steal provably returns
    #: None (it still draws its ``credit.steal`` permutation, which the
    #: engine replays by making the real call).
    fused_repick_steals_none = True

    def tick_is_quiescent(self, tick_index: int) -> bool:
        # Stock-arithmetic promise: honoured only while *this class's*
        # tick machinery is in force.  A subclass that overrides any of
        # the three methods (BRM's penalty/migration ticks override
        # on_tick, for example) opts out automatically.
        cls = type(self)
        return (
            cls.on_tick is CreditScheduler.on_tick
            and cls._refill_credits is CreditScheduler._refill_credits
            and cls._requeue_for_priority is CreditScheduler._requeue_for_priority
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def on_tick(self, now: float, tick_index: int) -> None:
        machine = self.machine
        assert machine is not None, "policy not attached to a machine"
        params = self.params

        # Debit running VCPUs; a VCPU that received a full tick of
        # service also loses its wake-up BOOST (csched_vcpu_acct).
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is not None:
                cur.credits = max(
                    params.credit_floor, cur.credits - params.credits_per_tick
                )
                cur.boosted = False

        # Accounting period: refill credits in proportion to weight.
        if tick_index % params.ticks_per_acct == 0:
            self._refill_credits()
            self._requeue_for_priority()

        # Preemption: slice expiry and higher-class-behind-lower.  A
        # slice expiry always re-enters schedule() (Xen's 30 ms timer),
        # even with an empty local queue — that is where the balancer
        # gets its chance to pull queued work from loaded peers, which
        # is what keeps surplus VCPUs fairly served machine-wide.
        for pcpu in machine.pcpus:
            cur = pcpu.current
            if cur is None:
                continue
            slice_expired = cur.slice_used_s >= params.slice_s - 1e-12
            if slice_expired or pcpu.queue.has_priority_over(cur):
                machine.preempt(pcpu, now)
        # Balancing itself happens at the machine's scheduling pass:
        # whenever a PCPU must pick work and its best local candidate
        # is OVER (or absent), the policy's steal() hook runs.  That
        # mirrors Xen, where csched_load_balance is only invoked from
        # schedule() — after a slice expiry, block or preemption
        # empties the CPU — never autonomously.

    def _refill_credits(self) -> None:
        """Distribute one period's credits over active VCPUs by weight."""
        machine = self.machine
        assert machine is not None
        params = self.params
        active = [v for v in machine.vcpus if v.runnable]
        if not active:
            return
        total_weight = sum(v.domain.weight for v in active)
        # Credit supply per period: one full slice's worth per PCPU.
        supply = params.credits_per_tick * params.ticks_per_acct * len(machine.pcpus)
        for vcpu in active:
            share = supply * (vcpu.domain.weight / total_weight)
            vcpu.credits = min(params.credit_cap, vcpu.credits + share)

    def _requeue_for_priority(self) -> None:
        """Re-sort queues after refill may have flipped UNDER/OVER."""
        machine = self.machine
        assert machine is not None
        for pcpu in machine.pcpus:
            for vcpu in pcpu.queue.requeue_all():
                pcpu.queue.push(vcpu)

    # ------------------------------------------------------------------
    # Load balancing (the NUMA-blind part the paper fixes)
    # ------------------------------------------------------------------
    def steal(self, pcpu: Pcpu, now: float, under_only: bool = False) -> Optional[Vcpu]:
        """Steal the head VCPU of any peer queue, NUMA-blind.

        Peers are scanned in a random order (modelling Xen's
        arbitrary-arrival scan from the idle CPU onwards), so roughly
        half the steals on a two-node machine cross the interconnect.
        """
        machine = self.machine
        assert machine is not None
        order = machine.rng.get("credit.steal").permutation(len(machine.pcpus))
        max_rank = 1 if under_only else 2
        hot_window = self.params.cache_hot_s

        def cold(v: Vcpu) -> bool:
            return now - v.last_ran_time >= hot_window

        for idx in order:
            victim = machine.pcpus[int(idx)]
            if victim is pcpu:
                continue
            candidate = victim.queue.steal_candidate(max_rank, cold)
            if candidate is not None:
                victim.queue.remove(candidate)
                return candidate
        if not under_only:
            # A PCPU about to idle takes cache-hot work rather than none.
            for idx in order:
                victim = machine.pcpus[int(idx)]
                if victim is pcpu:
                    continue
                candidate = victim.queue.pop()
                if candidate is not None:
                    return candidate
        return None

    # ------------------------------------------------------------------
    # Wake placement (the tickle path, equally NUMA-blind)
    # ------------------------------------------------------------------
    def on_vcpu_wake(self, vcpu: Vcpu, now: float) -> int:
        """Place a waking (BOOST) VCPU wherever capacity appears.

        Models __runq_tickle + the subsequent pull: the freshly boosted
        VCPU ends up on the least busy CPU that reacts to the IPI,
        with no regard for node boundaries.  If nowhere is less loaded
        than home, the VCPU stays put (work conservation).
        """
        machine = self.machine
        assert machine is not None
        home = vcpu.pcpu if vcpu.pcpu is not None else 0
        home_load = machine.pcpus[home].load_with_current
        lighter = [
            p.pcpu_id
            for p in machine.pcpus
            if p.pcpu_id != home and p.load_with_current < home_load
        ]
        if not lighter:
            return home
        rng = machine.rng.get("credit.wake")
        return int(lighter[int(rng.integers(len(lighter)))])
