"""Per-PCPU run queue with Credit's three-priority discipline.

Xen 4.0's Credit scheduler keeps one queue per PCPU ordered by class —
BOOST (just woken from sleep), UNDER (credits remaining), OVER
(credits exhausted) — FIFO within each class.  BOOST is the mechanism
behind Credit's I/O responsiveness *and* its migration churn: boosted
VCPUs preempt immediately and are what the NUMA-blind balancer steals
across sockets (§II-B's "frequent migrations").

The queue also exposes the scan/remove operations the load balancers
need: remove a specific VCPU, pop restricted to a priority ceiling,
and pick the queued VCPU minimising an arbitrary key (vProbe steals
the smallest LLC pressure, regardless of class — Algorithm 2).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Iterator, List, Optional, Tuple

from repro.xen.vcpu import Vcpu, VcpuState

__all__ = ["RunQueue"]


class RunQueue:
    """Three-class FIFO run queue (BOOST before UNDER before OVER)."""

    def __init__(self) -> None:
        self._classes: Tuple[Deque[Vcpu], Deque[Vcpu], Deque[Vcpu]] = (
            deque(),
            deque(),
            deque(),
        )

    def __len__(self) -> int:
        return sum(len(q) for q in self._classes)

    def __bool__(self) -> bool:
        return any(self._classes)

    def __iter__(self) -> Iterator[Vcpu]:
        """Iterate in scheduling order (class by class, FIFO within)."""
        for q in self._classes:
            yield from q

    def __contains__(self, vcpu: Vcpu) -> bool:
        return any(vcpu in q for q in self._classes)

    def push(self, vcpu: Vcpu) -> None:
        """Enqueue at the tail of the VCPU's priority class.

        Raises
        ------
        ValueError
            If the VCPU is not in a queueable state or already queued.
        """
        if vcpu.state is not VcpuState.RUNNABLE:
            raise ValueError(f"cannot enqueue {vcpu!r}: state is {vcpu.state.value}")
        if vcpu in self:
            raise ValueError(f"{vcpu!r} is already queued")
        self._classes[vcpu.priority_rank].append(vcpu)

    def pop(self) -> Optional[Vcpu]:
        """Dequeue the head (best class, oldest); None when empty."""
        for q in self._classes:
            if q:
                return q.popleft()
        return None

    def pop_rank_at_most(self, max_rank: int) -> Optional[Vcpu]:
        """Dequeue the head VCPU whose class is ``max_rank`` or better.

        Used by the Credit balancer, which only steals work strictly
        more urgent than what the thief would otherwise run.
        """
        for rank, q in enumerate(self._classes):
            if rank > max_rank:
                break
            if q:
                return q.popleft()
        return None

    def peek(self) -> Optional[Vcpu]:
        """The VCPU :meth:`pop` would return, without removing it."""
        for q in self._classes:
            if q:
                return q[0]
        return None

    def steal_candidate(self, max_rank: int, predicate: Callable[[Vcpu], bool]) -> Optional[Vcpu]:
        """First queued VCPU of class <= ``max_rank`` satisfying ``predicate``.

        Scans in scheduling order and does not remove; callers
        :meth:`remove` the returned VCPU once committed.
        """
        for rank, q in enumerate(self._classes):
            if rank > max_rank:
                break
            for vcpu in q:
                if predicate(vcpu):
                    return vcpu
        return None

    def head_rank(self) -> Optional[int]:
        """Priority rank of the queue head (None when empty)."""
        for rank, q in enumerate(self._classes):
            if q:
                return rank
        return None

    def remove(self, vcpu: Vcpu) -> bool:
        """Remove a specific VCPU; returns False if it was not queued."""
        for q in self._classes:
            try:
                q.remove(vcpu)
                return True
            except ValueError:
                continue
        return False

    def snapshot(self) -> List[Vcpu]:
        """A list copy in scheduling order (for scans that may mutate)."""
        return list(self)

    def min_by(
        self,
        key: Callable[[Vcpu], float],
        max_rank: int = 2,
    ) -> Optional[Vcpu]:
        """The queued VCPU minimising ``key`` (ties: scheduling order).

        ``max_rank`` optionally restricts the pool to classes at least
        that urgent (0 = BOOST only, 1 = BOOST+UNDER, 2 = all).
        """
        best: Optional[Vcpu] = None
        best_val = float("inf")
        for rank, q in enumerate(self._classes):
            if rank > max_rank:
                break
            for vcpu in q:
                val = key(vcpu)
                if val < best_val:
                    best, best_val = vcpu, val
        return best

    def has_priority_over(self, running: Optional[Vcpu]) -> bool:
        """Would the queue head preempt ``running`` under Credit rules?

        A head of a strictly better class preempts; nothing preempts
        within the same class mid-slice.
        """
        head_rank = self.head_rank()
        if head_rank is None:
            return False
        if running is None:
            return True
        return head_rank < running.priority_rank

    def requeue_all(self) -> List[Vcpu]:
        """Drain the queue, returning VCPUs in scheduling order.

        Used when priorities were recomputed and class membership may
        have changed; callers re-:meth:`push` the drained VCPUs.
        """
        drained = list(self)
        for q in self._classes:
            q.clear()
        return drained
