"""Domains (virtual machines).

A domain bundles its VCPUs' workloads with a memory placement.  The
hypervisor-side view is deliberately thin — per the transparency goal
of the paper, the scheduler never looks inside a domain beyond its
VCPUs' PMU signatures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.appmodel import ApplicationProfile, VcpuWorkload
from repro.xen.memalloc import MemoryPlacement
from repro.xen.vcpu import Vcpu
from repro.util.rng import RngStreams
from repro.util.validation import check_positive

__all__ = ["Domain"]


class Domain:
    """One virtual machine.

    Parameters
    ----------
    name:
        Identifier used in reports (``vm1`` ... in the experiments).
    memory_bytes:
        Configured guest memory (drives placement slice sizes).
    placement:
        Where the domain's memory physically lives.
    workloads:
        One :class:`VcpuWorkload` per VCPU; the placement must have the
        same number of slices.
    weight:
        Credit-scheduler weight (all domains equal in the paper).
    pinned_pcpus:
        Optional explicit initial PCPU per VCPU (length ``num_vcpus``).
        Used by calibration scenarios that pin a VCPU (§IV-A); normal
        domains start NUMA-blind wherever the hypervisor puts them.
    first_touch_init:
        When True (default), each memory slice is re-homed at domain
        creation to the node of its VCPU's initial PCPU — the guest
        faults its data in from wherever its threads first run, so a
        freshly booted workload always starts *consistent*.  Scheduler
        quality then shows up in how that consistency is preserved
        (vProbe/LB) or destroyed (NUMA-blind Credit).  Pass False to
        keep the explicit ``placement`` matrix untouched.
    """

    def __init__(
        self,
        name: str,
        memory_bytes: float,
        placement: MemoryPlacement,
        workloads: Sequence[VcpuWorkload],
        weight: float = 256.0,
        pinned_pcpus: Optional[Sequence[int]] = None,
        first_touch_init: bool = True,
    ) -> None:
        if not name:
            raise ValueError("domain name must be non-empty")
        check_positive(memory_bytes, "memory_bytes")
        check_positive(weight, "weight")
        if not workloads:
            raise ValueError("a domain needs at least one VCPU workload")
        if placement.num_slices != len(workloads):
            raise ValueError(
                f"placement has {placement.num_slices} slices but domain has "
                f"{len(workloads)} VCPUs; they must match"
            )
        if pinned_pcpus is not None and len(pinned_pcpus) != len(workloads):
            raise ValueError(
                f"pinned_pcpus has {len(pinned_pcpus)} entries for "
                f"{len(workloads)} VCPUs"
            )
        self.name = name
        self.memory_bytes = float(memory_bytes)
        self.placement = placement
        self.workloads: List[VcpuWorkload] = list(workloads)
        self.weight = float(weight)
        self.pinned_pcpus = list(pinned_pcpus) if pinned_pcpus is not None else None
        self.first_touch_init = first_touch_init
        self.vcpus: List[Vcpu] = []  # populated by Machine.add_domain

    # ------------------------------------------------------------------
    # Construction helper
    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        name: str,
        memory_bytes: float,
        placement: MemoryPlacement,
        profile: ApplicationProfile,
        num_vcpus: int,
        active_vcpus: Optional[int] = None,
        rng: Optional[RngStreams] = None,
        weight: float = 256.0,
    ) -> "Domain":
        """A domain whose active VCPUs all run the same profile.

        Parameters
        ----------
        num_vcpus:
            Total guest VCPUs.
        active_vcpus:
            How many actually run the application (a 4-threaded NPB job
            in an 8-VCPU guest leaves 4 VCPUs idle); default all.
        rng:
            Stream registry; each VCPU gets its own derived stream.
        """
        if num_vcpus <= 0:
            raise ValueError(f"num_vcpus must be > 0, got {num_vcpus}")
        active = num_vcpus if active_vcpus is None else active_vcpus
        if not 0 <= active <= num_vcpus:
            raise ValueError(
                f"active_vcpus must be in [0, {num_vcpus}], got {active}"
            )
        streams = rng or RngStreams(0)
        workloads = [
            VcpuWorkload(
                profile,
                streams.get(f"workload.{name}.v{i}"),
                slice_id=i,
                num_slices=num_vcpus,
                active=i < active,
            )
            for i in range(num_vcpus)
        ]
        return cls(name, memory_bytes, placement, workloads, weight=weight)

    # ------------------------------------------------------------------
    @property
    def num_vcpus(self) -> int:
        """Guest VCPU count."""
        return len(self.workloads)

    @property
    def slice_bytes(self) -> float:
        """Size of one memory slice."""
        return self.memory_bytes / self.num_vcpus

    def page_mix_for(self, vcpu_index: int) -> np.ndarray:
        """Node distribution of the pages VCPU ``vcpu_index`` accesses.

        Combines the workload's *current* hot slice (phases may have
        rotated it) with the domain placement.
        """
        workload = self.workloads[vcpu_index]
        return self.placement.page_mix(
            workload.slice_id, workload.profile.slice_concentration
        )

    def affinity_node(self, vcpu_index: int) -> int:
        """Ground-truth best node for a VCPU (most of its hot pages)."""
        return int(np.argmax(self.page_mix_for(vcpu_index)))

    @property
    def finite_workloads_done(self) -> bool:
        """True when every active, finite workload has completed."""
        return all(
            w.done for w in self.workloads if w.active and w.profile.is_finite
        )

    def mean_finish_time(self) -> Optional[float]:
        """Mean finish time of this domain's completed finite VCPUs."""
        times = [v.finish_time for v in self.vcpus if v.finish_time is not None]
        if not times:
            return None
        return float(np.mean(times))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Domain({self.name!r}, vcpus={self.num_vcpus})"
