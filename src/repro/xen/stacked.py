"""Lane-stacked execution: many independent machines, one kernel.

Every figure grid in the reproduction replays the same scenario shape
over many seeds.  Each solo run pays the full Python-per-epoch cost of
the fused replay loop alone, and the within-run batching axis is
nearly exhausted (event density keeps horizons short).  This module
adds the cross-run axis: L independent machines ("lanes") advance in
lockstep through one set of 2D ``lanes x slots`` ndarrays, so the
~100 ufunc calls of an epoch pass are amortised over every lane at
once instead of ~100 Python statements per lane.

The hard contract is the repo's signature guarantee, per lane: a
lane's end state (and therefore its ``RunSummary``) is **bitwise
identical** to running that machine solo on the batched engine.  The
structure that makes this provable:

* Each lane keeps its own :class:`~repro.xen.simulator.Machine`,
  its own :class:`~repro.xen.engine.BatchedEngine` and its own RNG
  streams.  All control flow — boundary phases, horizon sizing, wake
  processing, transitions, every RNG draw — runs in per-lane Python
  through the *same* methods the solo path uses
  (``Machine._epoch_prologue`` / ``_epoch_epilogue``,
  ``BatchedEngine.begin_fused_batch`` / ``finish_fused_batch``).
* Only the event-free fused-replay epochs are stacked.  The kernel
  (:class:`_StackedKernel`) mirrors
  :meth:`~repro.xen.engine.BatchedEngine._fused_epochs` with
  elementwise float64 ufuncs (same IEEE operations per element),
  left-fold ``np.add.accumulate`` for the ordered cross-VCPU traffic
  sums, 0.0-masked no-ops for padded slots, and per-element Python
  ``pow`` for shaped miss curves (matching the solo kernel's rule
  that ndarray ``**`` rounds differently).
* Any lane the kernel cannot take bitwise — aliased placement rows,
  mismatched latency constants, an oversized running set — falls back
  to the engine's own scalar ``_fused_epochs`` for that batch, and a
  lane whose engine is not batched runs solo outright.  Fallbacks are
  always safe because both sides honour the same
  :class:`~repro.xen.engine._FusedState` contract.
* One lane's :class:`~repro.xen.simulator.SimulationTimeout` (or any
  other per-lane error) retires that lane alone; stack-mates continue
  unperturbed because no simulated state is shared between lanes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.xen.engine import BatchedEngine, _FusedState
from repro.xen.simulator import Machine, SimResult, SimulationTimeout

__all__ = ["LaneResult", "StackedEngine", "run_stacked"]

# Constant-block row order (see ``_StackedKernel.con``).  The values
# are the padded-slot defaults: a settled node-0 singleton with no
# references, for which every epoch operation is a finite, exact
# ``+0.0`` no-op.
_PAD_ROW = (
    1.0,  # conc
    0.0,  # anti
    0.0,  # rp
    1.0,  # cb
    1.0,  # ml
    0.0,  # ck
    1.0,  # n2
    0.0,  # nd0f (1.0 where the slot's VCPU runs on node 0)
    1.0,  # nd0i (1.0 - nd0f)
    np.inf,  # total
    1.0,  # keep (1 - drift; 1.0 when the slot doesn't drift)
    0.0,  # add0
    0.0,  # add1
    1.0,  # nsl
    0.0,  # share
    0.0,  # minmr
    0.0,  # span
    1.0,  # cf
)
_PAD_COL = np.array(_PAD_ROW)[:, None]


@dataclass
class LaneResult:
    """Outcome of one lane: a result or the error that retired it."""

    result: Optional[SimResult] = None
    error: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        return self.error is None


class _Lane:
    """Bookkeeping for one machine advancing through the executor."""

    __slots__ = (
        "index",
        "machine",
        "engine",
        "limit",
        "stop_check",
        "gen",
        "pending",
        "state",
        "finished",
        "interrupted",
        "error",
        "cached_plan",
        "meta",
    )

    def __init__(self, index, machine, limit, stop_check):
        self.index = index
        self.machine = machine
        self.engine = None
        self.limit = limit
        self.stop_check = stop_check
        self.gen = None
        self.pending = 0
        self.state: Optional[_FusedState] = None
        self.finished = False
        self.interrupted = False
        self.error: Optional[BaseException] = None
        # Strong reference to the last packed plan: identity implies
        # liveness, so ``plan is cached_plan`` can never alias a
        # recycled object and the packed constants stay trustworthy.
        self.cached_plan = None
        self.meta = None


class _StackedKernel:
    """Lane-stacked mirror of ``BatchedEngine._fused_epochs``.

    Holds one set of ``(L, S)`` float64 arrays (L lanes, S PCPU
    slots) plus per-lane metadata.  A lane *enters* with a seeded
    :class:`_FusedState` (its lists are packed into the lane's array
    row), any number of ``run_epochs`` calls advance every entered
    lane together, and the lane *exits* with its finals unpacked into
    the same state object — after which the engine's ordinary
    ``_fused_commit`` sees exactly what the scalar loop would have
    left behind.

    Bitwise rules mirrored from the scalar loop and the solo 2D
    kernel's proofs:

    * elementwise float64 ufuncs perform the same IEEE-754 operation
      as the corresponding Python-float expression;
    * cross-VCPU ordered reductions (IMC/QPI flows, machine busy
      time) fold left in slot order — ``np.add.accumulate`` for the
      flows, a masked per-slot add chain for busy time — and padded
      slots contribute exact ``+0.0`` terms;
    * branch selections (``bad`` curves, queueing-knee caps, node-0
      routing) use ``np.where`` / additive 0-1 masks whose discarded
      or zeroed terms are exact no-ops;
    * shaped miss curves use per-element Python ``pow`` (ndarray
      ``**`` rounds differently — same rule as the solo kernel);
    * placement drift updates rows elementwise (the kernel refuses
      aliased rows) and applies the shared ``overall`` increments as
      masked left folds in slot order, one fold per overall column
      (a two-node machine has at most two).
    """

    def __init__(self, num_lanes: int, slots: int, epoch: float):
        self.slots = slots
        self.epoch = epoch
        self.scalars = None
        self._bw3 = None
        self.lanes_entered = 0
        L = num_lanes
        S = slots
        # Assignment-static constants (repacked when a lane's plan
        # changes) live in one (18, L, S) block so a repack is a
        # single strided assignment; row order and padded-slot
        # defaults are ``_PAD_ROW``.
        self.con = np.empty((18, L, S))
        self.con[:] = np.array(_PAD_ROW)[:, None, None]
        (
            self.conc,
            self.anti,
            self.rp,
            self.cb,
            self.ml,
            self.ck,
            self.n2,
            self.nd0f,
            self.nd0i,
            self.total,
            self.keep,
            self.add0,
            self.add1,
            self.nsl,
            self.share,
            self.minmr,
            self.span,
            self.cf,
        ) = self.con
        # Slot -> over-mirror column (gather), and its one-hot cube
        # (over column x slot) for the ordered scatter folds.  Pads
        # point at the last column with an all-zero mask row.
        self.omap = np.full((L, S), S - 1, dtype=np.intp)
        self.maskO = np.zeros((L, S, S))
        self.bad = np.ones((L, S), dtype=bool)
        self.nd0b = np.zeros((L, S), dtype=bool)
        self.maskf = np.zeros((L, S))
        # Accumulators (packed on entry, unpacked on exit) in one
        # (12, L, S) block: entry and exit move all twelve rows with
        # one copy each.
        self.acc = np.zeros((12, L, S))
        (
            self.pend,
            self.busy,
            self.idone,
            self.sused,
            self.burst,
            self.bi,
            self.br,
            self.bm,
            self.bl,
            self.bx,
            self.m0,
            self.m1,
        ) = self.acc
        self.warm = np.zeros((L, S))
        self.mbusy = np.zeros(L)
        self.R0 = np.full((L, S), 1.0)
        self.R1 = np.zeros((L, S))
        self.OS0 = np.zeros((L, S))
        self.OS1 = np.zeros((L, S))
        # Preallocated scratch for the epoch pass's ordered folds.
        self._mfold = np.zeros((L, S + 1))
        self._ofold = np.zeros((L, S, S + 1))
        self._rr = np.zeros((3, L))
        self._packed_k = [0] * L
        # Per-lane Python metadata for packed lanes.
        self.shaped: List[list] = [[] for _ in range(L)]
        self.active: List[Optional[_Lane]] = [None] * L
        self._active_shaped: tuple = ()
        self._shaped_dirty = False

    # -- lane entry / exit ---------------------------------------------
    def try_enter(self, lane: _Lane, state: _FusedState) -> bool:
        """Pack ``state`` into the lane's row; False if not stackable."""
        plan = state.plan
        k = state.k
        S = self.slots
        if k > S:
            return False
        (
            flat_plan,
            flat_charge,
            rows,
            _miss,
            _mix_rows,
            _reseed_w,
            row_pairs,
            over_pairs,
            rloc,
            oloc,
            _w_by_node,
            scalars,
        ) = plan
        if len(row_pairs) != k or len(flat_plan) != k:
            # Aliased placement rows (or an unexpected member layout):
            # the scalar replay's shared-mirror interleaving has no
            # elementwise equivalent, so this batch runs scalar.
            return False
        if self.scalars is None:
            self.scalars = scalars
        elif scalars != self.scalars:
            return False
        li = lane.index
        if plan is not lane.cached_plan:
            # Constants AND warmth refs repack together: ``lane.meta``
            # must always describe ``cached_plan``, never a plan that
            # was merely attempted (and possibly rejected) in between.
            self._pack_constants(lane, state, plan)
            lane.cached_plan = plan
        meta = lane.meta
        wl_refs = meta[0]
        # Accumulators: live lists -> array rows.
        self.warm[li, :k] = [w_l[j] for w_l, j in wl_refs]
        self.R0[li, :k] = [loc[0] for loc in rloc]
        self.R1[li, :k] = [loc[1] for loc in rloc]
        n_over = len(over_pairs)
        self.OS0[li, :n_over] = [loc[0] for _src, loc in over_pairs]
        self.OS1[li, :n_over] = [loc[1] for _src, loc in over_pairs]
        self.acc[:, li, :k] = (
            state.pend,
            state.busy,
            state.idone,
            state.sused,
            state.burst,
            state.bi,
            state.br,
            state.bm,
            state.bl,
            state.bx,
            state.m0,
            state.m1,
        )
        self.mbusy[li] = state.mbusy
        # The active mask is zeroed by exit_lane, so it must be
        # restored on every entry -- not just when constants repack.
        self.maskf[li, :k] = 1.0
        self.maskf[li, k:] = 0.0
        if k < S:
            # Padded slots read as a settled node-0 singleton; their
            # R rows must hold (1, 0) so every derived term is +0.0.
            self.R0[li, k:] = 1.0
            self.R1[li, k:] = 0.0
        self.active[li] = lane
        lane.state = state
        self.lanes_entered += 1
        self._shaped_dirty = True
        return True

    def _pack_constants(self, lane: _Lane, state: _FusedState, plan) -> None:
        """Repack the assignment-static row for a lane's new plan."""
        li = lane.index
        (
            flat_plan,
            flat_charge,
            rows,
            _miss,
            _mix_rows,
            _reseed_w,
            _row_pairs,
            over_pairs,
            _rloc,
            oloc,
            _w_by_node,
            _scalars,
        ) = plan
        k = state.k
        S = self.slots
        wl_refs: List[tuple] = [None] * k
        shaped = []
        share = [0.0] * k
        minmr = [0.0] * k
        span = [0.0] * k
        bad = [True] * k
        cfl = [1.0] * k
        for (w_l, j, pos, sh, mn, sp, shp, bd), (_w2, _j2, cf) in zip(
            flat_plan, flat_charge
        ):
            wl_refs[pos] = (w_l, j)
            share[pos] = sh
            minmr[pos] = mn
            span[pos] = sp
            bad[pos] = bd
            cfl[pos] = cf
            if shp != 1.0:
                shaped.append((pos, shp))
        lane.meta = (wl_refs,)
        self.shaped[li] = shaped

        over_slot = {id(loc): idx for idx, (_src, loc) in enumerate(over_pairs)}
        omap = [S - 1] * k
        conc = [1.0] * k
        anti = [0.0] * k
        rp = [0.0] * k
        cb = [1.0] * k
        ml = [1.0] * k
        ck = [0.0] * k
        n2 = [1.0] * k
        nd0 = [False] * k
        nd0f = [0.0] * k
        nd0i = [1.0] * k
        total = [np.inf] * k
        keep = [1.0] * k
        add0 = [0.0] * k
        add1 = [0.0] * k
        nsl = [1.0] * k
        for i, (c, a, _row, over, rpv, cbv, mlv, ckv, n2v, _mrow, nd0v, tot, d, nslv) in enumerate(rows):
            conc[i] = c
            anti[i] = a
            rp[i] = rpv
            cb[i] = cbv
            ml[i] = mlv
            ck[i] = ckv
            n2[i] = n2v
            if nd0v:
                nd0[i] = True
                nd0f[i] = 1.0
                nd0i[i] = 0.0
            total[i] = np.inf if tot is None else tot
            if d > 0:
                keep[i] = 1.0 - d
                if nd0v:
                    add0[i] = d
                else:
                    add1[i] = d
            nsl[i] = float(nslv)
            omap[i] = over_slot[id(over)]
        self.con[:, li, :k] = (
            conc,
            anti,
            rp,
            cb,
            ml,
            ck,
            n2,
            nd0f,
            nd0i,
            total,
            keep,
            add0,
            add1,
            nsl,
            share,
            minmr,
            span,
            cfl,
        )
        self.bad[li, :k] = bad
        self.nd0b[li, :k] = nd0
        self.omap[li, :k] = omap
        pk = self._packed_k[li]
        if k < pk:
            # A shrunken running set: restore the pad constants the
            # previous (wider) plan overwrote.
            self.con[:, li, k:pk] = _PAD_COL
            self.bad[li, k:pk] = True
            self.nd0b[li, k:pk] = False
            self.omap[li, k:pk] = S - 1
        self._packed_k[li] = k
        cube = self.maskO[li]
        cube[:] = 0.0
        cube[np.asarray(omap), np.arange(k)] = 1.0

    def _rebuild_shaped(self) -> None:
        self._shaped_dirty = False
        self._active_shaped = tuple(
            (lane.index, pos, shp)
            for lane in self.active
            if lane is not None
            for pos, shp in self.shaped[lane.index]
        )

    def exit_lane(self, lane: _Lane) -> None:
        """Unpack the lane's finals back into its seeded state."""
        li = lane.index
        state = lane.state
        k = state.k
        wl_refs = lane.meta[0]
        for (w_l, j), val in zip(wl_refs, self.warm[li, :k].tolist()):
            w_l[j] = val
        plan = state.plan
        rloc = plan[8]
        over_pairs = plan[7]
        r0 = self.R0[li, :k].tolist()
        r1 = self.R1[li, :k].tolist()
        for i, loc in enumerate(rloc):
            loc[0] = r0[i]
            loc[1] = r1[i]
        n_over = len(over_pairs)
        o0 = self.OS0[li, :n_over].tolist()
        o1 = self.OS1[li, :n_over].tolist()
        for i, (_src, loc) in enumerate(over_pairs):
            loc[0] = o0[i]
            loc[1] = o1[i]
        vals = self.acc[:, li, :k].tolist()
        state.pend[:] = vals[0]
        state.busy[:] = vals[1]
        state.idone[:] = vals[2]
        state.sused[:] = vals[3]
        state.burst[:] = vals[4]
        state.bi[:] = vals[5]
        state.br[:] = vals[6]
        state.bm[:] = vals[7]
        state.bl[:] = vals[8]
        state.bx[:] = vals[9]
        state.m0[:] = vals[10]
        state.m1[:] = vals[11]
        state.mbusy = float(self.mbusy[li])
        self.maskf[li] = 0.0
        self.active[li] = None
        lane.state = None
        self.lanes_entered -= 1
        self._shaped_dirty = True

    # -- the stacked epoch pass ----------------------------------------
    def run_epochs(self, n: int) -> None:
        """Advance every entered lane ``n`` epochs, all lanes at once.

        Retired / never-entered lane rows evolve as finite garbage
        (their constants keep the last or padded values) and are never
        read: no simulated quantity crosses lanes, the ordered
        reductions run along the slot axis only.
        """
        (
            hit_ns,
            local_dram,
            bw0,
            bw1,
            qpi_bw,
            s_dram,
            s_remote,
            cap,
            knee,
            bpm,
        ) = self.scalars
        bw3 = self._bw3
        if bw3 is None:
            bw3 = self._bw3 = np.array([[bw0], [bw1], [qpi_bw]])
        epoch = self.epoch
        (
            conc,
            anti,
            rp,
            cb,
            ml,
            ck,
            n2,
            nd0f,
            nd0i,
            total,
            keep,
            add0,
            add1,
            nsl,
            share,
            minmr,
            span,
            cf,
        ) = self.con
        nd0b = self.nd0b
        bad = self.bad
        omap = self.omap
        maskO = self.maskO
        maskf = self.maskf
        warm = self.warm
        (
            pend,
            busy,
            idone,
            sused,
            burst,
            bi,
            br,
            bm,
            bl,
            bx,
            m0a,
            m1a,
        ) = self.acc
        mbusy = self.mbusy
        R0 = self.R0
        R1 = self.R1
        OS0 = self.OS0
        OS1 = self.OS1
        if self._shaped_dirty:
            self._rebuild_shaped()
        shaped = self._active_shaped
        mfold = self._mfold
        ofold = self._ofold
        rr = self._rr
        for _ in range(n):
            # Miss curves (f = share * warmth, saturating curves get a
            # per-element Python pow; `bad` working sets pin f = 1).
            f = np.where(bad, 1.0, share * warm)
            missing = 1.0 - f
            for li, pos, shp in shaped:
                # Python-float pow: np.float64.__pow__ is not bitwise
                # identical to CPython's, and the scalar replay uses
                # the latter.
                missing[li, pos] = (1.0 - float(f[li, pos])) ** shp
            mr = minmr + span * missing

            # Page mix and first contention round.
            O0g = np.take_along_axis(OS0, omap, axis=1)
            O1g = np.take_along_axis(OS1, omap, axis=1)
            m0 = conc * R0 + anti * O0g
            m1 = conc * R1 + anti * O1g
            s = m0 + m1
            x0 = m0 / s
            x1 = m1 / s
            per_ref = (1.0 - mr) * hit_ns + mr * local_dram
            stall = rp * per_ref * n2 / ml
            rate = ck / (cb + stall)
            t = rate * rp * mr * bpm
            flow0 = t * x0
            flow1 = t * x1
            # Left-fold sums: accumulate is sequential in slot order,
            # and the scalar loop's 0.0 seed plus first add is exact.
            rr[0] = np.add.accumulate(flow0, axis=1)[:, -1]
            rr[1] = np.add.accumulate(flow1, axis=1)[:, -1]
            qpic = np.where(nd0b, flow1, flow0)
            rr[2] = np.add.accumulate(qpic, axis=1)[:, -1]

            # All three queueing knees (IMC0 / IMC1 / QPI) in one
            # (3, L) pass: elementwise, so the stacking is exact.
            rho = rr / bw3
            fac = np.where(
                rho >= knee, cap, 1.0 / (1.0 - np.minimum(rho, knee))
            )
            dram0 = (s_dram * fac[0])[:, None]
            dram1 = (s_dram * fac[1])[:, None]
            remote_add = (s_remote * fac[2])[:, None]

            # Second round: remote/queueing penalties, then progress.
            # The additive masks reproduce the scalar branch picks
            # exactly (adding remote_add * 0.0 / multiplying a zero
            # frac are exact no-ops).
            sel0 = dram0 + remote_add * nd0i
            sel1 = dram1 + remote_add * nd0f
            penalty = x0 * sel0 + x1 * sel1
            per_ref = (1.0 - mr) * hit_ns + mr * penalty
            stall = rp * per_ref * n2 / ml
            rate = ck / (cb + stall)

            used = np.minimum(pend, epoch)
            pend -= used
            compute = epoch - used
            busy += epoch
            # Machine-busy time: one masked left fold along the slot
            # axis (pads and retired lanes contribute exact +0.0).
            mfold[:, 0] = mbusy
            np.multiply(maskf, epoch, out=mfold[:, 1:])
            np.add.accumulate(mfold, axis=1, out=mfold)
            mbusy[:] = mfold[:, -1]
            done = rate * compute
            done = np.minimum(done, np.maximum(total - idone, 0.0))
            r_ = done * rp
            mi = r_ * mr
            a0 = mi * x0
            a1 = mi * x1
            m0a += a0
            m1a += a1
            bi += done
            br += r_
            bm += mi
            local = np.where(nd0b, a0, a1)
            bl += local
            bx += (a0 + a1) - local
            idone += done
            sused += epoch
            burst -= epoch

            # Placement drift: rows are unaliased (entry contract), so
            # they advance elementwise; the shared `overall` vectors
            # take their increments as masked left folds in slot
            # order, exactly the scalar replay's add sequence (masked
            # slots insert exact-zero terms, which cannot perturb the
            # partial sums).
            r0_old = R0.copy()
            r1_old = R1.copy()
            np.multiply(R0, keep, out=R0)
            np.add(R0, add0, out=R0)
            np.multiply(R1, keep, out=R1)
            np.add(R1, add1, out=R1)
            d0 = (R0 - r0_old) / nsl
            d1 = (R1 - r1_old) / nsl
            ofold[:, :, 0] = OS0
            np.multiply(d0[:, None, :], maskO, out=ofold[:, :, 1:])
            np.add.accumulate(ofold, axis=2, out=ofold)
            OS0[:, :] = ofold[:, :, -1]
            ofold[:, :, 0] = OS1
            np.multiply(d1[:, None, :], maskO, out=ofold[:, :, 1:])
            np.add.accumulate(ofold, axis=2, out=ofold)
            OS1[:, :] = ofold[:, :, -1]

            # Warmth charge.
            np.subtract(1.0, warm, out=warm)
            np.multiply(warm, cf, out=warm)
            np.subtract(1.0, warm, out=warm)


class StackedEngine:
    """Advance L independent machines with a shared epoch kernel.

    Construction takes the lane machines (same scenario *shape*:
    identical ``epoch_s``; seeds — and optionally schedulers — may
    differ).  :meth:`run` drives all lanes to completion and returns
    one :class:`LaneResult` per lane, order-aligned with the input.

    Per-lane isolation: a lane that raises
    :class:`~repro.xen.simulator.SimulationTimeout` (or anything
    else) is retired with its error recorded; the other lanes never
    observe it.  A lane whose engine is not the batched engine is run
    solo through ``Machine.run`` — same results, no stacking.
    """

    def __init__(
        self,
        machines: Sequence[Machine],
        max_time_s: Optional[float] = None,
        stop_checks: Optional[Sequence[Optional[Callable[[], bool]]]] = None,
    ) -> None:
        if not machines:
            raise ValueError("StackedEngine needs at least one machine")
        epochs = {m.config.epoch_s for m in machines}
        if len(epochs) != 1:
            raise ValueError(
                f"stacked lanes must share epoch_s, got {sorted(epochs)}"
            )
        self.lanes: List[_Lane] = []
        for i, machine in enumerate(machines):
            limit = (
                max_time_s if max_time_s is not None else machine.config.max_time_s
            )
            check = stop_checks[i] if stop_checks is not None else None
            self.lanes.append(_Lane(i, machine, limit, check))
        slots = max(len(m.pcpus) for m in machines)
        self.kernel = _StackedKernel(
            len(self.lanes), slots, machines[0].config.epoch_s
        )

    # -- per-lane macro-step pump --------------------------------------
    def _pump(self, lane: _Lane):
        """Generator: one lane's run loop, yielding at fused batches.

        A faithful mirror of ``Machine.run`` + ``Machine._step_epoch``
        on the batched engine: identical boundary phases through
        ``_epoch_prologue`` / ``_epoch_epilogue``, identical horizon
        sizing, and identical phase-4 dispatch — except that a batch
        the engine itself would run through ``_advance_replay_fused``
        is seeded via ``begin_fused_batch`` and *yielded* to the
        executor, which runs its epochs (stacked or scalar) before
        resuming this generator for the commit.
        """
        machine = lane.machine
        engine = lane.engine
        limit = lane.limit
        epoch = machine.config.epoch_s
        cap = machine.config.max_epochs
        profiler = machine.profiler
        stop_check = lane.stop_check
        while machine.time < limit - 1e-12:
            if stop_check is not None and stop_check():
                lane.interrupted = True
                return
            if cap is not None and machine.epoch_index >= cap:
                raise SimulationTimeout(
                    machine.config.label or f"<{machine.policy.name} machine>",
                    cap,
                    machine.time,
                )
            now = machine.time
            machine._epoch_prologue(now, engine)
            stepped = 1
            t0 = profiler.start()
            batch = engine.compute_horizon(now, limit)
            profiler.stop("horizon", t0)
            t0 = profiler.start()
            if batch > 1:
                # Same dispatch split as the solo stepper: short
                # horizons seed a fused batch (stacked instead of
                # scalar-replayed), horizons past the replay cap take
                # advance_batch's closed-form chains, and singleton
                # epochs take the plain vector path — both of which
                # beat the kernel's per-epoch pass at their extremes.
                begun = engine.begin_fused_batch(now, epoch, batch)
                if begun is not None:
                    state, end = begun
                    yield state
                    engine.finish_fused_batch(state, end, epoch, batch)
                else:
                    end = engine.advance_batch(now, epoch, batch)
                stepped = batch
            else:
                end = now + epoch
                engine.advance_running(now, epoch)
            profiler.stop("epoch", t0)
            machine._epoch_epilogue(end, stepped, engine)
            if machine.config.stop_on_finite_completion and engine.all_finite_done():
                return

    def _advance_lane(self, lane: _Lane) -> None:
        """Drive a lane until it is packed in the kernel or finished."""
        kernel = self.kernel
        while True:
            try:
                state = next(lane.gen)
            except StopIteration:
                lane.finished = True
                return
            except Exception as exc:  # noqa: BLE001 — per-lane isolation
                lane.finished = True
                lane.error = exc
                return
            kb = state.kb
            if kernel.try_enter(lane, state):
                lane.pending = kb
                return
            # Scalar fallback for this batch: same state contract,
            # bitwise by construction.
            lane.engine._fused_epochs(state, self.kernel.epoch, kb)

    # -- executor ------------------------------------------------------
    def run(self) -> List[LaneResult]:
        """Run every lane to completion; one result per input machine."""
        lanes = self.lanes
        for lane in lanes:
            machine = lane.machine
            engine = machine._ensure_engine()
            if not isinstance(engine, BatchedEngine):
                # Vector / reference lanes: solo execution, same
                # isolation contract.
                continue
            lane.engine = engine
            lane.gen = self._pump(lane)

        for lane in lanes:
            if lane.gen is None:
                continue
            self._advance_lane(lane)
        kernel = self.kernel
        while True:
            entered = [lane for lane in lanes if lane.pending > 0]
            if not entered:
                break
            step = min(lane.pending for lane in entered)
            kernel.run_epochs(step)
            for lane in entered:
                lane.pending -= step
                if lane.pending == 0:
                    kernel.exit_lane(lane)
                    self._advance_lane(lane)

        results: List[LaneResult] = []
        for lane in lanes:
            if lane.gen is None:
                results.append(self._run_solo(lane))
            elif lane.error is not None:
                results.append(LaneResult(error=lane.error))
            else:
                machine = lane.machine
                results.append(
                    LaneResult(
                        result=SimResult(
                            sim_time_s=machine.time,
                            completed=machine._all_finite_done(),
                            machine=machine,
                            interrupted=lane.interrupted,
                        )
                    )
                )
        return results

    @staticmethod
    def _run_solo(lane: _Lane) -> LaneResult:
        try:
            return LaneResult(
                result=lane.machine.run(
                    max_time_s=lane.limit, stop_check=lane.stop_check
                )
            )
        except Exception as exc:  # noqa: BLE001 — per-lane isolation
            return LaneResult(error=exc)


def run_stacked(
    machines: Sequence[Machine],
    max_time_s: Optional[float] = None,
    stop_checks: Optional[Sequence[Optional[Callable[[], bool]]]] = None,
) -> List[LaneResult]:
    """Run many independent machines through one stacked executor."""
    return StackedEngine(machines, max_time_s, stop_checks).run()
