"""Physical CPU: run queue, current VCPU, and the ``workload`` counter.

§IV-B adds a ``workload`` variable to each PCPU — the number of VCPUs
in its run queue, maintained on insert/remove — which the NUMA-aware
load balancer uses to visit the most loaded peer first.  Here the
counter is simply the queue length, so it can never drift.
"""

from __future__ import annotations

from typing import Optional

from repro.xen.runqueue import RunQueue
from repro.xen.vcpu import Vcpu

__all__ = ["Pcpu"]


class Pcpu:
    """One physical CPU.

    Parameters
    ----------
    pcpu_id:
        Global PCPU index.
    node:
        NUMA node the PCPU belongs to.
    """

    __slots__ = ("pcpu_id", "node", "queue", "current", "overhead_pending_s", "busy_time_s")

    def __init__(self, pcpu_id: int, node: int) -> None:
        self.pcpu_id = pcpu_id
        self.node = node
        self.queue = RunQueue()
        self.current: Optional[Vcpu] = None
        #: hypervisor overhead seconds to deduct from upcoming epochs
        self.overhead_pending_s: float = 0.0
        #: cumulative seconds spent running guest VCPUs
        self.busy_time_s: float = 0.0

    @property
    def workload(self) -> int:
        """The §IV-B per-PCPU load counter: run-queue length."""
        return len(self.queue)

    @property
    def idle(self) -> bool:
        """True when nothing is running here."""
        return self.current is None

    @property
    def load_with_current(self) -> int:
        """Queue length plus the running VCPU (for balance decisions)."""
        return len(self.queue) + (0 if self.current is None else 1)

    def charge_overhead(self, seconds: float) -> None:
        """Schedule hypervisor overhead to steal compute time here."""
        if seconds < 0:
            raise ValueError(f"overhead must be >= 0, got {seconds}")
        self.overhead_pending_s += seconds

    def consume_overhead(self, budget_s: float) -> float:
        """Deduct pending overhead from an epoch's compute budget.

        Returns the compute time remaining after overhead.
        """
        if budget_s < 0:
            raise ValueError(f"budget must be >= 0, got {budget_s}")
        used = min(self.overhead_pending_s, budget_s)
        self.overhead_pending_s -= used
        return budget_s - used

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cur = self.current.name if self.current else "-"
        return f"Pcpu({self.pcpu_id}, node={self.node}, current={cur}, queued={len(self.queue)})"
