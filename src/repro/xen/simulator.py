"""Epoch-based machine simulator.

Global time advances in fixed epochs (default 1 ms).  Within an epoch
the VCPU->PCPU assignment is frozen; a contention solve prices that
assignment (LLC occupancy per socket, then IMC/QPI queueing), progress
and PMU counters advance in one pass, and scheduler logic runs between
epochs at its natural boundaries: 10 ms Credit ticks, 30 ms slices, and
the vProbe sampling period.

This is the "machine" the schedulers under study run on.  Everything a
scheduler can observe or cause — counter values, migration cold caches,
hypervisor overhead eating guest time — flows through here, so the
measure->decide->perform feedback loop is closed exactly as on the
paper's testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hardware.cache import CacheModel
from repro.hardware.memory import BYTES_PER_MISS, LatencySpec, MemorySystem
from repro.hardware.pmu import PMU, VcpuCounters
from repro.hardware.topology import NUMATopology
from repro.obs.profiler import PhaseProfiler
from repro.util.eventlog import EventLog
from repro.util.rng import RngStreams
from repro.util.validation import check_positive
from repro.xen.credit import SchedulerPolicy
from repro.xen.domain import Domain
from repro.xen.engine import BatchedEngine, VectorEngine
from repro.xen.memalloc import MemoryPlacement
from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu, VcpuState

__all__ = ["SimConfig", "SimResult", "SimulationTimeout", "Machine"]


class SimulationTimeout(RuntimeError):
    """A run exceeded its ``max_epochs`` hard cap.

    ``max_time_s`` bounds *simulated* time; a misconfigured scenario
    (tiny epoch, huge horizon) can still grind through an unbounded
    number of epochs of wall-clock work.  The epoch cap converts that
    into a loud, named failure instead of a hung grid cell.
    """

    def __init__(self, scenario: str, max_epochs: int, sim_time_s: float) -> None:
        super().__init__(
            f"scenario {scenario!r} exceeded max_epochs={max_epochs} "
            f"(simulated {sim_time_s:.3f}s without finishing)"
        )
        self.scenario = scenario
        self.max_epochs = max_epochs
        self.sim_time_s = sim_time_s


@dataclass(frozen=True, slots=True)
class SimConfig:
    """Simulation parameters.

    Attributes
    ----------
    epoch_s:
        Contention-solve granularity; must divide the Credit tick.
    sample_period_s:
        vProbe sampling period (§IV-B default 1 s; swept in Fig. 8).
    max_time_s:
        Hard stop for the run.
    seed:
        Root seed for all stochastic streams.
    latency:
        Memory-system base latencies.
    log_events:
        Record the structured event log (off for long benches).
    contention_iterations:
        Fixed-point iterations of the traffic->queueing->rate solve.
    pmu_collection_cost_s:
        Hypervisor time per counter collection event.
    stop_on_finite_completion:
        Stop once every finite active workload has completed.
    engine:
        ``"batched"`` runs epochs through the macro-stepping
        :class:`~repro.xen.engine.BatchedEngine`, which advances whole
        event-free epoch runs in one 2D kernel pass; ``"vector"``
        (default here, for compatibility — scenario configs default to
        batched) steps one epoch at a time through the
        structure-of-arrays :class:`~repro.xen.engine.VectorEngine`;
        ``"reference"`` keeps the original dict-based loop.
        ``"stacked"`` is accepted for grid cells destined for the
        lane-stacked executor (:mod:`repro.xen.stacked`); a solo
        machine built with it runs the batched engine, which is the
        bitwise contract lane stacking is held to.  All engines
        produce bitwise-identical simulated results — including fault
        runs, whose hooks live above the engine layer; the reference
        path exists as the executable specification the fast engines
        are tested against.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`; its injector
        draws from dedicated ``faults.*`` streams of the run seed, so
        (seed, plan) replays bitwise and a zero-rate plan leaves the
        run bit-for-bit unchanged.
    max_epochs:
        Hard cap on stepped epochs; exceeding it raises
        :class:`SimulationTimeout`.  None (default) leaves only the
        simulated-time limit.
    label:
        Human-readable scenario name used in error messages
        (``SimulationTimeout``) and logs; cosmetic otherwise.
    profile:
        Record host wall-clock per scheduler phase in
        :attr:`Machine.profiler` (see :mod:`repro.obs.profiler`).
        On by default: the hooks cost <3% of an epoch (pinned by
        ``benchmarks/bench_profiler.py``) and, like ``log_events``,
        cannot affect simulated results.
    fuse_ticks:
        Let the batched engine extend horizons across Credit ticks and
        slice expiries it can prove quiescent (the policy's
        ``tick_is_quiescent`` contract); fused boundaries replay the
        real tick/scheduling code at commit, so results stay bitwise
        identical.  On by default; ``False`` is a pure opt-out escape
        hatch restoring PR 5's tick-capped horizon sizing.  Only the
        batched engine reads it.
    speculative:
        Opt-in: let the batched engine size horizons past the
        conservative finite-work completion floor, validate the batch
        against captured pre-batch state before any commit, and on
        mis-speculation truncate to the proven prefix (replaying
        singleton epochs below the kernel break-even).  Results remain
        bitwise identical; off by default because the default path must
        not depend on validate-and-retry.  Only the batched engine
        reads it.
    """

    epoch_s: float = 1e-3
    sample_period_s: float = 1.0
    max_time_s: float = 120.0
    seed: int = 0
    latency: LatencySpec = field(default_factory=LatencySpec)
    log_events: bool = False
    contention_iterations: int = 2
    pmu_collection_cost_s: float = 0.3e-6
    stop_on_finite_completion: bool = True
    engine: str = "vector"
    faults: Optional[FaultPlan] = None
    max_epochs: Optional[int] = None
    label: str = ""
    profile: bool = True
    fuse_ticks: bool = True
    speculative: bool = False

    def __post_init__(self) -> None:
        check_positive(self.epoch_s, "epoch_s")
        check_positive(self.sample_period_s, "sample_period_s")
        check_positive(self.max_time_s, "max_time_s")
        if self.contention_iterations < 1:
            raise ValueError("contention_iterations must be >= 1")
        if self.pmu_collection_cost_s < 0:
            raise ValueError("pmu_collection_cost_s must be >= 0")
        if self.engine not in ("batched", "vector", "reference", "stacked"):
            raise ValueError(
                "engine must be 'batched', 'vector', 'reference' or "
                f"'stacked', got {self.engine!r}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )
        if self.max_epochs is not None and self.max_epochs < 1:
            raise ValueError(f"max_epochs must be >= 1, got {self.max_epochs}")


@dataclass(slots=True)
class SimResult:
    """Outcome of one simulation run."""

    sim_time_s: float  #: virtual time when the run stopped
    completed: bool  #: True if all finite workloads finished in time
    machine: "Machine"  #: the machine, for post-hoc inspection
    #: True when the run stopped early because a ``stop_check`` fired;
    #: the machine sits at a clean epoch boundary and can be resumed
    #: (or checkpointed via :mod:`repro.recovery.checkpoint`)
    interrupted: bool = False

    def finish_time(self, domain_name: str) -> Optional[float]:
        """Mean finish time of a domain's finite VCPUs."""
        return self.machine.domain(domain_name).mean_finish_time()


class Machine:
    """A virtualised NUMA host under one scheduling policy.

    Parameters
    ----------
    topology:
        The physical machine.
    policy:
        Scheduler under test (attached on construction).
    config:
        Simulation parameters.
    """

    def __init__(
        self,
        topology: NUMATopology,
        policy: SchedulerPolicy,
        config: SimConfig | None = None,
    ) -> None:
        self.topology = topology
        self.policy = policy
        self.config = config or SimConfig()

        tick = policy.params.tick_s
        ratio = tick / self.config.epoch_s
        if abs(ratio - round(ratio)) > 1e-9 or round(ratio) < 1:
            raise ValueError(
                f"epoch_s ({self.config.epoch_s}) must evenly divide the "
                f"scheduler tick ({tick})"
            )
        self._epochs_per_tick = int(round(ratio))
        self._epochs_per_sample = max(
            1, int(round(self.config.sample_period_s / self.config.epoch_s))
        )

        self.rng = RngStreams(self.config.seed)
        self.pcpus: List[Pcpu] = [
            Pcpu(i, topology.node_of_pcpu(i)) for i in range(topology.num_pcpus)
        ]
        self._pcpus_by_node: List[List[Pcpu]] = [
            [self.pcpus[p] for p in topology.pcpus_of_node(node)]
            for node in range(topology.num_nodes)
        ]
        self.caches: List[CacheModel] = [
            CacheModel(node.llc_bytes) for node in topology.nodes
        ]
        self.memsys = MemorySystem(topology, self.config.latency)
        self.pmu = PMU(topology.num_nodes, self.config.pmu_collection_cost_s)
        self.log = EventLog(enabled=self.config.log_events)
        #: host wall-clock per scheduler phase; never touches sim state
        self.profiler = PhaseProfiler(enabled=self.config.profile)
        #: fault injector, or None when the run is fault-free
        self.faults: Optional[FaultInjector] = (
            FaultInjector(self.config.faults, self.rng)
            if self.config.faults is not None
            else None
        )

        self.domains: List[Domain] = []
        self._domains_by_name: Dict[str, Domain] = {}
        self.vcpus: List[Vcpu] = []
        #: lazily built VectorEngine (None with engine="reference" or
        #: whenever the VCPU population changed since the last epoch)
        self._engine: Optional[VectorEngine] = None
        #: runtime invariant checker (:mod:`repro.audit.invariants`),
        #: attached via :meth:`run`'s ``audit=`` hook.  None (default)
        #: keeps the audit layer completely out of the epoch loop — the
        #: only cost is the ``is not None`` guards below — and every
        #: check is read-only, so results are identical either way.
        self.auditor = None

        self.time = 0.0
        self.epoch_index = 0
        self.tick_index = 0
        self.context_switches = 0
        self.migrations = 0
        self.cross_node_migrations = 0
        self.steals_local = 0
        self.steals_remote = 0
        self.overhead_s: Dict[str, float] = {}
        self.busy_time_s = 0.0
        self._place_counter = 0

        policy.attach(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_domain(self, domain: Domain) -> Domain:
        """Register a domain: create VCPUs and place them NUMA-blind.

        Xen 4.0.1 picks each new VCPU's processor by instantaneous
        load with no knowledge of where the domain's memory landed, so
        unpinned VCPUs start on a seeded-random PCPU.  Calibration
        scenarios that pin VCPUs (§IV-A) pass ``Domain.pinned_pcpus``.
        """
        if domain.name in self._domains_by_name:
            raise ValueError(f"duplicate domain name {domain.name!r}")
        if domain.placement.num_nodes != self.topology.num_nodes:
            raise ValueError(
                f"domain {domain.name!r} placement spans "
                f"{domain.placement.num_nodes} nodes, machine has "
                f"{self.topology.num_nodes}"
            )
        self.domains.append(domain)
        self._domains_by_name[domain.name] = domain
        # The engine caches per-VCPU state; rebuild it lazily from the
        # live machine on the next stepped epoch.
        self._engine = None
        place_rng = self.rng.get("placement")
        for i, workload in enumerate(domain.workloads):
            key = len(self.vcpus)
            vcpu = Vcpu(key, domain, i, workload)
            self.vcpus.append(vcpu)
            domain.vcpus.append(vcpu)
            self.pmu.register(key)
            if domain.pinned_pcpus is not None:
                vcpu.pcpu = domain.pinned_pcpus[i]
            else:
                vcpu.pcpu = int(place_rng.integers(len(self.pcpus)))
            self._place_counter += 1
            if workload.active:
                vcpu.state = VcpuState.RUNNABLE
                vcpu.run_burst_remaining_s = workload.draw_run_burst()
                self.pcpus[vcpu.pcpu].queue.push(vcpu)
            else:
                vcpu.state = VcpuState.BLOCKED
                vcpu.wake_time = float("inf")

        # First-touch: the guest faults its data in from wherever its
        # threads start, so each slice begins on its VCPU's initial node.
        if domain.first_touch_init:
            matrix = np.zeros((domain.num_vcpus, self.topology.num_nodes))
            for vcpu in domain.vcpus:
                matrix[vcpu.index, self.topology.node_of_pcpu(vcpu.pcpu)] = 1.0
            domain.placement = MemoryPlacement(matrix)
        return domain

    def domain(self, name: str) -> Domain:
        """Look up a domain by name."""
        try:
            return self._domains_by_name[name]
        except KeyError:
            raise KeyError(f"no domain named {name!r}") from None

    # ------------------------------------------------------------------
    # Mechanics used by policies
    # ------------------------------------------------------------------
    def charge_overhead(self, source: str, pcpu: Pcpu, seconds: float) -> None:
        """Charge hypervisor time to a PCPU, tracked per source."""
        if seconds <= 0:
            return
        pcpu.charge_overhead(seconds)
        self.overhead_s[source] = self.overhead_s.get(source, 0.0) + seconds

    def preempt(self, pcpu: Pcpu, now: float) -> None:
        """Deschedule the running VCPU to its queue tail.

        The PCPU is left empty; the next scheduling pass refills it
        through the normal pick/steal path (so a preemption point is
        also a balancing opportunity, as in Xen's ``schedule()``).
        """
        cur = pcpu.current
        if cur is None:
            return
        cur.stop_run(now)
        pcpu.current = None
        pcpu.queue.push(cur)

    def migrate_vcpu(self, vcpu: Vcpu, to_pcpu_id: int, now: float, reason: str) -> None:
        """Move a VCPU to another PCPU (partitioning / BRM migrations)."""
        target = self.pcpus[to_pcpu_id]
        source_id = vcpu.pcpu
        if source_id == to_pcpu_id:
            return
        cross = (
            source_id is None
            or self.topology.node_of_pcpu(source_id) != target.node
        )
        if vcpu.state is VcpuState.RUNNING:
            src = self.pcpus[source_id]
            assert src.current is vcpu
            src.current = None
            vcpu.stop_run(now)
            self.policy.on_context_switch(src, vcpu, None)
            self.context_switches += 1
        elif vcpu.state is VcpuState.RUNNABLE and source_id is not None:
            self.pcpus[source_id].queue.remove(vcpu)
        vcpu.pcpu = to_pcpu_id
        if vcpu.state is VcpuState.RUNNABLE:
            target.queue.push(vcpu)
        vcpu.record_migration(cross)
        self.migrations += 1
        if cross:
            self.cross_node_migrations += 1
        self.log.emit(
            now, "migrate", vcpu=vcpu.name, to_pcpu=to_pcpu_id, cross=cross, reason=reason
        )

    def read_pmu_window(self, vcpu_key: int) -> Optional[VcpuCounters]:
        """Close a VCPU's sampling window through the fault layer.

        Analyzers must read windows through this method rather than
        ``pmu.end_window`` directly: an active fault plan may drop the
        sample entirely (returns None), inject multiplicative counter
        noise, or clamp saturated LLC counts.  The underlying window
        restarts either way — lost telemetry is lost, as on hardware.
        """
        window = self.pmu.end_window(vcpu_key)
        if self.faults is None:
            return window
        return self.faults.filter_window(vcpu_key, window, self)

    def crash_domain(
        self,
        domain_name: str,
        now: float,
        downtime_s: float,
        lose_progress: bool = True,
    ) -> None:
        """Crash a domain: every VCPU goes offline until the restart.

        Running VCPUs are descheduled (through the normal context-switch
        bookkeeping), queued ones leave their run queues, and all of
        them block until ``now + downtime_s`` — the restart then rides
        the ordinary wake path, so both engines replay it identically.
        With ``lose_progress`` the guest rebooted: active workloads
        restart from zero retired instructions.
        """
        if downtime_s <= 0:
            raise ValueError(f"downtime_s must be > 0, got {downtime_s}")
        domain = self.domain(domain_name)
        restart = now + downtime_s
        for vcpu in domain.vcpus:
            if vcpu.state is VcpuState.DONE:
                continue
            if vcpu.state is VcpuState.RUNNING:
                pcpu = self.pcpus[vcpu.pcpu]
                assert pcpu.current is vcpu
                pcpu.current = None
                vcpu.stop_run(now)
                self.context_switches += 1
                self.policy.on_context_switch(pcpu, vcpu, None)
            elif vcpu.state is VcpuState.RUNNABLE and vcpu.pcpu is not None:
                self.pcpus[vcpu.pcpu].queue.remove(vcpu)
            if not vcpu.workload.active:
                continue  # idle guest VCPUs stay parked as they were
            if lose_progress:
                vcpu.workload.instructions_done = 0.0
            vcpu.block_until(restart)
            if self._engine is not None:
                self._engine.push_wake(vcpu)
        self.log.emit(
            now,
            "domain_crash",
            domain=domain_name,
            restart=restart,
            lose_progress=lose_progress,
        )

    def swap_in_stolen(self, pcpu: Pcpu, stolen: Vcpu, now: float) -> None:
        """Preempt ``pcpu``'s current VCPU in favour of a stolen one.

        Used by the tick-time balancing path: the (OVER) incumbent goes
        back to the local queue tail and the stolen UNDER VCPU runs.
        """
        self._account_steal(pcpu, stolen, now)
        self.preempt(pcpu, now)
        self._switch_in(pcpu, stolen, now)

    def least_loaded_pcpu(self, node: int) -> Pcpu:
        """The PCPU on ``node`` with the smallest load (ties: lowest id)."""
        return min(
            self._pcpus_by_node[node],
            key=lambda p: (p.load_with_current, p.pcpu_id),
        )

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _ensure_engine(self) -> Optional[VectorEngine]:
        """The machine's epoch engine (built on demand), or None."""
        if self._engine is None:
            if self.config.engine in ("batched", "stacked"):
                # A solo machine configured "stacked" runs the batched
                # engine — lane stacking is a cross-machine concern
                # (repro.xen.stacked), and the per-lane contract is
                # bitwise equality with exactly this path.
                self._engine = BatchedEngine(self)
            elif self.config.engine == "vector":
                self._engine = VectorEngine(self)
        return self._engine

    def run(
        self,
        max_time_s: Optional[float] = None,
        stop_check: "Optional[Callable[[], bool]]" = None,
        audit: object = None,
    ) -> SimResult:
        """Advance the simulation until completion or the time limit.

        ``stop_check`` (when given) is consulted between epochs — the
        only points where simulation state is self-contained.  When it
        returns True the run stops *without* advancing further and the
        result is marked ``interrupted``; the machine can then be
        checkpointed (:mod:`repro.recovery.checkpoint`) or resumed by
        calling :meth:`run` again, and because every epoch boundary is
        a complete state, the continuation is bitwise the uninterrupted
        run.

        ``audit`` attaches a runtime invariant checker for this and all
        subsequent epochs: pass an
        :class:`~repro.audit.invariants.InvariantChecker` (or ``True``
        for a default one with every invariant enabled).  Checks are
        read-only — they can raise
        :class:`~repro.audit.invariants.InvariantViolation` but never
        change simulated results.  ``None`` (default) leaves the
        current auditor, if any, in place.
        """
        if audit is not None:
            if audit is True:
                from repro.audit.invariants import InvariantChecker

                audit = InvariantChecker()
            self.auditor = audit
        limit = max_time_s if max_time_s is not None else self.config.max_time_s
        cap = self.config.max_epochs
        while self.time < limit - 1e-12:
            if stop_check is not None and stop_check():
                return SimResult(
                    sim_time_s=self.time,
                    completed=self._all_finite_done(),
                    machine=self,
                    interrupted=True,
                )
            if cap is not None and self.epoch_index >= cap:
                raise SimulationTimeout(
                    self.config.label or f"<{self.policy.name} machine>",
                    cap,
                    self.time,
                )
            self._step_epoch(limit)
            if self.config.stop_on_finite_completion and self._all_finite_done():
                return SimResult(sim_time_s=self.time, completed=True, machine=self)
        return SimResult(
            sim_time_s=self.time, completed=self._all_finite_done(), machine=self
        )

    def _all_finite_done(self) -> bool:
        """True when finite work exists and all of it has completed.

        A machine running only unbounded workloads (hungry loops,
        services without a request budget) never "completes" — it runs
        to the time limit.
        """
        if self._engine is not None:
            return self._engine.all_finite_done()
        has_finite = any(
            w.active and w.profile.is_finite
            for d in self.domains
            for w in d.workloads
        )
        return has_finite and all(d.finite_workloads_done for d in self.domains)

    # ------------------------------------------------------------------
    # One epoch
    # ------------------------------------------------------------------
    def _step_epoch(self, limit: Optional[float] = None) -> None:
        now = self.time
        epoch = self.config.epoch_s
        engine = self._ensure_engine()
        self._epoch_prologue(now, engine)

        # 4. Contention solve and progress.  The batched engine first
        # sizes an event horizon — how many upcoming epochs are free of
        # ticks, samples, wakes, phase changes, completions, faults and
        # the run limit — and macro-steps all of them in one 2D batch;
        # a horizon of 1 falls back to the inherited single-epoch path.
        stepped = 1
        if engine is not None and engine.supports_batch:
            t0 = self.profiler.start()
            batch = engine.compute_horizon(
                now, limit if limit is not None else self.config.max_time_s
            )
            self.profiler.stop("horizon", t0)
        else:
            batch = 1
        t0 = self.profiler.start()
        if batch > 1:
            end = engine.advance_batch(now, epoch, batch)
            stepped = batch
        else:
            end = now + epoch
            if engine is not None:
                engine.advance_running(now, epoch)
            else:
                self._advance_running(now, epoch)
        self.profiler.stop("epoch", t0)

        self._epoch_epilogue(end, stepped, engine)

    def _epoch_prologue(self, now: float, engine) -> None:
        """Epoch phases 0–3: faults, tick, wakes, scheduling pass.

        Split out of :meth:`_step_epoch` so the stacked engine
        (:mod:`repro.xen.stacked`) can drive a lane's boundary phases
        through the identical code path while substituting its own
        phase 4; the stepper and the lane pump therefore cannot drift
        apart on boundary accounting.
        """
        # 0. Fault injection: stalls and domain crashes fire at the
        # epoch boundary, before wake processing, identically for both
        # engines (crashed VCPUs restart through the normal wake path).
        if self.faults is not None:
            self.faults.begin_epoch(self, now)

        # 1. Credit tick (credits, preemption) and PMU refresh charges.
        if self.epoch_index % self._epochs_per_tick == 0:
            self._run_tick(now)

        # 2. Wakeups: a VCPU waking from sleep gets BOOST priority and
        # preempts a lower-class incumbent on its PCPU (__runq_tickle).
        # The engine pops due VCPUs from its wake heap; the reference
        # path scans everyone.  Either way the due set is processed in
        # VCPU-key order, and no wake blocks another VCPU, so the scan
        # and the heap see the same set.
        if engine is not None:
            due = engine.pop_due_wakes(now)
        else:
            due = [
                v
                for v in self.vcpus
                if v.state is VcpuState.BLOCKED and v.wake_time <= now
            ]
        for vcpu in due:
            vcpu.state = VcpuState.RUNNABLE
            vcpu.wake_time = float("inf")
            vcpu.boosted = True
            vcpu.run_burst_remaining_s = vcpu.workload.draw_run_burst()
            target = self.policy.on_vcpu_wake(vcpu, now)
            if vcpu.pcpu is not None and target != vcpu.pcpu:
                cross = self.topology.node_of_pcpu(vcpu.pcpu) != (
                    self.topology.node_of_pcpu(target)
                )
                vcpu.record_migration(cross)
                self.migrations += 1
                if cross:
                    self.cross_node_migrations += 1
                self.log.emit(
                    now, "wake_migrate", vcpu=vcpu.name, to_pcpu=target, cross=cross
                )
            vcpu.pcpu = target
            target_pcpu = self.pcpus[target]
            target_pcpu.queue.push(vcpu)
            cur = target_pcpu.current
            if cur is not None and vcpu.priority_rank < cur.priority_rank:
                self.preempt(target_pcpu, now)

        # 3. Scheduling pass: fill idle PCPUs, stealing if needed.
        # Like Xen's schedule(): prefer a local UNDER candidate; if the
        # best local work is OVER (or none), give the balancer a chance
        # to find an UNDER VCPU elsewhere before settling for it.
        self._schedule_pass(now)

        # Audit hook: placement and work conservation are only
        # guaranteed right here, after the pass filled every PCPU it
        # could — later in the epoch a completing/blocking VCPU may
        # legitimately leave queued work until the next pass.
        auditor = self.auditor
        if auditor is not None:
            auditor.after_schedule(self)

    def _epoch_epilogue(self, end: float, stepped: int, engine) -> None:
        """Epoch phases 5–6 plus the time/epoch-index update.

        Shared with the stacked engine for the same reason as
        :meth:`_epoch_prologue`.
        """
        # 5. Phase changes (heap-driven, or a cheap check per workload).
        # For a macro-step the horizon guarantees nothing was due at any
        # interior epoch end, so one check at the batch end is the same
        # sequence of applications the singleton path performs.
        if engine is not None:
            engine.apply_phase_changes(end)
        else:
            for vcpu in self.vcpus:
                w = vcpu.workload
                if w.active and not w.done and w.maybe_phase_change(end):
                    self.log.emit(
                        end, "phase_change", vcpu=vcpu.name, slice=w.slice_id
                    )

        # 6. Sampling-period boundary (a macro-step's horizon is capped
        # at the next boundary, so it can land on one only batch-final).
        sample_boundary = (self.epoch_index + stepped) % self._epochs_per_sample == 0
        if sample_boundary:
            t0 = self.profiler.start()
            self.policy.on_sample_period(end)
            self.profiler.stop("sample_period", t0)

        self.time = end
        self.epoch_index += stepped
        auditor = self.auditor
        if auditor is not None:
            auditor.after_epoch(self, sample_boundary)

    def _run_tick(self, now: float) -> None:
        """Phase 1 of an epoch: Credit tick plus PMU refresh charges.

        Split out of :meth:`_step_epoch` so the batched engine can
        replay *fused* interior ticks through the identical code path
        (see ``BatchedEngine.advance_batch``); the stepper and the
        engine therefore cannot drift apart on tick accounting.
        """
        self.policy.on_tick(now, self.tick_index)
        if self.policy.collects_pmu:
            for pcpu in self.pcpus:
                if pcpu.current is not None:
                    self.charge_overhead("pmu", pcpu, self.pmu.record_collection())
        self.tick_index += 1

    def _schedule_pass(self, now: float) -> None:
        """Phase 3 of an epoch: fill idle PCPUs, stealing if needed.

        Also shared with the batched engine, which replays it at fused
        slice-expiry boundaries (where it re-picks the just-preempted
        incumbent) and — implicitly, via the same pick/steal sequence —
        for idle PCPUs at interior batch epochs.
        """
        for pcpu in self.pcpus:
            cur = pcpu.current
            if cur is not None and not cur.runnable:
                pcpu.current = None
                cur = None
            if cur is None:
                # Local candidate first; if it is OVER (or the queue is
                # empty), the balancer may find strictly better work
                # elsewhere (Xen's csched_load_balance condition).
                head_rank = pcpu.queue.head_rank()
                nxt: Optional[Vcpu] = None
                if head_rank is None or head_rank >= 2:
                    t0 = self.profiler.start()
                    nxt = self.policy.steal(
                        pcpu, now, under_only=head_rank is not None
                    )
                    self.profiler.stop("balance", t0)
                    if nxt is not None:
                        self._account_steal(pcpu, nxt, now)
                if nxt is None:
                    nxt = pcpu.queue.pop()
                if nxt is not None:
                    self._switch_in(pcpu, nxt, now)

    def _account_steal(self, thief: Pcpu, vcpu: Vcpu, now: float) -> None:
        source = vcpu.pcpu
        cross = source is None or self.topology.node_of_pcpu(source) != thief.node
        if cross:
            self.steals_remote += 1
        else:
            self.steals_local += 1
        vcpu.pcpu = thief.pcpu_id
        vcpu.record_migration(cross)
        self.migrations += 1
        if cross:
            self.cross_node_migrations += 1
        self.log.emit(now, "steal", vcpu=vcpu.name, thief=thief.pcpu_id, cross=cross)

    def _switch_in(self, pcpu: Pcpu, vcpu: Vcpu, now: float) -> None:
        pcpu.current = vcpu
        vcpu.pcpu = pcpu.pcpu_id
        vcpu.begin_run(now)
        vcpu.slice_used_s = 0.0
        self.context_switches += 1
        self.policy.on_context_switch(pcpu, None, vcpu)

    # ------------------------------------------------------------------
    # Contention + progress (reference path)
    # ------------------------------------------------------------------
    def _advance_running(self, now: float, epoch: float) -> None:
        # This dict-based loop is the executable specification that
        # VectorEngine.advance_running replicates bitwise; changes here
        # must be mirrored there (the determinism test enforces it).
        running: List[Tuple[Pcpu, Vcpu]] = [
            (p, p.current) for p in self.pcpus if p.current is not None
        ]
        # Per-node demand maps for the LLC solve.
        node_demands: List[Dict[int, object]] = [
            {} for _ in range(self.topology.num_nodes)
        ]
        run_node: Dict[int, int] = {}
        page_mix: Dict[int, np.ndarray] = {}
        for pcpu, vcpu in running:
            demand = vcpu.workload.cache_demand()
            node_demands[pcpu.node][vcpu.key] = demand
            run_node[vcpu.key] = pcpu.node
            page_mix[vcpu.key] = vcpu.domain.page_mix_for(vcpu.index)

        miss_rates: Dict[int, float] = {}
        for node_id, demands in enumerate(node_demands):
            if demands:
                occ = self.caches[node_id].solve(demands)
                miss_rates.update(occ.miss_rates)

        # Fixed point: rates -> traffic -> queueing -> rates.
        lat = self.config.latency
        penalty_ns: Dict[int, float] = {
            v.key: lat.local_dram_ns for _, v in running
        }
        rates: Dict[int, float] = {}
        mem_costs = None
        for _ in range(self.config.contention_iterations):
            traffic: Dict[int, float] = {}
            for pcpu, vcpu in running:
                prof = vcpu.workload.profile
                clock = self.topology.nodes[pcpu.node].clock_hz
                cpi = self._effective_cpi(
                    vcpu, miss_rates[vcpu.key], penalty_ns[vcpu.key], clock
                )
                rate = clock / cpi
                rates[vcpu.key] = rate
                rpi = prof.refs_per_instruction * vcpu.workload.intensity_multiplier
                traffic[vcpu.key] = rate * rpi * miss_rates[vcpu.key] * BYTES_PER_MISS
            mem_costs = self.memsys.solve(traffic, run_node, page_mix)
            penalty_ns = mem_costs.miss_penalty_ns

        # Advance progress, counters, bursts.
        for pcpu, vcpu in running:
            compute = pcpu.consume_overhead(epoch)
            pcpu.busy_time_s += epoch
            self.busy_time_s += epoch
            instructions = rates[vcpu.key] * compute
            remaining = vcpu.workload.remaining_instructions
            instructions = min(instructions, remaining)
            w = vcpu.workload
            rpi = w.profile.refs_per_instruction * w.intensity_multiplier
            refs = instructions * rpi
            misses = refs * miss_rates[vcpu.key]
            self.pmu.charge(
                vcpu.key,
                instructions=instructions,
                llc_refs=refs,
                llc_misses=misses,
                node_access_share=page_mix[vcpu.key],
                run_node=pcpu.node,
            )
            w.advance(instructions)
            vcpu.slice_used_s += epoch
            vcpu.run_burst_remaining_s -= epoch

            # First-touch locality feedback: freshly touched pages land
            # on the node this VCPU is running on.
            touch = w.profile.touch_rate
            if touch > 0:
                vcpu.domain.placement.drift_slice(
                    w.slice_id, pcpu.node, min(1.0, touch * epoch)
                )

            if w.done:
                vcpu.mark_done(now + epoch)
                pcpu.current = None
                self.context_switches += 1
                self.policy.on_context_switch(pcpu, vcpu, None)
                self.log.emit(now + epoch, "finish", vcpu=vcpu.name)
            elif vcpu.run_burst_remaining_s <= 0:
                vcpu.block_until(now + epoch + w.draw_block_time())
                pcpu.current = None
                self.context_switches += 1
                self.policy.on_context_switch(pcpu, vcpu, None)

        # LLC warmth: charge running sets, decay everyone else.
        for node_id, demands in enumerate(node_demands):
            self.caches[node_id].advance(epoch, demands)

    def _effective_cpi(
        self, vcpu: Vcpu, miss_rate: float, penalty_ns: float, clock_hz: float
    ) -> float:
        """CPI with memory stalls at the current contention point."""
        w = vcpu.workload
        prof = w.profile
        rpi = prof.refs_per_instruction * w.intensity_multiplier
        ns_to_cycles = clock_hz * 1e-9
        lat = self.config.latency
        per_ref_ns = (1.0 - miss_rate) * lat.llc_hit_ns + miss_rate * penalty_ns
        stall = rpi * per_ref_ns * ns_to_cycles / prof.mlp
        return prof.cpi_base + stall

    # ------------------------------------------------------------------
    # Snapshot support (repro.recovery.checkpoint)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, object]:
        """Pickle everything except the epoch engine.

        The engine is a derived accelerator: it is rebuilt lazily from
        live machine state (exactly how :meth:`add_domain` already
        invalidates it), its wake/phase heaps and finite-work countdown
        are pure functions of VCPU/workload state, and its gather
        memos are caches.  Dropping it keeps snapshots compact and —
        more importantly — lets a snapshot taken under one engine
        resume under any of the three with bitwise-identical results
        (the resume-parity matrix in ``tests/test_recovery.py``).
        """
        state = self.__dict__.copy()
        state["_engine"] = None
        # The auditor is runtime instrumentation, not simulation state:
        # dropping the key entirely keeps the snapshot payload byte-for
        # byte what it was before the audit layer existed (no
        # CHECKPOINT_SCHEMA bump), and a resumed run re-attaches one via
        # ``run(audit=...)`` if it wants auditing.
        state.pop("auditor", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self.auditor = None

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def total_overhead_s(self) -> float:
        """All hypervisor overhead charged so far, every source."""
        return sum(self.overhead_s.values())

    def overhead_fraction(self) -> float:
        """Overhead time over busy time (the Table III metric)."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.total_overhead_s / self.busy_time_s

    def runnable_vcpus(self) -> List[Vcpu]:
        """All VCPUs currently runnable or running."""
        return [v for v in self.vcpus if v.runnable]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Machine(policy={self.policy.name!r}, t={self.time:.3f}s, "
            f"domains={len(self.domains)})"
        )
