"""Domain memory placement across NUMA nodes.

Xen allocates a domain's machine memory at creation time; the guest
never learns where its pages landed (the semantic gap of §I).  The
placement is modelled as a matrix: one row per *slice* (one slice per
VCPU — the memory a guest thread predominantly touches), each row a
distribution over nodes saying where that slice's pages physically
live.

Placement policies provided:

* :func:`place_split` — the evaluation's VM1: memory deliberately split
  across both nodes, slices striped node-by-node;
* :func:`place_single_node` — everything on one node (small VMs);
* :func:`place_interleaved` — uniform page interleave across nodes.

The module also implements the §VI *page migration* extension hook:
:meth:`MemoryPlacement.migrate_slice` moves a fraction of a slice to a
target node and reports the bytes moved so the simulator can charge the
(expensive) copy cost the paper discusses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import check_fraction, check_index, check_positive

__all__ = [
    "MemoryPlacement",
    "place_split",
    "place_single_node",
    "place_interleaved",
]


class MemoryPlacement:
    """Where each memory slice of a domain physically lives.

    Parameters
    ----------
    slice_nodes:
        Array of shape ``(num_slices, num_nodes)``; each row must be a
        probability vector (fractions of the slice on each node).
    """

    def __init__(self, slice_nodes: np.ndarray) -> None:
        matrix = np.asarray(slice_nodes, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"slice_nodes must be 2-D, got shape {matrix.shape}")
        if matrix.shape[0] < 1 or matrix.shape[1] < 1:
            raise ValueError(f"slice_nodes must be non-empty, got shape {matrix.shape}")
        if np.any(matrix < -1e-12):
            raise ValueError("slice_nodes entries must be non-negative")
        sums = matrix.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError(f"each slice row must sum to 1, got sums {sums}")
        self._matrix = np.clip(matrix, 0.0, None)
        # Overall mix is read every epoch (page_mix); maintain it
        # incrementally instead of re-averaging the matrix each call.
        self._overall = self._matrix.mean(axis=0)
        # Dual-socket hot-path mirror: plain Python lists shadowing the
        # matrix rows and overall mix.  First-touch drift (the per-epoch
        # mutation) updates only the mirror; the ndarrays are synced
        # lazily when an array reader shows up.  The list *objects* are
        # stable for the placement's lifetime, so hot-path callers may
        # cache row references.
        if self._matrix.shape[1] == 2:
            self._rows2: "list[list[float]] | None" = self._matrix.tolist()
            self._over2: "list[float] | None" = self._overall.tolist()
        else:
            self._rows2 = None
            self._over2 = None
        self._np_stale = False

    def _sync_np(self) -> None:
        """Write pending mirror updates back into the ndarrays."""
        if not self._np_stale:
            return
        matrix = self._matrix
        for i, row in enumerate(self._rows2):
            matrix[i, 0] = row[0]
            matrix[i, 1] = row[1]
        self._overall[0] = self._over2[0]
        self._overall[1] = self._over2[1]
        self._np_stale = False

    def _refresh_mirror(self) -> None:
        """Reload the mirror from the ndarrays after an array-side write.

        Updates the existing list objects in place so cached row
        references stay valid.
        """
        if self._rows2 is None:
            return
        vals = self._matrix.tolist()
        for row, src in zip(self._rows2, vals):
            row[0] = src[0]
            row[1] = src[1]
        self._over2[0] = float(self._overall[0])
        self._over2[1] = float(self._overall[1])
        self._np_stale = False

    @property
    def matrix(self) -> np.ndarray:
        """Raw ``(num_slices, num_nodes)`` placement matrix.

        A live view for the epoch engine's batched page-mix gather —
        treat as read-only; mutate through :meth:`drift_slice` /
        :meth:`migrate_slice` so ``_overall`` stays consistent.
        """
        self._sync_np()
        return self._matrix

    @property
    def overall(self) -> np.ndarray:
        """Raw overall node mix (live view; treat as read-only)."""
        self._sync_np()
        return self._overall

    @property
    def num_slices(self) -> int:
        """Number of memory slices (== VCPUs of the owning domain)."""
        return self._matrix.shape[0]

    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes the placement spans."""
        return self._matrix.shape[1]

    def slice_mix(self, slice_id: int) -> np.ndarray:
        """Node distribution of one slice (a copy)."""
        check_index(slice_id, self.num_slices, "slice_id")
        self._sync_np()
        return self._matrix[slice_id].copy()

    def overall_mix(self) -> np.ndarray:
        """Node distribution of the domain's whole memory (a copy)."""
        self._sync_np()
        return self._overall.copy()

    def page_mix(self, slice_id: int, concentration: float) -> np.ndarray:
        """Access-weighted node mix for a VCPU hot in ``slice_id``.

        A VCPU directs ``concentration`` of its accesses at its own
        slice and the rest at the domain's memory at large (shared
        data, guest-kernel structures).
        """
        check_fraction(concentration, "concentration")
        self._sync_np()
        mix = (
            concentration * self._matrix[slice_id]
            + (1.0 - concentration) * self._overall
        )
        # Normalise defensively against floating-point drift.
        return mix / mix.sum()

    def home_node(self, slice_id: int) -> int:
        """Node holding the plurality of a slice's pages."""
        check_index(slice_id, self.num_slices, "slice_id")
        self._sync_np()
        return int(np.argmax(self._matrix[slice_id]))

    def drift_slice(self, slice_id: int, toward_node: int, amount: float) -> None:
        """First-touch drift: move ``amount`` of a slice toward a node.

        Guests continuously allocate, free and re-touch pages; new
        pages are served from the node the touching VCPU currently
        runs on (first-touch).  Over time a slice's placement therefore
        tracks where its VCPU has been running — the locality feedback
        that makes stable placement (vProbe, LB) pay off and NUMA-blind
        churn (stock Credit) keep paying remote costs.

        Unlike :meth:`migrate_slice` this is free: it re-labels where
        *new* pages land rather than copying existing ones.
        """
        check_index(slice_id, self.num_slices, "slice_id")
        check_index(toward_node, self.num_nodes, "toward_node")
        check_fraction(amount, "amount")
        if amount <= 0.0:
            return
        self.drift_slice_fast(slice_id, toward_node, amount)

    def drift_slice_fast(self, slice_id: int, toward_node: int, amount: float) -> None:
        """Validation-free :meth:`drift_slice` for the epoch hot path.

        The caller guarantees ``slice_id``/``toward_node`` are in range
        and ``0 < amount <= 1`` (the per-epoch drift is a cached
        invariant of the workload profile).
        """
        rows = self._rows2
        if rows is not None:
            # Dual-socket fast path: the same elementwise operations on
            # Python scalars against the list mirror; the ndarrays are
            # synced lazily on the next array read.
            row = rows[slice_id]
            r0 = row[0]
            r1 = row[1]
            keep = 1.0 - amount
            n0 = r0 * keep
            n1 = r1 * keep
            if toward_node == 0:
                n0 = n0 + amount
            else:
                n1 = n1 + amount
            row[0] = n0
            row[1] = n1
            num_slices = len(rows)
            overall = self._over2
            overall[0] += (n0 - r0) / num_slices
            overall[1] += (n1 - r1) / num_slices
            self._np_stale = True
            return
        row = self._matrix[slice_id]
        before = row.copy()
        row *= 1.0 - amount
        row[toward_node] += amount
        self._overall += (row - before) / self.num_slices

    def migrate_slice(
        self, slice_id: int, to_node: int, fraction: float, slice_bytes: float
    ) -> float:
        """Move ``fraction`` of a slice's pages to ``to_node``.

        Implements the §VI page-migration extension.  Returns the bytes
        moved so callers can charge the copy cost.
        """
        check_index(slice_id, self.num_slices, "slice_id")
        check_index(to_node, self.num_nodes, "to_node")
        check_fraction(fraction, "fraction")
        check_positive(slice_bytes, "slice_bytes")
        self._sync_np()
        row = self._matrix[slice_id]
        moved_fraction = fraction * (1.0 - row[to_node])
        before = row.copy()
        row *= 1.0 - fraction
        row[to_node] += fraction
        # Re-normalise (guards accumulation of rounding error).
        row /= row.sum()
        self._overall += (row - before) / self.num_slices
        self._refresh_mirror()
        return moved_fraction * slice_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MemoryPlacement(slices={self.num_slices}, nodes={self.num_nodes})"


def place_split(num_slices: int, num_nodes: int) -> MemoryPlacement:
    """Stripe slices across nodes: slice ``i`` wholly on node ``i % N``.

    Models the evaluation's VM1 whose 15 GB is "split into two nodes to
    provide a more variable and complicated runtime environment".
    """
    if num_slices <= 0 or num_nodes <= 0:
        raise ValueError("num_slices and num_nodes must be > 0")
    matrix = np.zeros((num_slices, num_nodes))
    for i in range(num_slices):
        matrix[i, i % num_nodes] = 1.0
    return MemoryPlacement(matrix)


def place_single_node(num_slices: int, num_nodes: int, node: int) -> MemoryPlacement:
    """All slices on one node (how Xen places small VMs by default)."""
    if num_slices <= 0 or num_nodes <= 0:
        raise ValueError("num_slices and num_nodes must be > 0")
    check_index(node, num_nodes, "node")
    matrix = np.zeros((num_slices, num_nodes))
    matrix[:, node] = 1.0
    return MemoryPlacement(matrix)


def place_interleaved(num_slices: int, num_nodes: int) -> MemoryPlacement:
    """Uniform page interleave: every slice spread evenly over nodes."""
    if num_slices <= 0 or num_nodes <= 0:
        raise ValueError("num_slices and num_nodes must be > 0")
    matrix = np.full((num_slices, num_nodes), 1.0 / num_nodes)
    return MemoryPlacement(matrix)


def place_weighted(weights: Sequence[Sequence[float]]) -> MemoryPlacement:
    """Arbitrary placement from explicit per-slice node weights."""
    matrix = np.asarray(weights, dtype=float)
    rows = matrix.sum(axis=1, keepdims=True)
    if np.any(rows <= 0):
        raise ValueError("each slice needs positive total weight")
    return MemoryPlacement(matrix / rows)
