"""Runtime fault injection bound to one machine.

The :class:`FaultInjector` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into concrete events against a
live :class:`~repro.xen.simulator.Machine`.  Every hook is *above* the
epoch engine:

* sampling-window faults (drop/noise/saturation) fire inside
  :meth:`Machine.read_pmu_window`, which both engines share;
* PCPU stalls are charged as hypervisor overhead, which the reference
  loop and the :class:`~repro.xen.engine.VectorEngine` consume with
  identical arithmetic;
* domain crashes mutate live VCPU/queue state at the epoch boundary,
  before either engine's wake processing runs.

That layering is what makes fault runs engine-independent: the vector
engine reproduces faulted runs bitwise without fault-specific code
(``tests/test_faults.py`` enforces it).  Any future fault that cannot
keep that property must trigger the explicit reference-engine fallback
documented in DESIGN.md rather than run silently wrong.

Determinism: all draws come from dedicated ``faults.*`` streams of the
machine's root RNG, in a fixed order (windows in the order the analyzer
closes them, stalls per PCPU id, crash events by schedule), so one
(seed, plan) pair always produces the same run — serial or in a
:class:`~repro.experiments.parallel.ParallelRunner` worker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.faults.plan import FaultPlan
from repro.hardware.pmu import VcpuCounters
from repro.util.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.xen.simulator import Machine

__all__ = ["FaultStats", "FaultInjector"]


@dataclass(frozen=True, slots=True)
class FaultStats:
    """Fault events that actually fired during a run.

    A frozen snapshot taken by :func:`repro.metrics.collectors.summarize`
    so fault pressure is visible next to the metrics it perturbs.
    """

    samples_dropped: int = 0
    samples_noisy: int = 0
    windows_saturated: int = 0
    stalls_injected: int = 0
    domain_crashes: int = 0

    @property
    def total_events(self) -> int:
        """All injected fault events, any kind."""
        return (
            self.samples_dropped
            + self.samples_noisy
            + self.windows_saturated
            + self.stalls_injected
            + self.domain_crashes
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (derived total included)."""
        return {
            "samples_dropped": self.samples_dropped,
            "samples_noisy": self.samples_noisy,
            "windows_saturated": self.windows_saturated,
            "stalls_injected": self.stalls_injected,
            "domain_crashes": self.domain_crashes,
            "total_events": self.total_events,
        }


class FaultInjector:
    """Applies a :class:`FaultPlan` to one machine, deterministically.

    Parameters
    ----------
    plan:
        The declarative fault configuration.
    rng:
        The machine's root stream registry; the injector draws only
        from ``faults.*`` streams so it never perturbs scheduler or
        workload randomness.
    """

    def __init__(self, plan: FaultPlan, rng: RngStreams) -> None:
        self.plan = plan
        self._rng = rng
        # Streams are created lazily per feature: a zero-rate feature
        # never draws, so a null plan has zero effect on the run.
        self._drop_rng = rng.get("faults.drop") if plan.drop_rate > 0 else None
        self._noise_rng = (
            rng.get("faults.noise")
            if plan.noise_std > 0 and plan.noise_rate > 0
            else None
        )
        self._stall_rng = rng.get("faults.stall") if plan.stall_rate > 0 else None
        #: epoch index at which each PCPU's next stall starts (lazy)
        self._next_stall: Optional[List[int]] = None
        #: crashes still pending, sorted by schedule time
        self._pending_crashes = sorted(
            plan.crashes, key=lambda c: (c.at_time_s, c.domain)
        )
        self._crash_cursor = 0

        self.samples_dropped = 0
        self.samples_noisy = 0
        self.windows_saturated = 0
        self.stalls_injected = 0
        self.domain_crashes = 0

    # ------------------------------------------------------------------
    # Telemetry faults (called from Machine.read_pmu_window)
    # ------------------------------------------------------------------
    def filter_window(
        self, vcpu_key: int, window: VcpuCounters, machine: "Machine"
    ) -> Optional[VcpuCounters]:
        """Corrupt one closed sampling window; None means *dropped*.

        The underlying PMU window has already been closed (the counters
        restarted), exactly as on hardware: a multiplexed-out or
        saturated counter loses the data — re-reading cannot recover it.
        """
        plan = self.plan
        if self._drop_rng is not None:
            # One draw per window close, whatever its content, so the
            # draw sequence depends only on the read schedule.
            if self._drop_rng.random() < plan.drop_rate:
                self.samples_dropped += 1
                machine.log.emit(
                    machine.time, "fault_sample_drop", vcpu_key=vcpu_key
                )
                return None
        if self._noise_rng is not None and window.instructions > 0:
            # One corruption draw per eligible window (skipped when
            # noise_rate is 1.0 so the continuous-jitter model keeps
            # its exact draw sequence), then independent log-normal
            # multipliers on instructions and LLC refs/misses: the
            # ratio (Eq. 2 pressure) is what gets noisy.
            corrupt = (
                plan.noise_rate >= 1.0
                or self._noise_rng.random() < plan.noise_rate
            )
            if corrupt:
                m_instr = math.exp(plan.noise_std * self._noise_rng.standard_normal())
                m_llc = math.exp(plan.noise_std * self._noise_rng.standard_normal())
                window.instructions *= m_instr
                window.llc_refs *= m_llc
                window.llc_misses *= m_llc
                self.samples_noisy += 1
        cap = plan.llc_ref_cap
        if cap is not None and window.llc_refs > cap:
            # Saturating counter: references clamp at the cap and the
            # miss count clamps with them (misses <= refs always holds).
            window.llc_refs = cap
            if window.llc_misses > cap:
                window.llc_misses = cap
            self.windows_saturated += 1
        return window

    # ------------------------------------------------------------------
    # Machine faults (called from Machine._step_epoch, top of epoch)
    # ------------------------------------------------------------------
    def begin_epoch(self, machine: "Machine", now: float) -> None:
        """Fire stalls and crashes due at this epoch boundary."""
        if self._stall_rng is not None:
            self._inject_stalls(machine)
        while self._crash_cursor < len(self._pending_crashes):
            crash = self._pending_crashes[self._crash_cursor]
            if crash.at_time_s > now:
                break
            self._crash_cursor += 1
            machine.crash_domain(
                crash.domain,
                now,
                downtime_s=crash.downtime_s,
                lose_progress=crash.lose_progress,
            )
            self.domain_crashes += 1

    def _inject_stalls(self, machine: "Machine") -> None:
        """Start due stalls; schedule each PCPU's next one.

        Stall starts are geometric in epochs (the discrete equivalent
        of Poisson arrivals at rate ``stall_rate`` per epoch), so the
        injector draws once per stall instead of once per epoch.
        """
        plan = self.plan
        rng = self._stall_rng
        epoch_index = machine.epoch_index
        if self._next_stall is None:
            self._next_stall = [
                epoch_index + int(rng.geometric(plan.stall_rate))
                for _ in machine.pcpus
            ]
        stall_s = plan.stall_epochs * machine.config.epoch_s
        for pcpu in machine.pcpus:
            if self._next_stall[pcpu.pcpu_id] > epoch_index:
                continue
            # The stall eats guest compute exactly like hypervisor
            # overhead — which is how both engines already price lost
            # time, keeping fault runs engine-independent.
            machine.charge_overhead("fault_stall", pcpu, stall_s)
            self.stalls_injected += 1
            machine.log.emit(
                machine.time,
                "fault_stall",
                pcpu=pcpu.pcpu_id,
                epochs=plan.stall_epochs,
            )
            self._next_stall[pcpu.pcpu_id] = (
                epoch_index + plan.stall_epochs + int(rng.geometric(plan.stall_rate))
            )

    # ------------------------------------------------------------------
    # Horizon queries (called by the batched engine)
    # ------------------------------------------------------------------
    def next_stall_epoch(self) -> Optional[int]:
        """Earliest epoch index at which any PCPU's next stall fires.

        ``None`` when the plan injects no stalls, or before the lazy
        per-PCPU schedule exists (the first ``begin_epoch`` creates it,
        so by the time a batch is sized the schedule is present).
        Quiet epochs strictly before this index draw no RNG and charge
        no overhead, so a macro-step may skip them.
        """
        if self._stall_rng is None or self._next_stall is None:
            return None
        return min(self._next_stall)

    def next_crash_time(self) -> Optional[float]:
        """Schedule time of the next pending domain crash (or ``None``).

        ``begin_epoch`` fires a crash once ``now`` reaches this time;
        epochs that end strictly before it cannot trigger it.
        """
        if self._crash_cursor >= len(self._pending_crashes):
            return None
        return self._pending_crashes[self._crash_cursor].at_time_s

    # ------------------------------------------------------------------
    def stats(self) -> FaultStats:
        """Immutable snapshot of the fault events fired so far."""
        return FaultStats(
            samples_dropped=self.samples_dropped,
            samples_noisy=self.samples_noisy,
            windows_saturated=self.windows_saturated,
            stalls_injected=self.stalls_injected,
            domain_crashes=self.domain_crashes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultInjector(plan={self.plan!r}, events={self.stats().total_events})"
