"""Deterministic fault injection for the vProbe reproduction.

The paper assumes trustworthy per-VCPU PMU samples; real PMUs
multiplex, drop and saturate.  This package makes that failure mode a
first-class, *replayable* experimental variable:

* :class:`~repro.faults.plan.FaultPlan` — a frozen, picklable
  description of what can go wrong (sample dropout, multiplicative
  counter noise, LLC counter saturation, transient PCPU stalls,
  domain crash/restart);
* :class:`~repro.faults.injector.FaultInjector` — the runtime that
  fires those faults against a live machine, drawing only from
  dedicated ``faults.*`` RNG streams so identical (seed, plan) pairs
  replay bitwise and a zero-rate plan is indistinguishable from no
  plan at all;
* :data:`~repro.faults.plan.FAULT_PRESETS` — named plans for the CLI
  (``--faults PRESET``) and the fig9 degradation sweep.
"""

from repro.faults.injector import FaultInjector, FaultStats
from repro.faults.plan import FAULT_PRESETS, DomainCrash, FaultPlan, fault_preset

__all__ = [
    "DomainCrash",
    "FaultPlan",
    "FaultInjector",
    "FaultStats",
    "FAULT_PRESETS",
    "fault_preset",
]
