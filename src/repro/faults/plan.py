"""Declarative fault plans for deterministic fault injection.

A :class:`FaultPlan` states *what can go wrong* in a run — PMU sample
dropout, multiplicative counter noise, LLC counter saturation, transient
PCPU stalls and domain crash/restart — without holding any runtime
state.  Plans are frozen dataclasses, so they are hashable, picklable
(they travel to :class:`~repro.experiments.parallel.ParallelRunner`
workers inside a :class:`~repro.experiments.scenarios.ScenarioConfig`)
and safely shareable between paired runs.

All randomness is drawn at run time by the
:class:`~repro.faults.injector.FaultInjector` from dedicated
``faults.*`` streams of the machine's root :class:`~repro.util.rng.RngStreams`,
so (a) identical seed + plan replays bitwise and (b) a zero-rate plan
consumes nothing from any stream another subsystem reads — a run with
``FaultPlan()`` is bitwise-identical to a run with no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.util.validation import check_fraction, check_non_negative

__all__ = ["DomainCrash", "FaultPlan", "FAULT_PRESETS", "fault_preset"]


@dataclass(frozen=True, slots=True)
class DomainCrash:
    """One scheduled crash-and-restart of a domain.

    Attributes
    ----------
    domain:
        Name of the domain to crash (e.g. ``"vm2"``).
    at_time_s:
        Simulated time the crash fires.
    downtime_s:
        How long every VCPU stays offline before the restart.
    lose_progress:
        When True (default), active workloads restart from zero
        retired instructions — the guest rebooted; when False the
        domain merely pauses (live-migration blackout model).
    """

    domain: str
    at_time_s: float
    downtime_s: float = 1.0
    lose_progress: bool = True

    def __post_init__(self) -> None:
        if not self.domain:
            raise ValueError("crash domain name must be non-empty")
        check_non_negative(self.at_time_s, "at_time_s")
        if self.downtime_s <= 0:
            raise ValueError(f"downtime_s must be > 0, got {self.downtime_s}")


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Seeded fault-injection configuration for one run.

    Attributes
    ----------
    drop_rate:
        Probability that a VCPU's PMU sampling window is dropped
        (the analyzer sees *no sample* for that VCPU this period) —
        models counter multiplexing losing the slot.
    noise_std:
        Log-normal sigma of the multiplicative noise applied to a
        corrupted window's instruction and LLC-reference counts
        (independent multipliers, so the derived pressure is noisy).
        0 disables noise exactly (no draws, no arithmetic).
    noise_rate:
        Probability that a given surviving window is corrupted with
        that noise (1.0 = every window, the continuous-jitter model;
        lower values model *occasional* wild readings — a multiplexing
        glitch or overflow corrupts one sample, the next is clean).
    llc_ref_cap:
        Saturation cap on a window's LLC reference count: counters
        clamp instead of overflowing (misses clamp with them so the
        window stays internally consistent).  None disables.
    stall_rate:
        Per-PCPU, per-epoch probability that a transient stall starts;
        a stalled PCPU loses ``stall_epochs`` epochs of guest compute
        (charged as hypervisor overhead, so both engines price it
        identically).
    stall_epochs:
        Length of one stall, in epochs.
    crashes:
        Scheduled :class:`DomainCrash` events.

    A default-constructed plan injects nothing; :meth:`is_null` tells
    callers whether the plan can have any effect at all.
    """

    drop_rate: float = 0.0
    noise_std: float = 0.0
    noise_rate: float = 1.0
    llc_ref_cap: Optional[float] = None
    stall_rate: float = 0.0
    stall_epochs: int = 10
    crashes: Tuple[DomainCrash, ...] = ()

    def __post_init__(self) -> None:
        check_fraction(self.drop_rate, "drop_rate")
        check_non_negative(self.noise_std, "noise_std")
        check_fraction(self.noise_rate, "noise_rate")
        if self.llc_ref_cap is not None and self.llc_ref_cap < 0:
            raise ValueError(f"llc_ref_cap must be >= 0, got {self.llc_ref_cap}")
        check_fraction(self.stall_rate, "stall_rate")
        if self.stall_epochs < 1:
            raise ValueError(f"stall_epochs must be >= 1, got {self.stall_epochs}")
        # Accept any iterable of crashes but store a tuple so the plan
        # stays hashable and picklable.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        for crash in self.crashes:
            if not isinstance(crash, DomainCrash):
                raise TypeError(f"crashes must hold DomainCrash, got {crash!r}")

    def is_null(self) -> bool:
        """True when this plan cannot perturb a run in any way."""
        return (
            self.drop_rate == 0.0
            and (self.noise_std == 0.0 or self.noise_rate == 0.0)
            and self.llc_ref_cap is None
            and self.stall_rate == 0.0
            and not self.crashes
        )


#: Named plans for the CLI (``--faults PRESET``) and the fig9 sweep.
FAULT_PRESETS: Dict[str, FaultPlan] = {
    "none": FaultPlan(),
    "drop25": FaultPlan(drop_rate=0.25),
    "drop50": FaultPlan(drop_rate=0.50),
    "drop100": FaultPlan(drop_rate=1.0),
    "noisy": FaultPlan(noise_std=1.0),
    "saturate": FaultPlan(llc_ref_cap=5e6),
    "stall": FaultPlan(stall_rate=0.001, stall_epochs=20),
    "crash": FaultPlan(crashes=(DomainCrash("vm2", at_time_s=2.0, downtime_s=1.0),)),
    "chaos": FaultPlan(
        drop_rate=0.3,
        noise_std=0.8,
        llc_ref_cap=5e6,
        stall_rate=0.0005,
        stall_epochs=20,
        crashes=(DomainCrash("vm2", at_time_s=2.0, downtime_s=0.5),),
    ),
}


def fault_preset(name: str) -> FaultPlan:
    """Look up a preset plan by name (case-insensitive)."""
    try:
        return FAULT_PRESETS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(FAULT_PRESETS))
        raise ValueError(f"unknown fault preset {name!r}; known: {known}") from None
