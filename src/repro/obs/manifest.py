"""Run manifests: enough metadata to replay or diff a trace.

A trace file without provenance is a puzzle; the manifest is the first
line of every JSONL trace and answers *what produced this* — policy,
scenario label, seed, engine, fault plan, package version — plus a
``config_hash`` over the result-defining simulation parameters so two
traces can be declared comparable (same hash) or not before diffing a
single event.

The hash deliberately **excludes** fields that cannot change simulated
results: ``engine`` (both engines are bitwise-identical by contract),
``log_events`` and ``profile`` (observation toggles), and ``label``
(cosmetic).  Two runs that differ only in those fields hash the same —
which is exactly the property the engine-parity trace test leans on.

No wall-clock timestamps appear anywhere: a manifest is a pure function
of the run's inputs, so repeated runs produce byte-identical files.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields
from typing import Any, Dict, Optional

from repro.faults.plan import DomainCrash, FaultPlan
from repro.hardware.memory import LatencySpec
from repro.xen.simulator import Machine, SimConfig

__all__ = [
    "TRACE_SCHEMA",
    "RunManifest",
    "build_manifest",
    "canonical_dumps",
    "config_dict",
    "config_hash",
    "fault_fingerprint",
    "fault_plan_dict",
]

#: Schema identifier stamped on every trace line (bump on breaking change).
TRACE_SCHEMA = "repro.trace/v1"

#: SimConfig fields that cannot affect simulated results, excluded from
#: the hash: engine parity is a tested invariant, log/profile are pure
#: observation, label is cosmetic.
_NON_RESULT_FIELDS = frozenset({"engine", "log_events", "profile", "label"})


def canonical_dumps(obj: Any) -> str:
    """Serialize to canonical JSON: sorted keys, no whitespace, no NaN.

    Every byte of a trace file goes through this, so equal payloads
    always serialize to equal bytes regardless of dict insertion order.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), allow_nan=False)


def fault_plan_dict(plan: FaultPlan) -> Dict[str, Any]:
    """JSON form of a fault plan (crashes become nested dicts)."""
    out: Dict[str, Any] = {
        f.name: getattr(plan, f.name) for f in fields(plan) if f.name != "crashes"
    }
    out["crashes"] = [
        {f.name: getattr(crash, f.name) for f in fields(DomainCrash)}
        for crash in plan.crashes
    ]
    return out


def config_dict(config: SimConfig) -> Dict[str, Any]:
    """JSON form of a :class:`SimConfig` (nested specs expanded)."""
    out: Dict[str, Any] = {}
    for f in fields(config):
        value = getattr(config, f.name)
        if isinstance(value, LatencySpec):
            value = {lf.name: getattr(value, lf.name) for lf in fields(LatencySpec)}
        elif isinstance(value, FaultPlan):
            value = fault_plan_dict(value)
        out[f.name] = value
    return out


def config_hash(config: SimConfig) -> str:
    """SHA-256 over the result-defining subset of the config."""
    payload = {
        k: v for k, v in config_dict(config).items() if k not in _NON_RESULT_FIELDS
    }
    digest = hashlib.sha256(canonical_dumps(payload).encode("utf-8"))
    return digest.hexdigest()


def fault_fingerprint(plan: Optional[FaultPlan]) -> str:
    """SHA-256 over a fault plan's canonical JSON (``"none"`` if fault-free).

    ``config_hash`` already folds the plan in; this standalone form
    exists for callers that key on the plan alone — the result cache
    stores it so ``repro cache stats`` can group entries by fault plan
    without re-deriving configs.
    """
    if plan is None:
        return "none"
    digest = hashlib.sha256(canonical_dumps(fault_plan_dict(plan)).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True, slots=True)
class RunManifest:
    """Provenance header of one trace file."""

    policy: str
    scenario: str
    seed: int
    engine: str
    config_hash: str
    config: Dict[str, Any]
    faults: Optional[Dict[str, Any]]
    package_version: str
    schema: str = TRACE_SCHEMA

    def to_dict(self) -> Dict[str, Any]:
        """The manifest trace line (``type`` discriminator included)."""
        return {
            "type": "manifest",
            "schema": self.schema,
            "policy": self.policy,
            "scenario": self.scenario,
            "seed": self.seed,
            "engine": self.engine,
            "config_hash": self.config_hash,
            "config": self.config,
            "faults": self.faults,
            "package_version": self.package_version,
        }


def build_manifest(machine: Machine, scenario: str = "") -> RunManifest:
    """Construct the manifest for a machine's run.

    ``scenario`` defaults to the config's ``label`` when not given.
    """
    from repro import __version__

    config = machine.config
    return RunManifest(
        policy=machine.policy.name,
        scenario=scenario or config.label,
        seed=config.seed,
        engine=config.engine,
        config_hash=config_hash(config),
        config=config_dict(config),
        faults=fault_plan_dict(config.faults) if config.faults is not None else None,
        package_version=__version__,
    )
