"""Observability layer: JSONL traces, phase profiler, JSON schemas.

Split by dependency weight:

* :mod:`repro.obs.profiler` imports nothing from the package — the
  simulator imports it at module load, so it must stay cycle-free;
* :mod:`repro.obs.manifest`, :mod:`repro.obs.trace` and
  :mod:`repro.obs.schema` sit *above* the simulator and metrics layers.

The heavy names are re-exported lazily (PEP 562) so that importing
``repro.obs`` — which the simulator does transitively — never pulls the
trace/metrics stack back into a partially-initialized import of the
simulator itself.
"""

from __future__ import annotations

from repro.obs.profiler import SCHEDULER_PHASES, PhaseProfiler, PhaseStat

__all__ = [
    "PhaseProfiler",
    "PhaseStat",
    "SCHEDULER_PHASES",
    "RunManifest",
    "build_manifest",
    "canonical_dumps",
    "config_hash",
    "fault_fingerprint",
    "TraceFile",
    "trace_lines",
    "write_trace",
    "read_trace",
    "diff_traces",
    "REPORT_SCHEMA",
    "validate_report",
    "validate_trace_file",
]

_LAZY = {
    "RunManifest": "repro.obs.manifest",
    "build_manifest": "repro.obs.manifest",
    "canonical_dumps": "repro.obs.manifest",
    "config_hash": "repro.obs.manifest",
    "fault_fingerprint": "repro.obs.manifest",
    "TraceFile": "repro.obs.trace",
    "trace_lines": "repro.obs.trace",
    "write_trace": "repro.obs.trace",
    "read_trace": "repro.obs.trace",
    "diff_traces": "repro.obs.trace",
    "REPORT_SCHEMA": "repro.obs.schema",
    "validate_report": "repro.obs.schema",
    "validate_trace_file": "repro.obs.schema",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
