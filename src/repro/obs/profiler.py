"""Scheduler-phase profiler: where does the epoch time go?

The paper attributes vProbe's runtime cost to three mechanisms — PMU
analysis, the partitioning pass and the NUMA-aware balancer — but the
Table III accounting only reports *simulated* hypervisor seconds.  This
profiler measures the other axis: host wall-clock per scheduler phase,
so a run can answer "the analyzer is 4x the partitioner" without an
external profiler attached.

Design constraints, in order:

1. **Zero effect on simulation.**  The profiler reads
   :func:`time.perf_counter_ns` and touches nothing else — no RNG, no
   machine state — so enabling or disabling it cannot change a single
   simulated bit (the determinism tests run with it on).
2. **Cheap enough to be always-on.**  One ``start``/``stop`` pair is
   two C-level clock reads and two dict updates; the benchmark guard
   (``benchmarks/bench_profiler.py``) pins the total cost below 3 % of
   the engine microbench.  When disabled, ``start`` returns 0 and
   ``stop`` returns immediately.
3. **Picklable results.**  A :meth:`snapshot` is a plain dict of frozen
   :class:`PhaseStat`, so profiles ride inside
   :class:`~repro.metrics.collectors.RunSummary` across
   :class:`~repro.experiments.parallel.ParallelRunner` workers.

The canonical phases (see :data:`SCHEDULER_PHASES`):

``analyzer``
    :meth:`PmuAnalyzer.analyze` — closing PMU windows, Eq. 1-3.
``partition``
    Algorithm 1 (:func:`~repro.core.partition.periodical_partition`).
``balance``
    One steal attempt (Algorithm 2 under vProbe, Credit's scan
    otherwise), timed at the machine's call site so every policy is
    covered.
``sample_period``
    The whole ``on_sample_period`` hook — the envelope the inner
    ``analyzer``/``partition`` phases must account for (the regression
    test pins their sum within 5 % of it).
``epoch``
    One engine advance (contention solve + progress) — a single epoch
    on the reference/vector engines, a whole macro-step on the batched
    engine.
``horizon``
    One :meth:`~repro.xen.engine.BatchedEngine.compute_horizon` call —
    sizing the event-free epoch run the batched engine may advance in
    one step.  Absent on the reference/vector engines.
``tick_fuse``
    Committing the fused boundaries of one batch — replaying the real
    tick (and, for fused slice-expiry re-picks, steal/context-switch)
    calls the horizon proved quiescent.  Batched engine only, absent
    with ``fuse_ticks=False``.
``speculate``
    Validating a speculatively sized batch against its captured
    pre-batch state.  Batched engine with ``speculative=True`` only.
``rollback``
    Restoring state and replaying the proven prefix after a
    mis-speculated batch.  Charged only when validation failed, so
    ``rollback.calls`` counts mis-speculations.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter_ns
from typing import Dict, List

__all__ = ["PhaseStat", "PhaseProfiler", "SCHEDULER_PHASES"]

#: The phases that make up "scheduler time" (as opposed to engine time).
SCHEDULER_PHASES = ("analyzer", "partition", "balance")


@dataclass(frozen=True, slots=True)
class PhaseStat:
    """Accumulated cost of one profiled phase."""

    phase: str
    calls: int
    wall_s: float

    @property
    def mean_us(self) -> float:
        """Mean wall-clock per invocation, in microseconds."""
        if self.calls <= 0:
            return 0.0
        return self.wall_s / self.calls * 1e6

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form."""
        return {
            "phase": self.phase,
            "calls": self.calls,
            "wall_s": self.wall_s,
            "mean_us": self.mean_us,
        }


class PhaseProfiler:
    """Accumulates wall-clock and invocation counts per phase.

    Usage at a hook site::

        t0 = profiler.start()
        ...the phase...
        profiler.stop("analyzer", t0)

    ``start``/``stop`` with an explicit token (instead of a stack)
    keeps nested phases trivially correct: the ``sample_period``
    envelope and the ``analyzer`` phase inside it each hold their own
    token, and each accumulates its own full span.

    Event *counters* (:meth:`count`) track interesting occurrences that
    have no duration of their own — e.g. vector-engine gather rebuilds.
    """

    __slots__ = ("enabled", "_acc", "_counters")

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        # phase -> [total_ns, calls]: one dict lookup per stop() keeps
        # the hot path inside the <3% always-on budget.
        self._acc: Dict[str, List[int]] = {}
        self._counters: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def start(self) -> int:
        """A phase-start token (0 when disabled)."""
        if not self.enabled:
            return 0
        return perf_counter_ns()

    def stop(self, phase: str, token: int) -> None:
        """Close the span opened by ``token`` and charge it to ``phase``."""
        if not self.enabled:
            return
        elapsed = perf_counter_ns() - token
        acc = self._acc.get(phase)
        if acc is None:
            self._acc[phase] = [elapsed, 1]
        else:
            acc[0] += elapsed
            acc[1] += 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump a duration-less event counter."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + n

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def wall_s(self, phase: str) -> float:
        """Total wall-clock charged to a phase, in seconds."""
        acc = self._acc.get(phase)
        return acc[0] * 1e-9 if acc is not None else 0.0

    def calls(self, phase: str) -> int:
        """Invocations recorded for a phase."""
        acc = self._acc.get(phase)
        return acc[1] if acc is not None else 0

    def counter(self, name: str) -> int:
        """Current value of an event counter."""
        return self._counters.get(name, 0)

    def scheduler_wall_s(self) -> float:
        """Wall-clock across the scheduler phases (analyzer/partition/balance)."""
        return sum(self.wall_s(p) for p in SCHEDULER_PHASES)

    def snapshot(self) -> Dict[str, PhaseStat]:
        """Frozen per-phase stats, keyed by phase name."""
        return {
            phase: PhaseStat(phase=phase, calls=calls, wall_s=ns * 1e-9)
            for phase, (ns, calls) in sorted(self._acc.items())
        }

    def counters(self) -> Dict[str, int]:
        """All event counters (a copy)."""
        return dict(self._counters)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable report: phases + counters."""
        return {
            "phases": {p: s.to_dict() for p, s in self.snapshot().items()},
            "counters": self.counters(),
        }

    def format(self) -> str:
        """Render the phase table (import kept local: report is optional)."""
        from repro.metrics.report import format_table

        rows = [
            (s.phase, s.calls, s.wall_s * 1e3, s.mean_us)
            for s in self.snapshot().values()
        ]
        return format_table(
            ["phase", "calls", "wall (ms)", "mean (us)"], rows, float_fmt="{:.3f}"
        )

    def clear(self) -> None:
        """Reset all accumulated phases and counters."""
        self._acc.clear()
        self._counters.clear()
