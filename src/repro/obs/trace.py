"""JSONL trace export: a run's observable history as a flat file.

One trace file is a sequence of self-describing JSON lines:

1. a ``manifest`` line (provenance — see :mod:`repro.obs.manifest`),
2. ``event`` and ``snapshot`` lines merged in time order — the
   scheduler's structured :class:`~repro.util.eventlog.EventLog` stream
   interleaved with :class:`~repro.metrics.timeseries.Snapshot` window
   captures,
3. a final ``summary`` line (the :func:`~repro.metrics.collectors.summarize`
   aggregates).

Everything is serialized through
:func:`~repro.obs.manifest.canonical_dumps`, and no wall-clock data is
included (the phase profile rides in reports, never in traces), so a
fixed (scenario, seed, policy) run writes **byte-identical** files from
the reference and vectorized engines — the engine-parity contract,
extended to disk.
"""

from __future__ import annotations

import itertools
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.metrics.collectors import summarize
from repro.metrics.timeseries import Snapshot, Trace
from repro.obs.manifest import build_manifest, canonical_dumps
from repro.util.eventlog import LogEvent
from repro.xen.simulator import Machine

__all__ = ["TraceFile", "trace_lines", "write_trace", "read_trace", "diff_traces"]


def _event_line(event: LogEvent) -> Dict[str, Any]:
    return {"type": "event", "t": event.time, "kind": event.kind, "data": event.data}


def _snapshot_line(snap: Snapshot) -> Dict[str, Any]:
    return {
        "type": "snapshot",
        "t": snap.time_s,
        "accesses": {d: list(lr) for d, lr in snap.accesses.items()},
        "instructions": snap.instructions,
        "intensive_per_node": list(snap.intensive_per_node),
        "migrations": list(snap.migrations),
        "overhead_s": snap.overhead_s,
    }


def trace_lines(
    machine: Machine, trace: Optional[Trace] = None, scenario: str = ""
) -> Iterator[str]:
    """Yield the JSONL lines of a finished run, in canonical form.

    Events and snapshots are merged by timestamp (events first on a
    tie: an event *at* a window boundary happened before the window was
    observed).  The merge is stable, so the emission order — identical
    across engines by the parity contract — is preserved.
    """
    yield canonical_dumps(build_manifest(machine, scenario=scenario).to_dict())

    events = [(e.time, 0, _event_line(e)) for e in machine.log]
    snaps = [] if trace is None else [
        (s.time_s, 1, _snapshot_line(s)) for s in trace.snapshots
    ]
    # Both inputs are already time-sorted; sort() is stable, so equal
    # timestamps keep (event, snapshot) and emission order.
    merged = sorted(itertools.chain(events, snaps), key=lambda item: (item[0], item[1]))
    for _, _, line in merged:
        yield canonical_dumps(line)

    summary = summarize(machine).to_dict(include_profile=False)
    yield canonical_dumps({"type": "summary", **summary})


def write_trace(
    machine: Machine,
    path: Union[str, pathlib.Path],
    trace: Optional[Trace] = None,
    scenario: str = "",
) -> int:
    """Write the run's JSONL trace to ``path``; returns lines written.

    The machine must have run with ``log_events=True`` for the event
    stream to be present (an empty log still yields a valid trace).
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        for line in trace_lines(machine, trace=trace, scenario=scenario):
            fh.write(line + "\n")
            count += 1
    return count


@dataclass(slots=True)
class TraceFile:
    """A parsed trace: the manifest plus the typed line groups."""

    manifest: Dict[str, Any]
    events: List[Dict[str, Any]] = field(default_factory=list)
    snapshots: List[Dict[str, Any]] = field(default_factory=list)
    summary: Optional[Dict[str, Any]] = None

    def events_of_kind(self, kind: str) -> List[Dict[str, Any]]:
        """Event lines with the given ``kind``, in file order."""
        return [e for e in self.events if e["kind"] == kind]


def read_trace(path: Union[str, pathlib.Path]) -> TraceFile:
    """Parse a JSONL trace back into its typed parts."""
    import json

    manifest: Optional[Dict[str, Any]] = None
    events: List[Dict[str, Any]] = []
    snapshots: List[Dict[str, Any]] = []
    summary: Optional[Dict[str, Any]] = None
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            line = json.loads(raw)
            kind = line.get("type")
            if kind == "manifest":
                manifest = line
            elif kind == "event":
                events.append(line)
            elif kind == "snapshot":
                snapshots.append(line)
            elif kind == "summary":
                summary = line
            else:
                raise ValueError(f"{path}:{lineno}: unknown trace line type {kind!r}")
    if manifest is None:
        raise ValueError(f"{path}: trace has no manifest line")
    return TraceFile(
        manifest=manifest, events=events, snapshots=snapshots, summary=summary
    )


def diff_traces(
    path_a: Union[str, pathlib.Path],
    path_b: Union[str, pathlib.Path],
    ignore_manifest: bool = False,
) -> List[str]:
    """Line-level differences between two trace files.

    Returns human-readable descriptions (empty list = identical).
    ``ignore_manifest=True`` skips the first line of each file — the
    right mode when diffing runs that differ only in provenance the
    manifest is *expected* to record (e.g. reference vs vector engine).
    """
    lines_a = pathlib.Path(path_a).read_text(encoding="utf-8").splitlines()
    lines_b = pathlib.Path(path_b).read_text(encoding="utf-8").splitlines()
    start = 1 if ignore_manifest else 0
    diffs: List[str] = []
    for i in range(start, max(len(lines_a), len(lines_b))):
        a = lines_a[i] if i < len(lines_a) else None
        b = lines_b[i] if i < len(lines_b) else None
        if a != b:
            diffs.append(f"line {i + 1}: {_abbrev(a)} != {_abbrev(b)}")
    if len(lines_a) != len(lines_b):
        diffs.append(f"length: {len(lines_a)} lines != {len(lines_b)} lines")
    return diffs


def _abbrev(line: Optional[str], width: int = 60) -> str:
    if line is None:
        return "<missing>"
    return line if len(line) <= width else line[: width - 3] + "..."
