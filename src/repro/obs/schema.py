"""Schemas and a small validator for trace lines and JSON reports.

The repo ships no third-party dependencies beyond numpy, so this module
implements the slice of JSON Schema the observability layer actually
needs — ``type``, ``required``, ``properties``, ``items``, ``enum`` and
``const`` — rather than pulling in ``jsonschema``.  Validation returns
a list of error strings (empty = valid) so CI can print every problem
at once instead of failing on the first.

Two schema families are defined:

* trace lines (``repro.trace/v1``) — one schema per ``type``
  discriminator (manifest / event / snapshot / summary);
* report envelopes (``repro.report/v2``) — the wrapper every
  experiment's ``to_json()`` and ``repro compare --json`` emit:
  ``{"schema": ..., "kind": ..., "payload": {...}}``.  v2 run
  summaries may carry a ``horizon_stats`` block (the batched engine's
  horizon histogram and fusion counters; null on other engines);
* audit reports (``repro.audit/v1``) — what ``repro audit`` emits:
  per-seed differential verdicts, metamorphic relation outcomes and
  shrunken failure repros (:mod:`repro.audit.report`).
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.obs.manifest import TRACE_SCHEMA

__all__ = [
    "AUDIT_SCHEMA",
    "AUDIT_REPORT_SCHEMA",
    "REPORT_SCHEMA",
    "REPORT_ENVELOPE_SCHEMA",
    "TRACE_LINE_SCHEMAS",
    "validate",
    "validate_audit_report",
    "validate_report",
    "validate_trace_file",
]

#: Schema identifier stamped on every JSON report envelope.  Bumped to
#: v2 when run summaries grew the optional ``horizon_stats`` block; v1
#: envelopes (no such block was ever emitted) fail validation so stale
#: artifacts are regenerated rather than silently mixed.
REPORT_SCHEMA = "repro.report/v2"

#: Schema identifier stamped on every ``repro audit`` report.
AUDIT_SCHEMA = "repro.audit/v1"

_NUMBER = {"type": "number"}
_STRING = {"type": "string"}
_INT = {"type": "integer"}

#: One schema per trace-line ``type`` discriminator.
TRACE_LINE_SCHEMAS: Dict[str, Dict[str, Any]] = {
    "manifest": {
        "type": "object",
        "required": [
            "type",
            "schema",
            "policy",
            "scenario",
            "seed",
            "engine",
            "config_hash",
            "config",
            "faults",
            "package_version",
        ],
        "properties": {
            "type": {"const": "manifest"},
            "schema": {"const": TRACE_SCHEMA},
            "policy": _STRING,
            "scenario": _STRING,
            "seed": _INT,
            "engine": {"enum": ["batched", "vector", "reference"]},
            "config_hash": _STRING,
            "config": {"type": "object"},
            "faults": {"type": ["object", "null"]},
            "package_version": _STRING,
        },
    },
    "event": {
        "type": "object",
        "required": ["type", "t", "kind", "data"],
        "properties": {
            "type": {"const": "event"},
            "t": _NUMBER,
            "kind": _STRING,
            "data": {"type": "object"},
        },
    },
    "snapshot": {
        "type": "object",
        "required": [
            "type",
            "t",
            "accesses",
            "instructions",
            "intensive_per_node",
            "migrations",
            "overhead_s",
        ],
        "properties": {
            "type": {"const": "snapshot"},
            "t": _NUMBER,
            "accesses": {"type": "object"},
            "instructions": {"type": "object"},
            "intensive_per_node": {"type": "array", "items": _INT},
            "migrations": {"type": "array", "items": _INT},
            "overhead_s": _NUMBER,
        },
    },
    "summary": {
        "type": "object",
        "required": ["type", "policy", "machine_stats", "domains"],
        "properties": {
            "type": {"const": "summary"},
            "policy": _STRING,
            "machine_stats": {"type": "object"},
            "domains": {"type": "object"},
        },
    },
}

#: The wrapper for every machine-readable report.
REPORT_ENVELOPE_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema", "kind", "payload"],
    "properties": {
        "schema": {"const": REPORT_SCHEMA},
        "kind": _STRING,
        "payload": {"type": "object"},
    },
}

#: The ``repro audit`` report: envelope plus the payload fields CI and
#: the regression harness read.  Per-scenario details stay loosely
#: typed objects — their exact shape belongs to :mod:`repro.audit`.
AUDIT_REPORT_SCHEMA: Dict[str, Any] = {
    "type": "object",
    "required": ["schema", "kind", "payload"],
    "properties": {
        "schema": {"const": AUDIT_SCHEMA},
        "kind": {"const": "audit"},
        "payload": {
            "type": "object",
            "required": [
                "ok",
                "seeds",
                "engines",
                "checks_run",
                "elapsed_s",
                "results",
                "metamorphic",
                "failures",
            ],
            "properties": {
                "ok": {"type": "boolean"},
                "seeds": {"type": "array", "items": _INT},
                "engines": {"type": "array", "items": _STRING},
                "checks_run": _INT,
                "elapsed_s": _NUMBER,
                "results": {"type": "array", "items": {"type": "object"}},
                "metamorphic": {"type": "array", "items": {"type": "object"}},
                "failures": {"type": "array", "items": {"type": "object"}},
            },
        },
    },
}

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; JSON Schema says it is not a number.
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def validate(instance: Any, schema: Dict[str, Any], path: str = "$") -> List[str]:
    """Check ``instance`` against ``schema``; returns error strings."""
    errors: List[str] = []

    if "const" in schema and instance != schema["const"]:
        errors.append(f"{path}: expected {schema['const']!r}, got {instance!r}")
        return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']!r}")
        return errors

    expected = schema.get("type")
    if expected is not None:
        allowed = expected if isinstance(expected, list) else [expected]
        if not any(_TYPE_CHECKS[t](instance) for t in allowed):
            errors.append(
                f"{path}: expected type {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return errors

    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        for key, subschema in schema.get("properties", {}).items():
            if key in instance:
                errors.extend(validate(instance[key], subschema, f"{path}.{key}"))
    elif isinstance(instance, list) and "items" in schema:
        for i, item in enumerate(instance):
            errors.extend(validate(item, schema["items"], f"{path}[{i}]"))

    return errors


def validate_report(obj: Any) -> List[str]:
    """Validate one report envelope (``to_json()`` / ``--json`` output)."""
    return validate(obj, REPORT_ENVELOPE_SCHEMA)


def validate_audit_report(obj: Any) -> List[str]:
    """Validate one ``repro audit`` report (``repro.audit/v1``)."""
    return validate(obj, AUDIT_REPORT_SCHEMA)


def validate_trace_file(path: Union[str, pathlib.Path]) -> List[str]:
    """Validate every line of a JSONL trace file.

    Checks JSON well-formedness, the per-type line schemas, and the
    file's gross structure (manifest first, exactly one summary last
    when present).
    """
    errors: List[str] = []
    lines: List[Dict[str, Any]] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            raw = raw.strip()
            if not raw:
                continue
            try:
                line = json.loads(raw)
            except json.JSONDecodeError as exc:
                errors.append(f"line {lineno}: invalid JSON: {exc}")
                continue
            kind = line.get("type") if isinstance(line, dict) else None
            schema = TRACE_LINE_SCHEMAS.get(kind)
            if schema is None:
                errors.append(f"line {lineno}: unknown line type {kind!r}")
                continue
            errors.extend(validate(line, schema, path=f"line {lineno}"))
            lines.append(line)

    if not lines:
        errors.append("trace is empty")
        return errors
    if lines[0].get("type") != "manifest":
        errors.append("first line must be the manifest")
    n_summaries = sum(1 for l in lines if l.get("type") == "summary")
    if n_summaries > 1:
        errors.append(f"expected at most one summary line, found {n_summaries}")
    if n_summaries == 1 and lines[-1].get("type") != "summary":
        errors.append("summary line must be last")
    return errors
