"""System-wide lock contention model.

BRM serialises every VCPU *uncore penalty* update behind one global
lock (the paper's §V-B5 explanation for BRM's poor showing: "it needs
to acquire a system-wide lock before updating a VCPU's uncore penalty
... when the number of VCPUs is large, i.e., greater than 8, the lock
contention problem introduces significant overheads").

The analytic model: an update's critical section takes
``critical_section_s``; while ``contenders`` VCPUs are actively
updating, an acquirer additionally waits for the expected number of
earlier arrivals ahead of it.  Contention grows once the updater count
exceeds ``free_threshold`` (the point where updates start overlapping —
8 on the paper's 8-PCPU host):

``wait = cs * max(0, contenders - free_threshold) * scale``

Linear-in-contenders waiting matches ticket/queued spinlocks, which is
what Xen uses for scheduler-global state.
"""

from __future__ import annotations

from repro.util.validation import check_non_negative, check_positive

__all__ = ["GlobalLockModel"]


class GlobalLockModel:
    """Expected cost of one lock-protected update under contention.

    Parameters
    ----------
    critical_section_s:
        Time the lock is held per update.
    free_threshold:
        Updater count below which acquisitions are effectively
        uncontended.
    scale:
        Multiplier on the queueing term (cache-line ping-pong makes the
        effective critical section grow with waiters on real hardware).
    """

    def __init__(
        self,
        critical_section_s: float = 15.0e-6,
        free_threshold: int = 8,
        scale: float = 16.0,
    ) -> None:
        self.critical_section_s = check_positive(critical_section_s, "critical_section_s")
        if free_threshold < 0:
            raise ValueError(f"free_threshold must be >= 0, got {free_threshold}")
        self.free_threshold = free_threshold
        self.scale = check_positive(scale, "scale")
        self.acquisitions = 0
        self.total_wait_s = 0.0

    def acquire_cost(self, contenders: int) -> float:
        """Total time (hold + expected wait) for one update.

        Parameters
        ----------
        contenders:
            VCPUs currently in the update path (the paper's "number of
            VCPUs" — every VCPU's penalty is refreshed around context
            switches, so all runnable VCPUs contend).
        """
        check_non_negative(contenders, "contenders")
        wait = (
            self.critical_section_s
            * max(0, contenders - self.free_threshold)
            * self.scale
        )
        cost = self.critical_section_s + wait
        self.acquisitions += 1
        self.total_wait_s += wait
        return cost

    def mean_wait_s(self) -> float:
        """Average waiting time per acquisition so far."""
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_s / self.acquisitions

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"GlobalLockModel(cs={self.critical_section_s:.2e}s, "
            f"acquisitions={self.acquisitions})"
        )
