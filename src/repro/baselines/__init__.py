"""Comparison baselines.

* :mod:`repro.baselines.brm` — Bias Random vCPU Migration (Rao et al.,
  HPCA 2013), the NUMA-aware scheduler the paper compares against;
* :mod:`repro.baselines.lock` — the system-wide lock whose contention
  the paper identifies as BRM's scalability bottleneck.
"""

from repro.baselines.brm import BRMParams, BRMScheduler
from repro.baselines.lock import GlobalLockModel

__all__ = ["BRMScheduler", "BRMParams", "GlobalLockModel"]
