"""Bias Random vCPU Migration (BRM) baseline.

Re-implements, at the level our substrate models, the NUMA-aware VCPU
scheduler of Rao et al. (HPCA 2013) that the paper compares against
(§V-A): each VCPU carries an *uncore penalty* summarising how much the
uncore memory subsystem (LLC misses, remote accesses) is hurting it,
and the scheduler periodically performs biased random migrations that
move VCPUs toward the node minimising the system-wide penalty.

Two properties the paper highlights are reproduced deliberately:

* **all performance-degrading factors are weighted equally** in the
  penalty (the paper's criticism: "it cannot give precise optimization
  for each factor") — the penalty is the unweighted mean of the
  normalised LLC-miss and remote-access components;
* **every penalty update takes a system-wide lock**, so with more than
  ~8 active VCPUs the update path serialises and the lock wait grows
  linearly — BRM then loses to plain Credit despite reducing both total
  and remote memory accesses (§V-B5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.baselines.lock import GlobalLockModel
from repro.hardware.pmu import VcpuCounters
from repro.xen.credit import CreditParams, CreditScheduler
from repro.xen.pcpu import Pcpu
from repro.xen.vcpu import Vcpu, VcpuState
from repro.util.validation import check_fraction, check_positive

__all__ = ["BRMParams", "BRMScheduler"]


@dataclass(frozen=True, slots=True)
class BRMParams:
    """BRM tuning knobs.

    Attributes
    ----------
    migrate_period_ticks:
        Scheduler ticks between migration rounds (30 ms default).
    migrations_per_round:
        Candidate VCPUs considered per round.
    bias:
        Probability a candidate moves to its estimated best node; with
        probability ``1 - bias`` it moves to a uniformly random node
        (the "random" in bias random migration, which provides the
        exploration of Rao et al.'s design).
    miss_pressure_norm:
        LLC misses per kilo-instruction treated as "maximal" when
        normalising the miss component of the penalty.
    """

    migrate_period_ticks: int = 3
    migrations_per_round: int = 2
    bias: float = 0.7
    miss_pressure_norm: float = 25.0

    def __post_init__(self) -> None:
        if self.migrate_period_ticks <= 0:
            raise ValueError("migrate_period_ticks must be > 0")
        if self.migrations_per_round <= 0:
            raise ValueError("migrations_per_round must be > 0")
        check_fraction(self.bias, "bias")
        check_positive(self.miss_pressure_norm, "miss_pressure_norm")


class BRMScheduler(CreditScheduler):
    """Credit scheduler + uncore-penalty-driven bias random migration."""

    name = "brm"
    collects_pmu = True

    def __init__(
        self,
        params: CreditParams | None = None,
        brm_params: BRMParams | None = None,
        lock: GlobalLockModel | None = None,
    ) -> None:
        super().__init__(params)
        self.bparams = brm_params or BRMParams()
        self.lock = lock or GlobalLockModel()
        self._snapshots: Dict[int, VcpuCounters] = {}

    def tick_is_quiescent(self, tick_index: int) -> bool:
        # BRM acts on every tick: penalty updates behind the global lock
        # and (periodically) migration rounds drawing from the
        # ``brm.migrate`` stream.  No tick is ever fusable — stated
        # explicitly although the inherited on_tick-override check would
        # already refuse.
        return False

    # ------------------------------------------------------------------
    # Penalty maintenance (lock-protected on every update)
    # ------------------------------------------------------------------
    def on_tick(self, now: float, tick_index: int) -> None:
        super().on_tick(now, tick_index)
        machine = self.machine
        assert machine is not None

        contenders = sum(1 for v in machine.vcpus if v.runnable)
        for pcpu in machine.pcpus:
            vcpu = pcpu.current
            if vcpu is None:
                continue
            self._update_penalty(vcpu)
            machine.charge_overhead(
                "brm_lock", pcpu, self.lock.acquire_cost(contenders)
            )

        if tick_index % self.bparams.migrate_period_ticks == 0 and tick_index > 0:
            self._migration_round(now)

    def _update_penalty(self, vcpu: Vcpu) -> None:
        """Refresh a VCPU's uncore penalty from its counter delta."""
        machine = self.machine
        assert machine is not None
        totals = machine.pmu.totals(vcpu.key)
        base = self._snapshots.get(vcpu.key)
        window = totals if base is None else totals.delta(base)
        self._snapshots[vcpu.key] = totals

        if window.instructions <= 0:
            return
        # Equal-weight combination of the two uncore factors — the
        # imprecision the paper criticises.
        miss_pkI = window.llc_misses / window.instructions * 1000.0
        miss_component = min(1.0, miss_pkI / self.bparams.miss_pressure_norm)
        remote_component = window.remote_ratio()
        vcpu.uncore_penalty = 0.5 * miss_component + 0.5 * remote_component

    # ------------------------------------------------------------------
    # Bias random migration
    # ------------------------------------------------------------------
    def _migration_round(self, now: float) -> None:
        machine = self.machine
        assert machine is not None
        rng = machine.rng.get("brm.migrate")
        candidates = [
            v
            for v in machine.vcpus
            if v.state in (VcpuState.RUNNABLE, VcpuState.RUNNING)
            and v.uncore_penalty > 0
        ]
        if not candidates:
            return
        # Bias candidate choice toward the worst penalties.
        weights = np.array([v.uncore_penalty for v in candidates])
        probs = weights / weights.sum()
        count = min(self.bparams.migrations_per_round, len(candidates))
        chosen = rng.choice(len(candidates), size=count, replace=False, p=probs)
        for idx in chosen:
            vcpu = candidates[int(idx)]
            target_node = self._pick_node(vcpu, rng)
            current_node = (
                machine.topology.node_of_pcpu(vcpu.pcpu)
                if vcpu.pcpu is not None
                else None
            )
            if target_node == current_node:
                continue
            target = machine.least_loaded_pcpu(target_node)
            machine.migrate_vcpu(vcpu, target.pcpu_id, now, reason="brm")

    def _pick_node(self, vcpu: Vcpu, rng: np.random.Generator) -> int:
        """Best node by observed accesses, with (1-bias) exploration."""
        machine = self.machine
        assert machine is not None
        num_nodes = machine.topology.num_nodes
        if rng.random() >= self.bparams.bias:
            return int(rng.integers(num_nodes))
        accesses = machine.pmu.totals(vcpu.key).node_accesses
        if accesses.sum() <= 0:
            return int(rng.integers(num_nodes))
        return int(np.argmax(accesses))

    # ------------------------------------------------------------------
    def on_context_switch(self, pcpu: Pcpu, prev: Optional[Vcpu], nxt: Optional[Vcpu]) -> None:
        """Counter save/restore, plus a locked penalty update on switch-out."""
        machine = self.machine
        assert machine is not None
        machine.charge_overhead("pmu", pcpu, machine.pmu.record_collection())
        if prev is not None:
            contenders = sum(1 for v in machine.vcpus if v.runnable)
            self._update_penalty(prev)
            machine.charge_overhead(
                "brm_lock", pcpu, self.lock.acquire_cost(contenders)
            )
