"""NUMA machine topology.

The topology is the static description every other hardware model hangs
off: nodes, PCPUs per node, LLC capacity per node (one LLC per socket on
the paper's Xeon E5620), per-node memory capacity, and the node distance
matrix used to decide local vs remote accesses.

The default topology, :func:`xeon_e5620`, encodes Table I of the paper:

============  =============================================
Cores         4 per socket, 2 sockets
Clock         2.40 GHz
L3 (LLC)      12 MB unified, shared by the 4 cores of a socket
IMC           25.6 GB/s per node, 2 nodes, 12 GB memory each
QPI           2 links, 5.86 GT/s
============  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.util.validation import check_index, check_positive

__all__ = ["NodeSpec", "NUMATopology", "xeon_e5620", "symmetric_topology"]

#: Bytes per simulated memory page (4 KiB, matching x86).
PAGE_SIZE = 4096

#: One gibibyte, for readability of capacity constants.
GIB = 1024**3

#: One mebibyte.
MIB = 1024**2


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """Static description of one NUMA node (socket).

    Attributes
    ----------
    node_id:
        Index of the node, ``0 <= node_id < num_nodes``.
    num_pcpus:
        Physical CPUs (cores) on this node.
    llc_bytes:
        Capacity of the last-level cache shared by this node's cores.
    memory_bytes:
        DRAM attached to this node's memory controller.
    imc_bandwidth:
        Peak IMC bandwidth in bytes/second.
    clock_hz:
        Core clock frequency.
    """

    node_id: int
    num_pcpus: int
    llc_bytes: int
    memory_bytes: int
    imc_bandwidth: float
    clock_hz: float

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise ValueError(f"node_id must be >= 0, got {self.node_id}")
        if self.num_pcpus <= 0:
            raise ValueError(f"num_pcpus must be > 0, got {self.num_pcpus}")
        check_positive(self.llc_bytes, "llc_bytes")
        check_positive(self.memory_bytes, "memory_bytes")
        check_positive(self.imc_bandwidth, "imc_bandwidth")
        check_positive(self.clock_hz, "clock_hz")

    @property
    def memory_pages(self) -> int:
        """Number of whole pages this node's DRAM holds."""
        return self.memory_bytes // PAGE_SIZE


class NUMATopology:
    """A NUMA machine: a list of nodes plus interconnect description.

    PCPUs are globally numbered ``0 .. num_pcpus-1`` in node order:
    node 0 owns PCPUs ``0 .. n0-1``, node 1 the next ``n1``, and so on.

    Parameters
    ----------
    nodes:
        Per-node specifications.  Node ids must be ``0..len(nodes)-1``
        in order.
    qpi_links:
        Number of interconnect links between the sockets.
    qpi_bandwidth:
        Aggregate interconnect bandwidth in bytes/second (all links).
    name:
        Human-readable label for reports.
    """

    def __init__(
        self,
        nodes: Sequence[NodeSpec],
        qpi_links: int = 2,
        qpi_bandwidth: float = 12.8e9,
        name: str = "numa",
    ) -> None:
        if not nodes:
            raise ValueError("topology needs at least one node")
        for i, node in enumerate(nodes):
            if node.node_id != i:
                raise ValueError(
                    f"nodes must be listed in id order: position {i} has id {node.node_id}"
                )
        if qpi_links <= 0:
            raise ValueError(f"qpi_links must be > 0, got {qpi_links}")
        check_positive(qpi_bandwidth, "qpi_bandwidth")

        self.nodes: Tuple[NodeSpec, ...] = tuple(nodes)
        self.qpi_links = qpi_links
        self.qpi_bandwidth = float(qpi_bandwidth)
        self.name = name

        self._pcpu_node: List[int] = []
        self._node_pcpus: List[Tuple[int, ...]] = []
        next_pcpu = 0
        for node in self.nodes:
            ids = tuple(range(next_pcpu, next_pcpu + node.num_pcpus))
            self._node_pcpus.append(ids)
            self._pcpu_node.extend([node.node_id] * node.num_pcpus)
            next_pcpu += node.num_pcpus

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of NUMA nodes."""
        return len(self.nodes)

    @property
    def num_pcpus(self) -> int:
        """Total physical CPUs across all nodes."""
        return len(self._pcpu_node)

    @property
    def total_memory_bytes(self) -> int:
        """Total DRAM across all nodes."""
        return sum(n.memory_bytes for n in self.nodes)

    def node_of_pcpu(self, pcpu_id: int) -> int:
        """NUMA node that owns ``pcpu_id``."""
        check_index(pcpu_id, self.num_pcpus, "pcpu_id")
        return self._pcpu_node[pcpu_id]

    def pcpus_of_node(self, node_id: int) -> Tuple[int, ...]:
        """PCPU ids belonging to ``node_id`` (ascending)."""
        check_index(node_id, self.num_nodes, "node_id")
        return self._node_pcpus[node_id]

    def peer_pcpus(self, pcpu_id: int) -> Tuple[int, ...]:
        """Other PCPUs on the same node as ``pcpu_id``."""
        node = self.node_of_pcpu(pcpu_id)
        return tuple(p for p in self._node_pcpus[node] if p != pcpu_id)

    def remote_nodes(self, node_id: int) -> Tuple[int, ...]:
        """All node ids other than ``node_id`` (ascending)."""
        check_index(node_id, self.num_nodes, "node_id")
        return tuple(n for n in range(self.num_nodes) if n != node_id)

    def distance(self, from_node: int, to_node: int) -> int:
        """Hop distance between nodes (0 = same node, 1 = one hop).

        The paper's platform is two sockets joined by QPI, so the matrix
        is 0 on the diagonal and 1 elsewhere; larger synthetic
        topologies keep that flat remote distance, which matches a
        fully-connected interconnect.
        """
        check_index(from_node, self.num_nodes, "from_node")
        check_index(to_node, self.num_nodes, "to_node")
        return 0 if from_node == to_node else 1

    def same_node(self, pcpu_a: int, pcpu_b: int) -> bool:
        """True when both PCPUs share a NUMA node."""
        return self.node_of_pcpu(pcpu_a) == self.node_of_pcpu(pcpu_b)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by reports/README)."""
        lines = [f"topology {self.name!r}: {self.num_nodes} nodes, {self.num_pcpus} pcpus"]
        for node in self.nodes:
            lines.append(
                f"  node {node.node_id}: {node.num_pcpus} pcpus, "
                f"LLC {node.llc_bytes // MIB} MiB, "
                f"mem {node.memory_bytes // GIB} GiB, "
                f"IMC {node.imc_bandwidth / 1e9:.1f} GB/s"
            )
        lines.append(
            f"  interconnect: {self.qpi_links} links, "
            f"{self.qpi_bandwidth / 1e9:.1f} GB/s aggregate"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NUMATopology(name={self.name!r}, nodes={self.num_nodes}, pcpus={self.num_pcpus})"


def xeon_e5620(memory_per_node_gib: int = 12) -> NUMATopology:
    """The paper's Table I host: 2 sockets x 4 cores Xeon E5620.

    Parameters
    ----------
    memory_per_node_gib:
        DRAM per node; the paper's host has 12 GB per node.
    """
    nodes = [
        NodeSpec(
            node_id=i,
            num_pcpus=4,
            llc_bytes=12 * MIB,
            memory_bytes=memory_per_node_gib * GIB,
            # Table I lists 25.6 GB/s peak per IMC; ~50% of peak is the
            # realistic sustained random-access figure the queueing
            # model should saturate against.
            imc_bandwidth=12.8e9,
            clock_hz=2.40e9,
        )
        for i in range(2)
    ]
    # 2 QPI links at 5.86 GT/s are ~11.7 GB/s raw each, but snoop and
    # coherence traffic leave only a few GB/s of usable cross-socket
    # *data* bandwidth on Westmere-EP; 4 GB/s effective is the level at
    # which measured remote-streaming studies on this platform saturate.
    return NUMATopology(nodes, qpi_links=2, qpi_bandwidth=4.0e9, name="xeon-e5620")


def symmetric_topology(
    num_nodes: int,
    pcpus_per_node: int,
    llc_mib: int = 12,
    memory_per_node_gib: int = 12,
    imc_bandwidth: float = 25.6e9,
    clock_hz: float = 2.4e9,
    qpi_bandwidth: float = 12.8e9,
) -> NUMATopology:
    """Build a symmetric N-node topology for scaling studies and tests."""
    if num_nodes <= 0:
        raise ValueError(f"num_nodes must be > 0, got {num_nodes}")
    if pcpus_per_node <= 0:
        raise ValueError(f"pcpus_per_node must be > 0, got {pcpus_per_node}")
    nodes = [
        NodeSpec(
            node_id=i,
            num_pcpus=pcpus_per_node,
            llc_bytes=llc_mib * MIB,
            memory_bytes=memory_per_node_gib * GIB,
            imc_bandwidth=imc_bandwidth,
            clock_hz=clock_hz,
        )
        for i in range(num_nodes)
    ]
    return NUMATopology(
        nodes,
        qpi_links=max(1, num_nodes - 1),
        qpi_bandwidth=qpi_bandwidth,
        name=f"sym-{num_nodes}x{pcpus_per_node}",
    )
