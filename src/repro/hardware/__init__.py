"""Hardware substrate: NUMA topology, shared-LLC, memory system, PMU.

This package models the machine the paper measures on (Table I): a
two-socket Intel Xeon E5620 with one 12 MB LLC per socket, one
integrated memory controller (IMC) per node and two QPI links.  The
models are analytic (occupancy shares, queueing factors) rather than
cycle-accurate — the VCPU scheduler under study only observes topology,
counter values and end-to-end stall costs, all of which these models
expose.
"""

from repro.hardware.topology import NUMATopology, NodeSpec, xeon_e5620, symmetric_topology
from repro.hardware.cache import CacheModel, CacheOccupancy, LLCState
from repro.hardware.memory import MemorySystem, MemoryCosts, LatencySpec
from repro.hardware.pmu import PMU, VcpuCounters

__all__ = [
    "NUMATopology",
    "NodeSpec",
    "xeon_e5620",
    "symmetric_topology",
    "CacheModel",
    "CacheOccupancy",
    "LLCState",
    "MemorySystem",
    "MemoryCosts",
    "LatencySpec",
    "PMU",
    "VcpuCounters",
]
