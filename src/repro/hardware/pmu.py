"""Virtualised performance-monitoring-unit (PMU) counters.

The paper patches Xen with Perfctr-Xen so each VCPU gets its own view of
the hardware counters: LLC references, retired instructions, and
local/remote memory access counts, saved and restored around context
switches and refreshed every 10 ms while a VCPU burns credits.

In the simulator, counter values are *produced by* the same cache and
memory models that determine performance, so the measurement loop is
closed just as on hardware: what vProbe observes is exactly what the
machine model did.  The hypervisor-side cost of reading and switching
counters is charged separately (see ``collection_cost_s``), feeding the
overhead accounting of Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_index, check_non_negative

__all__ = ["VcpuCounters", "PMU"]


@dataclass(slots=True)
class VcpuCounters:
    """Cumulative counters for one VCPU.

    Attributes
    ----------
    instructions:
        Retired instructions.
    llc_refs:
        Last-level cache references.
    llc_misses:
        Last-level cache misses.
    node_accesses:
        Per-node DRAM accesses attributed to this VCPU (where the page
        lived), length ``num_nodes``.
    local_accesses / remote_accesses:
        DRAM accesses split by whether the serving node matched the
        node the VCPU was running on at the time.
    """

    num_nodes: int
    instructions: float = 0.0
    llc_refs: float = 0.0
    llc_misses: float = 0.0
    node_accesses: np.ndarray = field(default=None)  # type: ignore[assignment]
    local_accesses: float = 0.0
    remote_accesses: float = 0.0

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ValueError(f"num_nodes must be > 0, got {self.num_nodes}")
        if self.node_accesses is None:
            self.node_accesses = np.zeros(self.num_nodes)

    def copy(self) -> "VcpuCounters":
        """Deep copy (node_accesses is duplicated)."""
        return VcpuCounters(
            num_nodes=self.num_nodes,
            instructions=self.instructions,
            llc_refs=self.llc_refs,
            llc_misses=self.llc_misses,
            node_accesses=self.node_accesses.copy(),
            local_accesses=self.local_accesses,
            remote_accesses=self.remote_accesses,
        )

    def delta(self, baseline: "VcpuCounters") -> "VcpuCounters":
        """Counters accumulated since ``baseline`` was captured."""
        if baseline.num_nodes != self.num_nodes:
            raise ValueError("baseline has a different node count")
        return VcpuCounters(
            num_nodes=self.num_nodes,
            instructions=self.instructions - baseline.instructions,
            llc_refs=self.llc_refs - baseline.llc_refs,
            llc_misses=self.llc_misses - baseline.llc_misses,
            node_accesses=self.node_accesses - baseline.node_accesses,
            local_accesses=self.local_accesses - baseline.local_accesses,
            remote_accesses=self.remote_accesses - baseline.remote_accesses,
        )

    @property
    def total_accesses(self) -> float:
        """Total DRAM accesses (local + remote)."""
        return self.local_accesses + self.remote_accesses

    def remote_ratio(self) -> float:
        """Remote share of DRAM accesses (0 when there were none)."""
        total = self.total_accesses
        return self.remote_accesses / total if total > 0 else 0.0


class PMU:
    """Counter banks for all VCPUs, plus sampling-window bookkeeping.

    Parameters
    ----------
    num_nodes:
        Node count, fixing the length of per-node access vectors.
    collection_cost_s:
        Hypervisor time charged per counter collection event (context
        switch save/restore or 10 ms refresh).  Feeds Table III.
    """

    def __init__(self, num_nodes: int, collection_cost_s: float = 2.0e-6) -> None:
        if num_nodes <= 0:
            raise ValueError(f"num_nodes must be > 0, got {num_nodes}")
        self.num_nodes = num_nodes
        self.collection_cost_s = check_non_negative(collection_cost_s, "collection_cost_s")
        self._counters: Dict[int, VcpuCounters] = {}
        self._window_base: Dict[int, VcpuCounters] = {}
        self._collection_events = 0
        # Structure-of-arrays storage for the per-node access counters:
        # each registered bank's ``node_accesses`` is a row view into
        # this matrix, so the per-epoch batch charge lands with a single
        # fancy-indexed add instead of one ndarray add per bank.
        self._row_of: Dict[int, int] = {}
        self._node_matrix = np.zeros((0, num_nodes))

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # Re-establish the row-view invariant.  Pickle serializes each
        # bank's ``node_accesses`` view as an independent array, so a
        # restored PMU would have banks detached from ``_node_matrix``:
        # batched ``charge_epoch`` scatter-adds would land in the matrix
        # while every reader (window deltas, affinity) kept seeing the
        # bank's frozen copy.  Rebinding on restore is exactly what
        # :meth:`register` does after a matrix reallocation.
        for key, bank in self._counters.items():
            bank.node_accesses = self._node_matrix[self._row_of[key]]

    def register(self, vcpu_key: int) -> None:
        """Create counter banks for a VCPU (idempotent)."""
        if vcpu_key in self._counters:
            return
        row = self._row_of.get(vcpu_key)
        if row is None:
            row = len(self._row_of)
            self._row_of[vcpu_key] = row
            if row >= self._node_matrix.shape[0]:
                grown = np.zeros(
                    (max(8, 2 * self._node_matrix.shape[0]), self.num_nodes)
                )
                grown[: self._node_matrix.shape[0]] = self._node_matrix
                self._node_matrix = grown
                # Rebind live banks onto the reallocated matrix.
                for key, bank in self._counters.items():
                    bank.node_accesses = self._node_matrix[self._row_of[key]]
        bank = VcpuCounters(self.num_nodes)
        self._node_matrix[row] = 0.0
        bank.node_accesses = self._node_matrix[row]
        self._counters[vcpu_key] = bank
        self._window_base[vcpu_key] = VcpuCounters(self.num_nodes)

    def unregister(self, vcpu_key: int) -> None:
        """Drop a VCPU's banks (domain destroyed).

        The VCPU's matrix row stays reserved and is recycled if the key
        ever re-registers.
        """
        self._counters.pop(vcpu_key, None)
        self._window_base.pop(vcpu_key, None)

    def rows_for(self, keys: Sequence[int]) -> np.ndarray:
        """Matrix row indices for ``keys`` (cacheable by batch chargers).

        Valid until any of the keys is unregistered; rows survive
        matrix growth from later registrations.
        """
        return np.array([self._row_of[key] for key in keys])

    def banks_for(self, keys: Sequence[int]) -> List[VcpuCounters]:
        """Live counter banks for ``keys`` (cacheable by batch chargers).

        Valid until any of the keys is unregistered; the bank objects
        are stable across matrix growth (only their ``node_accesses``
        views are rebound).
        """
        counters = self._counters
        return [counters[key] for key in keys]

    def known(self) -> Tuple[int, ...]:
        """Registered VCPU keys (sorted)."""
        return tuple(sorted(self._counters))

    def __contains__(self, vcpu_key: int) -> bool:
        return vcpu_key in self._counters

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._counters))

    # ------------------------------------------------------------------
    # Charging (called by the simulator's progress pass)
    # ------------------------------------------------------------------
    def charge(
        self,
        vcpu_key: int,
        *,
        instructions: float,
        llc_refs: float,
        llc_misses: float,
        node_access_share: np.ndarray,
        run_node: int,
    ) -> None:
        """Accumulate one epoch's activity into a VCPU's bank.

        Parameters
        ----------
        instructions, llc_refs, llc_misses:
            Event counts for the epoch.
        node_access_share:
            Probability vector over nodes: where the epoch's DRAM
            accesses were served.
        run_node:
            Node the VCPU ran on, splitting local vs remote.
        """
        check_non_negative(instructions, "instructions")
        check_non_negative(llc_refs, "llc_refs")
        check_non_negative(llc_misses, "llc_misses")
        check_index(run_node, self.num_nodes, "run_node")
        bank = self._counters.get(vcpu_key)
        if bank is None:
            raise KeyError(f"vcpu {vcpu_key} is not registered with the PMU")
        if len(node_access_share) != self.num_nodes:
            raise ValueError("node_access_share length must equal num_nodes")
        bank.instructions += instructions
        bank.llc_refs += llc_refs
        bank.llc_misses += llc_misses
        accesses = llc_misses * np.asarray(node_access_share, dtype=float)
        bank.node_accesses += accesses
        local = float(accesses[run_node])
        bank.local_accesses += local
        bank.remote_accesses += float(accesses.sum()) - local

    def charge_epoch(
        self,
        keys: Sequence[int],
        instructions: Sequence[float],
        llc_refs: Sequence[float],
        llc_misses: Sequence[float],
        accesses: "np.ndarray | Sequence[Sequence[float]]",
        run_nodes: Sequence[int],
        rows: "np.ndarray | None" = None,
    ) -> None:
        """Batched, validation-free :meth:`charge` for one epoch.

        Positional arrays over the k VCPUs that ran: ``accesses`` has
        shape ``(k, num_nodes)`` — an ndarray or a nested list — and
        already equals ``llc_misses[i] * node_access_share[i]`` rowwise;
        the caller computes it elementwise, which is bitwise-identical
        to the scalar path.  ``rows``, when given, must be
        ``rows_for(keys)`` (callers with a stable running set cache
        it).  Bank accumulation order matches per-VCPU charges.
        """
        if rows is None:
            row_of = self._row_of
            rows = np.array([row_of[key] for key in keys])
        # One scatter-add into the SoA matrix covers every bank's
        # node_accesses (each bank's vector is a row view); keys are
        # distinct, so the fancy-indexed add is an elementwise add per
        # row — the same bits as per-bank `+=`.
        if isinstance(accesses, np.ndarray):
            self._node_matrix[rows] += accesses
            # Row sums and local shares as Python floats: numpy reduces
            # a contiguous row with the same routine whether summed
            # alone or along axis 1, so these equal float(row[n]) /
            # float(row.sum()) bit for bit.
            acc_rows = accesses.tolist()
            row_sums = accesses.sum(axis=1).tolist()
        else:
            acc_rows = accesses
            self._node_matrix[rows] += np.asarray(acc_rows)
            if self.num_nodes == 2:
                # A two-element numpy reduction is a single sequential
                # add — the same bits as the scalar sum.
                row_sums = [row[0] + row[1] for row in acc_rows]
            else:
                row_sums = np.asarray(acc_rows).sum(axis=1).tolist()
        counters = self._counters
        for i, key in enumerate(keys):
            bank = counters[key]
            bank.instructions += instructions[i]
            bank.llc_refs += llc_refs[i]
            bank.llc_misses += llc_misses[i]
            local = acc_rows[i][run_nodes[i]]
            bank.local_accesses += local
            bank.remote_accesses += row_sums[i] - local

    def charge_epoch_batch(
        self,
        keys: Sequence[int],
        instructions: np.ndarray,
        llc_refs: np.ndarray,
        llc_misses: np.ndarray,
        acc0: np.ndarray,
        acc1: np.ndarray,
        run_nodes: Sequence[int],
        rows: np.ndarray,
        local_mask: "np.ndarray | None" = None,
        banks: "List[VcpuCounters] | None" = None,
    ) -> None:
        """Charge a horizon of quiet epochs in one go (2-node only).

        Arrays are ``(K, k)`` — epoch-major over the k VCPUs that ran —
        and ``acc0``/``acc1`` are the node-0/node-1 access components
        (``llc_misses * mix``) the per-epoch path would pass rowwise.
        ``local_mask``, when given, is the precomputed ``run_nodes ==
        0`` boolean vector.

        Bitwise contract with K successive :meth:`charge_epoch` calls:
        every per-bank scalar and node-matrix cell accumulates through
        a sequential ``cumsum`` seeded with its current value (numpy's
        accumulate is strictly left-to-right, so the final element
        equals the ``+=`` chain bit for bit) — all chains are
        per-column independent, so one packed ``(K+1, 7k)`` cumsum
        covers them — and the local/remote split reuses the scalar
        path's exact expressions (``row[0] + row[1]`` then ``row_sum -
        local``) elementwise.  Bank results are written back as Python
        floats.
        """
        if banks is None:
            counters = self._counters
            banks = [counters[key] for key in keys]
        matrix = self._node_matrix
        k = len(banks)
        if local_mask is None:
            local_mask = np.asarray(run_nodes) == 0
        local = np.where(local_mask, acc0, acc1)

        chain = np.empty((acc0.shape[0] + 1, 7 * k))
        # Seed through a Python list: scalar list stores are far
        # cheaper than per-element ndarray item assignment.
        start_l = [0.0] * (5 * k)
        for i, b in enumerate(banks):
            start_l[i] = b.instructions
            start_l[k + i] = b.llc_refs
            start_l[2 * k + i] = b.llc_misses
            start_l[3 * k + i] = b.local_accesses
            start_l[4 * k + i] = b.remote_accesses
        chain[0, : 5 * k] = start_l
        mrows = matrix[rows]
        chain[0, 5 * k : 6 * k] = mrows[:, 0]
        chain[0, 6 * k :] = mrows[:, 1]
        body = chain[1:]
        body[:, :k] = instructions
        body[:, k : 2 * k] = llc_refs
        body[:, 2 * k : 3 * k] = llc_misses
        body[:, 3 * k : 4 * k] = local
        body[:, 4 * k : 5 * k] = (acc0 + acc1) - local
        body[:, 5 * k : 6 * k] = acc0
        body[:, 6 * k :] = acc1
        tot = chain.cumsum(axis=0)[-1]
        mrows[:, 0] = tot[5 * k : 6 * k]
        mrows[:, 1] = tot[6 * k :]
        matrix[rows] = mrows
        vals = tot[: 5 * k].tolist()
        for i, bank in enumerate(banks):
            bank.instructions = vals[i]
            bank.llc_refs = vals[k + i]
            bank.llc_misses = vals[2 * k + i]
            bank.local_accesses = vals[3 * k + i]
            bank.remote_accesses = vals[4 * k + i]

    def batch_seed_into(
        self,
        banks: "List[VcpuCounters]",
        rows: np.ndarray,
        out: np.ndarray,
    ) -> None:
        """Seed a caller-owned packed chain row with bank totals.

        ``out`` is a length-``7*k`` view laid out as the column blocks
        of :meth:`charge_epoch_batch`'s chain: [instructions | refs |
        misses | local | remote | node-0 | node-1].  Splitting the
        seed/commit halves lets a batch engine append these blocks to
        its own packed chain and run one cumsum over everything; the
        per-column chains are unchanged, so the bitwise contract of
        :meth:`charge_epoch_batch` carries over block by block.
        """
        k = len(banks)
        start_l = [0.0] * (5 * k)
        for i, b in enumerate(banks):
            start_l[i] = b.instructions
            start_l[k + i] = b.llc_refs
            start_l[2 * k + i] = b.llc_misses
            start_l[3 * k + i] = b.local_accesses
            start_l[4 * k + i] = b.remote_accesses
        out[: 5 * k] = start_l
        mrows = self._node_matrix[rows]
        out[5 * k : 6 * k] = mrows[:, 0]
        out[6 * k :] = mrows[:, 1]

    def batch_commit(
        self,
        banks: "List[VcpuCounters]",
        rows: np.ndarray,
        tot: np.ndarray,
    ) -> None:
        """Write back packed chain totals (layout of batch_seed_into)."""
        k = len(banks)
        vals = tot[: 5 * k].tolist()
        for i, bank in enumerate(banks):
            bank.instructions = vals[i]
            bank.llc_refs = vals[k + i]
            bank.llc_misses = vals[2 * k + i]
            bank.local_accesses = vals[3 * k + i]
            bank.remote_accesses = vals[4 * k + i]
        mrows = np.empty((k, 2))
        mrows[:, 0] = tot[5 * k : 6 * k]
        mrows[:, 1] = tot[6 * k :]
        self._node_matrix[rows] = mrows

    # ------------------------------------------------------------------
    # Reading (called by schedulers; costs hypervisor time)
    # ------------------------------------------------------------------
    def record_collection(self, events: int = 1) -> float:
        """Account ``events`` counter collections; returns time cost (s).

        Called on context switches and 10 ms refreshes, mirroring the
        Perfctr-Xen update points described in §IV-B.
        """
        if events < 0:
            raise ValueError(f"events must be >= 0, got {events}")
        self._collection_events += events
        return events * self.collection_cost_s

    @property
    def collection_events(self) -> int:
        """Total counter-collection events so far."""
        return self._collection_events

    def totals(self, vcpu_key: int) -> VcpuCounters:
        """Cumulative counters for a VCPU (a defensive copy)."""
        return self._counters[vcpu_key].copy()

    def peek(self, vcpu_key: int) -> VcpuCounters:
        """The live cumulative bank for a VCPU, *no copy*.

        For read-only hot paths (the audit layer's per-epoch
        monotonicity checks) where :meth:`totals`'s defensive copy
        would dominate the cost.  Callers must not mutate the result.
        """
        return self._counters[vcpu_key]

    def peek_window_base(self, vcpu_key: int) -> VcpuCounters:
        """The live window-base bank for a VCPU, *no copy* (read-only)."""
        return self._window_base[vcpu_key]

    def window(self, vcpu_key: int) -> VcpuCounters:
        """Counters accumulated in the current sampling window."""
        return self._counters[vcpu_key].delta(self._window_base[vcpu_key])

    def end_window(self, vcpu_key: int) -> VcpuCounters:
        """Close the sampling window: return its delta and start a new one."""
        delta = self.window(vcpu_key)
        self._window_base[vcpu_key] = self._counters[vcpu_key].copy()
        return delta
