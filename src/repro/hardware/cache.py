"""Shared last-level-cache (LLC) model.

The paper's mechanisms revolve around LLC behaviour: vProbe classifies
VCPUs by *LLC access pressure* (references per kilo-instruction), its
partitioner balances LLC-hungry VCPUs across sockets, and its load
balancer avoids migrations that would break LLC-contention balance.
The model therefore has to capture three effects:

1. **Capacity sharing.**  Co-running VCPUs on one socket divide the LLC.
   We use demand-proportional occupancy with a water-filling step: each
   VCPU's share is proportional to its demand weight (working set times
   access intensity) but never exceeds its working set; slack from
   capped VCPUs is redistributed to the rest.  This is the classical
   analytic approximation for LRU-managed shared caches.

2. **Miss-rate curves.**  Each VCPU carries a curve mapping *resident
   fraction* of its working set to a miss rate, interpolating between a
   fully-cached floor and a thrashing ceiling.  The three paper
   categories fall out of the parameters: LLC-FR has a tiny working set
   (always resident, low misses), LLC-FI fits alone but degrades under
   contention, LLC-T misses heavily even alone.

3. **Migration cold start.**  A VCPU's occupancy on an LLC is scaled by
   a *warmth* in [0, 1] that charges toward 1 while it runs there and
   decays while it does not.  Cross-socket migration therefore costs a
   refill period of elevated misses — the reason frequent NUMA-blind
   migration hurts, and the effect vProbe's stable partitioning avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import AbstractSet, Dict, List, Mapping, Sequence, Tuple

from repro.util.validation import check_fraction, check_non_negative, check_positive

__all__ = ["CacheDemand", "CacheOccupancy", "LLCState", "CacheModel", "waterfill_shares"]


@dataclass(frozen=True, slots=True)
class CacheDemand:
    """A VCPU's instantaneous demand on a shared LLC.

    Attributes
    ----------
    working_set_bytes:
        Bytes the workload would keep resident if it had the LLC alone.
    intensity:
        Relative access intensity used as the occupancy weight; LLC
        references per cycle is a good proxy.  Dimensionless.
    min_miss_rate:
        Miss rate (fraction of LLC references that miss) when the whole
        working set is resident: compulsory + coherence misses.
    max_miss_rate:
        Miss rate when essentially none of the working set is resident.
    curve_shape:
        Exponent of the miss-rate curve; 1.0 is linear in the missing
        fraction, >1 makes the workload tolerant until most of its set
        is evicted (typical for loop-based numeric codes).
    """

    working_set_bytes: float
    intensity: float
    min_miss_rate: float
    max_miss_rate: float
    curve_shape: float = 1.0

    def __post_init__(self) -> None:
        check_non_negative(self.working_set_bytes, "working_set_bytes")
        check_non_negative(self.intensity, "intensity")
        check_fraction(self.min_miss_rate, "min_miss_rate")
        check_fraction(self.max_miss_rate, "max_miss_rate")
        check_positive(self.curve_shape, "curve_shape")
        if self.max_miss_rate < self.min_miss_rate:
            raise ValueError(
                "max_miss_rate must be >= min_miss_rate "
                f"({self.max_miss_rate} < {self.min_miss_rate})"
            )

    def miss_rate(self, resident_fraction: float) -> float:
        """Miss rate given the fraction of the working set resident."""
        f = min(1.0, max(0.0, resident_fraction))
        if self.curve_shape == 1.0:
            # pow(x, 1.0) == x exactly (IEEE 754), so the linear curve
            # can skip the libm call the hot loop pays for every ref.
            missing = 1.0 - f
        else:
            missing = (1.0 - f) ** self.curve_shape
        return self.min_miss_rate + (self.max_miss_rate - self.min_miss_rate) * missing


def waterfill_shares(
    capacity: float,
    weights: Sequence[float],
    caps: Sequence[float],
) -> List[float]:
    """Split ``capacity`` proportionally to ``weights``, capped per item.

    Items whose proportional share exceeds their cap are clamped to the
    cap and the slack is re-split among the remaining items, repeating
    until stable.  Runs in O(n^2) worst case, which is fine for the
    handful of cores per socket the simulator models.

    Parameters
    ----------
    capacity:
        Total resource (bytes of LLC).
    weights:
        Non-negative demand weights; zero-weight items receive nothing.
    caps:
        Per-item maximum useful allocation (the working set).

    Returns
    -------
    list of float
        Allocations, ``sum(alloc) <= capacity`` and ``alloc[i] <= caps[i]``.
    """
    check_non_negative(capacity, "capacity")
    if len(weights) != len(caps):
        raise ValueError("weights and caps must have equal length")
    n = len(weights)
    alloc = [0.0] * n
    active = [i for i in range(n) if weights[i] > 0 and caps[i] > 0]
    remaining = capacity
    while active and remaining > 1e-12:
        total_w = sum(weights[i] for i in active)
        if total_w <= 0:
            break
        capped: List[int] = []
        next_active: List[int] = []
        for i in active:
            proposed = alloc[i] + remaining * (weights[i] / total_w)
            if proposed >= caps[i] - 1e-12:
                capped.append(i)
            else:
                next_active.append(i)
        if capped:
            # Clamp the capped items, recompute slack, iterate on the rest.
            freed = 0.0
            for i in capped:
                freed += caps[i] - alloc[i]
                alloc[i] = caps[i]
            remaining -= freed
            active = next_active
        else:
            for i in active:
                alloc[i] += remaining * (weights[i] / total_w)
            remaining = 0.0
            break
    return alloc


@dataclass(slots=True)
class CacheOccupancy:
    """Result of a per-LLC contention solve for one epoch.

    Attributes
    ----------
    shares:
        Allocated LLC bytes per VCPU key.
    resident_fraction:
        Warmth-scaled resident fraction of each VCPU's working set.
    miss_rates:
        Effective miss rate per VCPU key.
    pressure:
        Sum of working sets over LLC capacity (>1 means oversubscribed).
    """

    shares: Dict[int, float]
    resident_fraction: Dict[int, float]
    miss_rates: Dict[int, float]
    pressure: float


class LLCState:
    """Per-LLC warmth tracking for migration cold-start modelling.

    ``warmth[vcpu]`` in [0, 1] is the fraction of the VCPU's *allocated*
    footprint already filled on this LLC.  It charges exponentially with
    time constant ``refill_time(working_set)`` while the VCPU runs here
    and decays with ``decay_time`` while it does not (other workloads
    evict its lines).
    """

    #: Bandwidth at which a working set refills into the LLC (bytes/s).
    #: ~4 GB/s of useful fill is a conservative fraction of IMC peak.
    FILL_BANDWIDTH = 4.0e9

    #: Time constant for eviction of an absent VCPU's lines (seconds).
    DECAY_TIME = 0.050

    #: Warmth below which an entry is dropped from the table.
    _EPSILON = 1e-3

    def __init__(self) -> None:
        self._warmth: Dict[int, float] = {}
        # Decay factor memo for the fixed-dt fast path (advance_compact):
        # exp(-dt / DECAY_TIME) is invariant while dt is.
        self._decay_dt: float | None = None
        self._decay_factor: float = 1.0

    def warmth(self, vcpu_key: int) -> float:
        """Current warmth of ``vcpu_key`` on this LLC (0 if never ran)."""
        return self._warmth.get(vcpu_key, 0.0)

    @property
    def warmth_table(self) -> Mapping[int, float]:
        """Live view of the warmth table, for hot-path readers.

        The returned mapping is the state's own table (not a copy) and
        stays valid across :meth:`advance` calls; treat it as read-only.
        """
        return self._warmth

    def advance(
        self,
        dt: float,
        running: Mapping[int, float],
    ) -> None:
        """Advance warmth by ``dt`` seconds.

        Parameters
        ----------
        dt:
            Epoch length in seconds.
        running:
            Map of vcpu_key -> working_set_bytes for VCPUs that ran on
            this LLC during the epoch.  All other tracked VCPUs decay.
        """
        check_non_negative(dt, "dt")
        decay = math.exp(-dt / self.DECAY_TIME) if dt > 0 else 1.0
        stale: List[int] = []
        for key, w in self._warmth.items():
            if key in running:
                continue
            w *= decay
            if w < self._EPSILON:
                stale.append(key)
            else:
                self._warmth[key] = w
        for key in stale:
            del self._warmth[key]
        for key, working_set in running.items():
            tau = max(1e-4, working_set / self.FILL_BANDWIDTH)
            current = self._warmth.get(key, 0.0)
            # Exponential charge toward 1 with time constant tau.
            self._warmth[key] = 1.0 - (1.0 - current) * math.exp(-dt / tau)

    def advance_compact(
        self,
        dt: float,
        keys: Sequence[int],
        charge_factors: Sequence[float],
        key_set: AbstractSet[int] | None = None,
    ) -> None:
        """Validation-free :meth:`advance` with precomputed charge factors.

        ``charge_factors[i]`` must equal
        ``exp(-dt / max(1e-4, working_set_bytes[i] / FILL_BANDWIDTH))``
        for the VCPU ``keys[i]`` that ran here during the epoch — the
        caller caches that per VCPU and refreshes it on phase change.
        ``key_set``, when given, must be ``set(keys)`` (callers with a
        stable running set pass a cached one).  Produces bitwise-
        identical warmth to :meth:`advance`.
        """
        if dt != self._decay_dt:
            self._decay_dt = dt
            self._decay_factor = math.exp(-dt / self.DECAY_TIME) if dt > 0 else 1.0
        decay = self._decay_factor
        warmth = self._warmth
        running = set(keys) if key_set is None else key_set
        stale: List[int] = []
        for key, w in warmth.items():
            if key in running:
                continue
            w *= decay
            if w < self._EPSILON:
                stale.append(key)
            else:
                warmth[key] = w
        for key in stale:
            del warmth[key]
        for key, charge in zip(keys, charge_factors):
            current = warmth.get(key, 0.0)
            warmth[key] = 1.0 - (1.0 - current) * charge

    def advance_compact_batch(
        self,
        dt: float,
        steps: int,
        keys: Sequence[int],
        final_warmth: Sequence[float],
        key_set: AbstractSet[int] | None = None,
    ) -> None:
        """Commit ``steps`` quiet epochs of warmth evolution at once.

        The caller (the batched engine) has already iterated the member
        charge recurrence ``w <- 1 - (1 - w) * charge`` ``steps`` times
        and passes the final values in ``final_warmth``; non-member keys
        decay through the same sequential per-epoch multiplies the
        per-epoch path performs.  The epsilon eviction check runs once
        at the end, which is state-equivalent: decay is monotone, so a
        key below the threshold at any interior epoch is below it at the
        end too, and nothing reads non-member warmth mid-batch.
        """
        if dt != self._decay_dt:
            self._decay_dt = dt
            self._decay_factor = math.exp(-dt / self.DECAY_TIME) if dt > 0 else 1.0
        decay = self._decay_factor
        warmth = self._warmth
        running = set(keys) if key_set is None else key_set
        stale: List[int] = []
        for key, w in warmth.items():
            if key in running:
                continue
            for _ in range(steps):
                w *= decay
            if w < self._EPSILON:
                stale.append(key)
            else:
                warmth[key] = w
        for key in stale:
            del warmth[key]
        for key, final in zip(keys, final_warmth):
            warmth[key] = final

    def evict(self, vcpu_key: int) -> None:
        """Forget a VCPU entirely (domain destroyed)."""
        self._warmth.pop(vcpu_key, None)

    def tracked(self) -> Tuple[int, ...]:
        """Keys currently holding non-zero warmth (sorted)."""
        return tuple(sorted(self._warmth))


class CacheModel:
    """Solves per-epoch LLC contention for one socket's LLC.

    One instance per NUMA node; holds that LLC's capacity and warmth
    state, and turns the set of co-running VCPU demands into per-VCPU
    miss rates.
    """

    def __init__(self, capacity_bytes: float) -> None:
        self.capacity_bytes = check_positive(capacity_bytes, "capacity_bytes")
        self.state = LLCState()

    def solve(
        self,
        demands: Mapping[int, CacheDemand],
    ) -> CacheOccupancy:
        """Compute occupancy and miss rates for co-running ``demands``.

        The warmth state is *not* advanced here; call :meth:`advance`
        after the epoch so that the solve reflects state at epoch start.
        """
        keys = sorted(demands)
        weights = []
        caps = []
        for k in keys:
            d = demands[k]
            weights.append(d.intensity * max(d.working_set_bytes, 1.0))
            caps.append(d.working_set_bytes)
        allocs = waterfill_shares(self.capacity_bytes, weights, caps)

        shares: Dict[int, float] = {}
        resident: Dict[int, float] = {}
        miss_rates: Dict[int, float] = {}
        total_ws = 0.0
        for k, alloc in zip(keys, allocs):
            d = demands[k]
            total_ws += d.working_set_bytes
            shares[k] = alloc
            if d.working_set_bytes <= 0:
                frac = 1.0
            else:
                frac = min(1.0, alloc / d.working_set_bytes) * self.state.warmth(k)
            resident[k] = frac
            miss_rates[k] = d.miss_rate(frac)
        pressure = total_ws / self.capacity_bytes if self.capacity_bytes else 0.0
        return CacheOccupancy(
            shares=shares,
            resident_fraction=resident,
            miss_rates=miss_rates,
            pressure=pressure,
        )

    def occupancy_shares(self, demands: Sequence[CacheDemand]) -> List[float]:
        """Waterfilled LLC allocations for a co-runner set.

        The allocations depend only on capacity and the demands — not on
        warmth — so callers with a stable co-runner set can compute them
        once and feed :meth:`miss_rates_from_shares` every epoch.
        """
        weights = []
        caps = []
        for d in demands:
            weights.append(d.intensity * max(d.working_set_bytes, 1.0))
            caps.append(d.working_set_bytes)
        return waterfill_shares(self.capacity_bytes, weights, caps)

    def miss_rates_from_shares(
        self,
        keys: Sequence[int],
        demands: Sequence[CacheDemand],
        allocs: Sequence[float],
    ) -> List[float]:
        """Per-VCPU miss rates given precomputed waterfill allocations.

        The per-epoch half of :meth:`solve_compact`: applies the current
        warmth to the cached allocations and evaluates each demand's
        miss-rate curve, in key order.
        """
        warmth = self.state.warmth
        rates: List[float] = []
        for key, d, alloc in zip(keys, demands, allocs):
            ws = d.working_set_bytes
            if ws <= 0:
                frac = 1.0
            else:
                frac = min(1.0, alloc / ws) * warmth(key)
            rates.append(d.miss_rate(frac))
        return rates

    def solve_compact(
        self,
        keys: Sequence[int],
        demands: Sequence[CacheDemand],
    ) -> List[float]:
        """Array-style :meth:`solve`: miss rates only, no result dicts.

        ``keys`` must be sorted ascending (the order :meth:`solve`
        iterates) with ``demands`` aligned.  Returns one miss rate per
        key, bitwise-identical to ``solve(...).miss_rates``.
        """
        allocs = self.occupancy_shares(demands)
        return self.miss_rates_from_shares(keys, demands, allocs)

    def advance(self, dt: float, demands: Mapping[int, CacheDemand]) -> None:
        """Advance warmth after an epoch in which ``demands`` ran here."""
        running = {k: d.working_set_bytes for k, d in demands.items()}
        self.state.advance(dt, running)

    def advance_compact(
        self,
        dt: float,
        keys: Sequence[int],
        charge_factors: Sequence[float],
        key_set: AbstractSet[int] | None = None,
    ) -> None:
        """Fast-path :meth:`advance`; see :meth:`LLCState.advance_compact`."""
        self.state.advance_compact(dt, keys, charge_factors, key_set)

    def advance_compact_batch(
        self,
        dt: float,
        steps: int,
        keys: Sequence[int],
        final_warmth: Sequence[float],
        key_set: AbstractSet[int] | None = None,
    ) -> None:
        """Batched advance; see :meth:`LLCState.advance_compact_batch`."""
        self.state.advance_compact_batch(dt, steps, keys, final_warmth, key_set)
