"""Memory-system model: DRAM latencies, IMC queueing, QPI contention.

Captures the three NUMA performance-degrading factors the paper lists
in §II-A:

* **remote memory access latency** — a remote miss pays the QPI hop on
  top of DRAM access;
* **memory controller contention** — each node's IMC is a queueing
  resource; latency inflates as its utilisation approaches 1;
* **interconnect link contention** — cross-socket traffic shares the
  QPI links, with the same utilisation-driven inflation.

The model is analytic: per epoch the simulator aggregates each VCPU's
miss traffic onto the IMCs/links indicated by its page placement, and
the resulting utilisations inflate the base latencies through an
M/M/1-style factor ``1 / (1 - rho)`` capped to keep overload finite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Sequence

import numpy as np

from repro.hardware.topology import NUMATopology
from repro.util.validation import check_non_negative, check_positive

__all__ = ["LatencySpec", "MemoryCosts", "MemorySystem", "queue_inflation"]

#: Cache-line size in bytes.
LINE_BYTES = 64

#: DRAM traffic per LLC miss.  Each demand miss moves one 64 B line,
#: but hardware prefetch and dirty write-backs add roughly another
#: half line of traffic per miss on streaming workloads.
BYTES_PER_MISS = 96


@dataclass(frozen=True, slots=True)
class LatencySpec:
    """Base (uncontended) access latencies, in nanoseconds.

    Defaults approximate the paper's Westmere-EP host: ~35-cycle LLC
    hits, ~70 ns local DRAM, and a remote hop adding ~50 ns (a NUMA
    factor of ~1.7 uncontended, matching measured Westmere-EP numbers).
    """

    llc_hit_ns: float = 14.0
    local_dram_ns: float = 70.0
    remote_extra_ns: float = 50.0

    def __post_init__(self) -> None:
        check_positive(self.llc_hit_ns, "llc_hit_ns")
        check_positive(self.local_dram_ns, "local_dram_ns")
        check_non_negative(self.remote_extra_ns, "remote_extra_ns")

    def remote_dram_ns(self) -> float:
        """Uncontended remote DRAM latency."""
        return self.local_dram_ns + self.remote_extra_ns


def queue_inflation(utilisation: float, cap: float = 8.0) -> float:
    """M/M/1-style latency inflation ``1 / (1 - rho)``, capped.

    Parameters
    ----------
    utilisation:
        Offered load over capacity; values >= 1 saturate at ``cap``.
    cap:
        Maximum inflation factor (keeps overloaded systems finite; the
        real machine throttles issue rather than queueing unboundedly).
    """
    check_non_negative(utilisation, "utilisation")
    check_positive(cap, "cap")
    if utilisation >= 1.0 - 1.0 / cap:
        return cap
    return 1.0 / (1.0 - utilisation)


@dataclass(slots=True)
class MemoryCosts:
    """Per-epoch memory cost solve result.

    Attributes
    ----------
    miss_penalty_ns:
        Average post-LLC penalty per miss for each VCPU key, including
        queueing inflation, weighted over its local/remote access mix.
    imc_utilisation:
        Offered-load utilisation per node id.
    qpi_utilisation:
        Offered-load utilisation of the interconnect (aggregate).
    local_fraction:
        Fraction of each VCPU's misses served from its current node.
    """

    miss_penalty_ns: Dict[int, float] = field(default_factory=dict)
    imc_utilisation: Dict[int, float] = field(default_factory=dict)
    qpi_utilisation: float = 0.0
    local_fraction: Dict[int, float] = field(default_factory=dict)


class MemorySystem:
    """Aggregates miss traffic and prices each VCPU's average miss.

    Parameters
    ----------
    topology:
        The machine; provides per-node IMC bandwidths and QPI bandwidth.
    latency:
        Base latency figures.
    """

    def __init__(self, topology: NUMATopology, latency: LatencySpec | None = None) -> None:
        self.topology = topology
        self.latency = latency or LatencySpec()
        #: (3, 1) IMC-0/IMC-1/QPI bandwidth column for the batched
        #: solve, built lazily on first use (2-node hosts only).
        self._link_caps: "np.ndarray | None" = None

    def solve(
        self,
        miss_rate_bytes_per_s: Mapping[int, float],
        run_node: Mapping[int, int],
        page_mix: Mapping[int, Sequence[float]],
    ) -> MemoryCosts:
        """Price one epoch's misses.

        Parameters
        ----------
        miss_rate_bytes_per_s:
            Per-VCPU demanded miss traffic (bytes/second) for the epoch,
            computed from miss rate x reference rate x line size.
        run_node:
            Node each VCPU ran on during the epoch.
        page_mix:
            Per-VCPU probability vector over nodes describing where its
            accessed pages live; ``page_mix[v][n]`` is the fraction of
            misses served by node ``n``'s DRAM.

        Returns
        -------
        MemoryCosts
            Average per-miss penalties and resource utilisations.
        """
        num_nodes = self.topology.num_nodes
        imc_traffic = np.zeros(num_nodes)
        qpi_traffic = 0.0

        for key, traffic in miss_rate_bytes_per_s.items():
            check_non_negative(traffic, f"traffic[{key}]")
            mix = page_mix[key]
            if len(mix) != num_nodes:
                raise ValueError(
                    f"page_mix[{key}] has {len(mix)} entries, expected {num_nodes}"
                )
            node = run_node[key]
            for target, frac in enumerate(mix):
                flow = traffic * frac
                imc_traffic[target] += flow
                if target != node:
                    qpi_traffic += flow

        imc_util: Dict[int, float] = {}
        imc_factor: Dict[int, float] = {}
        for n, spec in enumerate(self.topology.nodes):
            rho = float(imc_traffic[n] / spec.imc_bandwidth)
            imc_util[n] = rho
            imc_factor[n] = queue_inflation(rho)
        qpi_rho = float(qpi_traffic / self.topology.qpi_bandwidth)
        qpi_factor = queue_inflation(qpi_rho)

        penalties: Dict[int, float] = {}
        local_frac: Dict[int, float] = {}
        lat = self.latency
        for key in miss_rate_bytes_per_s:
            node = run_node[key]
            mix = page_mix[key]
            penalty = 0.0
            local = 0.0
            for target, frac in enumerate(mix):
                if frac <= 0:
                    continue
                dram = lat.local_dram_ns * imc_factor[target]
                if target == node:
                    local += frac
                    penalty += frac * dram
                else:
                    penalty += frac * (dram + lat.remote_extra_ns * qpi_factor)
            penalties[key] = penalty
            local_frac[key] = local

        return MemoryCosts(
            miss_penalty_ns=penalties,
            imc_utilisation=imc_util,
            qpi_utilisation=qpi_rho,
            local_fraction=local_frac,
        )

    def solve_compact(
        self,
        traffic: "np.ndarray | Sequence[float]",
        run_node: Sequence[int],
        page_mix: "np.ndarray | Sequence[Sequence[float]]",
    ) -> List[float]:
        """Array-style :meth:`solve`: per-VCPU penalties only.

        Parameters are positional arrays over the k running VCPUs:
        ``traffic`` of shape ``(k,)``, ``run_node`` of length k and
        ``page_mix`` of shape ``(k, num_nodes)``; ndarrays and plain
        (nested) lists are both accepted.  Skips validation and the
        utilisation/local-fraction dicts, but accumulates traffic and
        penalties in the same sequential order as :meth:`solve`, so the
        returned penalties are bitwise-identical.
        """
        num_nodes = self.topology.num_nodes
        traffic_l = traffic.tolist() if isinstance(traffic, np.ndarray) else traffic
        mix_l = page_mix.tolist() if isinstance(page_mix, np.ndarray) else page_mix
        k = len(traffic_l)
        if num_nodes == 2:
            return self._solve_compact_2node(traffic_l, run_node, mix_l, k)
        imc_traffic = [0.0] * num_nodes
        qpi_traffic = 0.0
        for i in range(k):
            t = traffic_l[i]
            mix = mix_l[i]
            node = run_node[i]
            for target in range(num_nodes):
                flow = t * mix[target]
                imc_traffic[target] += flow
                if target != node:
                    qpi_traffic += flow

        # queue_inflation() with the default cap, minus the validation.
        cap = 8.0
        knee = 1.0 - 1.0 / cap
        imc_factor = [0.0] * num_nodes
        for n, spec in enumerate(self.topology.nodes):
            rho = imc_traffic[n] / spec.imc_bandwidth
            imc_factor[n] = cap if rho >= knee else 1.0 / (1.0 - rho)
        qpi_rho = qpi_traffic / self.topology.qpi_bandwidth
        qpi_factor = cap if qpi_rho >= knee else 1.0 / (1.0 - qpi_rho)

        lat = self.latency
        local_dram = lat.local_dram_ns
        remote_extra = lat.remote_extra_ns
        penalties = [0.0] * k
        for i in range(k):
            mix = mix_l[i]
            node = run_node[i]
            penalty = 0.0
            for target in range(num_nodes):
                frac = mix[target]
                if frac <= 0:
                    continue
                dram = local_dram * imc_factor[target]
                if target == node:
                    penalty += frac * dram
                else:
                    penalty += frac * (dram + remote_extra * qpi_factor)
            penalties[i] = penalty
        return penalties

    def _solve_compact_2node(
        self,
        traffic_l: Sequence[float],
        run_node: Sequence[int],
        mix_l: Sequence[Sequence[float]],
        k: int,
    ) -> List[float]:
        """Two-socket :meth:`solve_compact`, loops unrolled.

        The dual-socket host of the paper is the overwhelmingly common
        topology, so the per-target inner loops are flattened.  Each
        accumulation happens in the reference's exact order (per VCPU:
        node 0's flow, then node 1's), so results stay bitwise equal.
        """
        imc0 = 0.0
        imc1 = 0.0
        qpi_traffic = 0.0
        for i in range(k):
            t = traffic_l[i]
            mix = mix_l[i]
            flow0 = t * mix[0]
            flow1 = t * mix[1]
            imc0 += flow0
            imc1 += flow1
            if run_node[i] == 0:
                qpi_traffic += flow1
            else:
                qpi_traffic += flow0

        cap = 8.0
        knee = 1.0 - 1.0 / cap
        nodes = self.topology.nodes
        rho0 = imc0 / nodes[0].imc_bandwidth
        rho1 = imc1 / nodes[1].imc_bandwidth
        factor0 = cap if rho0 >= knee else 1.0 / (1.0 - rho0)
        factor1 = cap if rho1 >= knee else 1.0 / (1.0 - rho1)
        qpi_rho = qpi_traffic / self.topology.qpi_bandwidth
        qpi_factor = cap if qpi_rho >= knee else 1.0 / (1.0 - qpi_rho)

        lat = self.latency
        # Hoisted per-node DRAM latencies and the remote adder: the same
        # products the reference computes inside its per-VCPU loop.
        dram0 = lat.local_dram_ns * factor0
        dram1 = lat.local_dram_ns * factor1
        remote_add = lat.remote_extra_ns * qpi_factor
        penalties = [0.0] * k
        for i in range(k):
            mix = mix_l[i]
            local = run_node[i] == 0
            penalty = 0.0
            frac = mix[0]
            if frac > 0:
                penalty += frac * dram0 if local else frac * (dram0 + remote_add)
            frac = mix[1]
            if frac > 0:
                penalty += frac * (dram1 + remote_add) if local else frac * dram1
            penalties[i] = penalty
        return penalties

    def solve_compact_batch(
        self,
        traffic: np.ndarray,
        run_node: Sequence[int],
        mix0: np.ndarray,
        mix1: np.ndarray,
        local_mask: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """Batched 2-node :meth:`solve_compact` over a horizon of epochs.

        ``traffic``, ``mix0`` and ``mix1`` are ``(K, k)`` arrays — one
        row per quiet epoch, one column per running VCPU — and
        ``run_node`` is the per-VCPU node (constant across the batch by
        construction: no migrations happen inside a horizon).
        ``local_mask``, when given, is the precomputed ``run_node == 0``
        boolean vector.  Returns the ``(K, k)`` per-miss penalties.

        Bitwise contract: every per-epoch row reproduces
        :meth:`_solve_compact_2node` exactly.  The IMC/QPI totals are
        left-to-right ``cumsum`` reductions (numpy's accumulate is
        strictly sequential, and ``0.0 + x == x``), the utilisation
        ratios and inflation factors are elementwise (stacking the
        three links changes nothing per element), and each VCPU's
        penalty is the same two-term sum the scalar path produces (its
        conditional ``frac > 0`` skips add exact zeros, so dropping
        them is a bitwise no-op for these non-negative terms).
        """
        if local_mask is None:
            local_mask = np.asarray(run_node) == 0
        caps = self._link_caps
        if caps is None:
            nodes = self.topology.nodes
            caps = np.array(
                [
                    [nodes[0].imc_bandwidth],
                    [nodes[1].imc_bandwidth],
                    [self.topology.qpi_bandwidth],
                ]
            )
            self._link_caps = caps

        K, k = traffic.shape
        flows = np.empty((3, K, k))
        np.multiply(traffic, mix0, out=flows[0])
        np.multiply(traffic, mix1, out=flows[1])
        # Cross-socket flow: traffic * (the remote half of the mix).
        # Selecting the mix before multiplying is elementwise identical
        # to selecting between the two products.
        np.multiply(
            traffic, np.where(local_mask, mix1, mix0), out=flows[2]
        )
        totals = flows.cumsum(axis=2)[:, :, -1]

        cap = 8.0
        knee = 1.0 - 1.0 / cap
        rho = totals / caps
        # Clipping at the knee before inverting reproduces the scalar
        # branch exactly: below it, 1/(1-rho) is untouched; at or above
        # it, 1/(1-knee) is exactly ``cap`` (0.875 and 0.125 are exact
        # binary fractions), with no out-of-domain division.
        factor = 1.0 / (1.0 - np.minimum(rho, knee))

        lat = self.latency
        dram0 = lat.local_dram_ns * factor[0]
        dram1 = lat.local_dram_ns * factor[1]
        remote_add = lat.remote_extra_ns * factor[2]
        cost0 = np.where(
            local_mask, dram0[:, None], (dram0 + remote_add)[:, None]
        )
        cost1 = np.where(
            local_mask, (dram1 + remote_add)[:, None], dram1[:, None]
        )
        return mix0 * cost0 + mix1 * cost1

    def traffic_for(
        self,
        refs_per_s: float,
        miss_rate: float,
    ) -> float:
        """Demanded DRAM traffic for an LLC reference stream (bytes/s),
        including the prefetch/write-back overhead per miss."""
        check_non_negative(refs_per_s, "refs_per_s")
        check_non_negative(miss_rate, "miss_rate")
        return refs_per_s * miss_rate * BYTES_PER_MISS
