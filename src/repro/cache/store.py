"""The on-disk, content-addressed result cache.

Layout: ``<root>/<key[:2]>/<key>.json`` — one canonical-JSON entry per
key, sharded by the first hash byte so no directory grows unbounded.
Every entry embeds the cache schema, the writing package version and a
small human-readable ``meta`` block next to the serialized summary, so
``repro cache stats`` and ``prune`` can reason about a cache directory
without re-deriving any keys.

Concurrency and corruption, the two ways a shared cache dies, are both
handled at the write/read boundary:

* **writes are atomic** — the entry is written to a uniquely-named temp
  file in the destination directory and ``os.replace``d into place, so
  a reader never observes a torn entry and two processes racing on the
  same key both succeed (last writer wins with identical bytes, since
  entries are deterministic functions of the key);
* **reads are defensive** — a missing, truncated, garbage or
  wrong-schema entry is a *miss*, counted and then overwritten by the
  fresh run's ``put``.  The cache can therefore never poison a result:
  the worst failure mode is doing the work again.

A cache failure must never fail an experiment: ``put`` swallows OS
errors (full disk, read-only dir) and reports ``False`` instead of
raising.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.cache.keys import CACHE_SCHEMA
from repro.cache.serialize import summary_from_payload, summary_to_payload
from repro.metrics.collectors import RunSummary
from repro.obs.manifest import canonical_dumps

__all__ = ["ENV_CACHE_DIR", "CacheStats", "ResultCache", "resolve_cache"]

#: Environment variable naming the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Errors that turn a stored entry into a miss instead of a crash.
_ENTRY_ERRORS = (
    OSError,
    ValueError,  # includes json.JSONDecodeError
    KeyError,
    TypeError,
    AttributeError,
)


@dataclass(frozen=True, slots=True)
class CacheStats:
    """One scan of a cache directory."""

    entries: int  #: readable entries at the current schema/version
    stale: int  #: readable entries written by another schema/version
    corrupt: int  #: unreadable entries (truncated/garbage)
    total_bytes: int  #: bytes across all entry files

    def format(self) -> str:
        """One human line, ``repro cache stats`` style."""
        return (
            f"{self.entries} entries ({self.total_bytes / 1024:.1f} KiB)"
            f", {self.stale} stale, {self.corrupt} corrupt"
        )


class ResultCache:
    """Content-addressed store of serialized :class:`RunSummary` values.

    Hit/miss/store counters accumulate over the cache object's lifetime
    (a whole ``repro report`` invocation shares one instance), so the
    CLI can print a single honest summary line at the end.
    """

    def __init__(self, root: pathlib.Path) -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    # The hot path
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> pathlib.Path:
        """Where a key's entry lives (whether or not it exists)."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[RunSummary]:
        """The cached summary for ``key``, or ``None`` (counted) on miss."""
        try:
            entry = json.loads(self.path_for(key).read_bytes())
            if entry.get("schema") != CACHE_SCHEMA:
                raise ValueError(f"wrong cache schema: {entry.get('schema')!r}")
            summary = summary_from_payload(entry["summary"])
        except _ENTRY_ERRORS:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(
        self,
        key: str,
        summary: RunSummary,
        meta: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Store ``summary`` under ``key`` atomically; False on failure."""
        from repro import __version__

        entry = {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "key": key,
            "meta": meta or {},
            "summary": summary_to_payload(summary),
        }
        try:
            text = canonical_dumps(entry)
        except (TypeError, ValueError):
            return False  # non-finite float or unserializable: uncacheable
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self.stores += 1
        return True

    # ------------------------------------------------------------------
    # Maintenance (``repro cache stats|prune|clear``)
    # ------------------------------------------------------------------
    def _entry_files(self) -> Iterator[pathlib.Path]:
        yield from sorted(self.root.glob("??/*.json"))

    def _classify(self, path: pathlib.Path) -> str:
        """``"ok"``, ``"stale"`` or ``"corrupt"`` for one entry file."""
        from repro import __version__

        try:
            entry = json.loads(path.read_bytes())
            if (
                entry.get("schema") != CACHE_SCHEMA
                or entry.get("version") != __version__
            ):
                return "stale"
            summary_from_payload(entry["summary"])
        except _ENTRY_ERRORS:
            return "corrupt"
        return "ok"

    def scan(self) -> CacheStats:
        """Walk every entry and classify it."""
        entries = stale = corrupt = total_bytes = 0
        for path in self._entry_files():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            kind = self._classify(path)
            if kind == "ok":
                entries += 1
            elif kind == "stale":
                stale += 1
            else:
                corrupt += 1
        return CacheStats(
            entries=entries, stale=stale, corrupt=corrupt, total_bytes=total_bytes
        )

    def prune(self) -> Tuple[int, int]:
        """Delete stale and corrupt entries; returns ``(stale, corrupt)``."""
        stale = corrupt = 0
        for path in self._entry_files():
            kind = self._classify(path)
            if kind == "ok":
                continue
            try:
                path.unlink()
            except OSError:
                continue
            if kind == "stale":
                stale += 1
            else:
                corrupt += 1
        return stale, corrupt

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed


def resolve_cache(
    cache_dir: Optional[pathlib.Path] = None, no_cache: bool = False
) -> Optional[ResultCache]:
    """The CLI's cache-selection policy, in one place.

    ``--no-cache`` beats everything; an explicit ``--cache-dir`` beats
    the ``REPRO_CACHE_DIR`` environment variable; with neither set the
    cache is off — the default pipeline is bitwise the uncached one.
    """
    if no_cache:
        return None
    root = cache_dir or os.environ.get(ENV_CACHE_DIR)
    if not root:
        return None
    return ResultCache(pathlib.Path(root))
