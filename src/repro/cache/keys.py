"""Content-addressed keys for the result cache.

A cache key must capture *everything that can change a run's summary*
and nothing else.  Four inputs define a grid cell's result:

1. the **scenario builder** — which workload topology gets built, and
   with which bound arguments (``partial(spec_scenario, "soplex")``);
2. the **scheduler name** — resolved by
   :func:`repro.experiments.scenarios.make_scheduler`;
3. the **config** — ``work_scale`` (a builder-level knob) plus the
   result-defining :class:`~repro.xen.simulator.SimConfig` subset
   already hashed by :func:`repro.obs.manifest.config_hash` (seed,
   periods, latencies, fault plan, epoch cap; *not* engine/logging/
   label, which are proven result-neutral);
4. a **version stamp** — the cache schema plus the package version, so
   entries written by older code self-invalidate by never being looked
   up (and ``repro cache prune`` can sweep them).

Builder identity is derived structurally: :func:`builder_fingerprint`
unwraps ``functools.partial`` layers down to a module-level function
and renders ``module.qualname(bound args)``.  Anything it cannot prove
stable — lambdas, closures, bound methods, non-primitive bound
arguments — returns ``None``, and callers must then *bypass* the cache
for that cell rather than risk a false hit.  Every builder the figure
and table modules use is fingerprintable.
"""

from __future__ import annotations

import hashlib
import sys
from functools import partial
from typing import TYPE_CHECKING, Optional

from repro.obs.manifest import canonical_dumps, config_hash, fault_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.scenarios import ScenarioConfig

__all__ = [
    "CACHE_SCHEMA",
    "builder_fingerprint",
    "result_key",
    "scenario_key",
]

#: Cache entry/key schema identifier (bump on any breaking layout change;
#: bumping it orphans every existing entry, which is the point).
CACHE_SCHEMA = "repro.cache/v1"

#: Bound-argument types whose ``repr`` is stable across processes.
_PRIMITIVE = (str, int, float, bool, type(None))


def builder_fingerprint(builder: object) -> Optional[str]:
    """A stable identity string for a scenario builder, or ``None``.

    Unwraps ``functools.partial`` layers and requires the base callable
    to be a function reachable at module top level under its own name —
    the property that guarantees two processes (or two sessions)
    resolving the same string get the same code path.  Bound arguments
    must be primitives so their ``repr`` is canonical.
    """
    fn = builder
    bound: list[str] = []
    while isinstance(fn, partial):
        for arg in fn.args:
            if not isinstance(arg, _PRIMITIVE):
                return None
            bound.append(repr(arg))
        for kw, value in sorted(fn.keywords.items()):
            if not isinstance(value, _PRIMITIVE):
                return None
            bound.append(f"{kw}={value!r}")
        fn = fn.func
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname or "." in qualname:
        return None  # lambda, closure, or nested definition
    mod = sys.modules.get(module)
    if mod is None or getattr(mod, qualname, None) is not fn:
        return None  # not importable under its advertised name
    return f"{module}.{qualname}({', '.join(bound)})"


def scenario_key(builder_id: str, scheduler_id: str, cfg: "ScenarioConfig") -> str:
    """SHA-256 cache key from an explicit builder/scheduler identity.

    The low-level entry point: callers that construct policies directly
    (the ablation variants) pass a self-chosen ``scheduler_id`` that
    uniquely names the construction.  ``result_key`` derives
    ``builder_id`` automatically for the common builder/scheduler-name
    path.
    """
    from repro import __version__

    payload = {
        "schema": CACHE_SCHEMA,
        "version": __version__,
        "builder": builder_id,
        "scheduler": scheduler_id,
        "work_scale": cfg.work_scale,
        "config_hash": config_hash(cfg.sim_config()),
        "faults": fault_fingerprint(cfg.faults),
    }
    return hashlib.sha256(canonical_dumps(payload).encode("utf-8")).hexdigest()


def result_key(
    builder: object, scheduler: str, cfg: "ScenarioConfig"
) -> Optional[str]:
    """Cache key for one (builder, scheduler, config) grid cell.

    Returns ``None`` when the builder has no provable identity, in
    which case the cell must run uncached.
    """
    builder_id = builder_fingerprint(builder)
    if builder_id is None:
        return None
    return scenario_key(builder_id, scheduler, cfg)
