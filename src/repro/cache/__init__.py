"""Content-addressed result cache for experiment grid cells.

Every figure and table in the evaluation is a grid of deterministic
(builder, scheduler, config) cells, so a cell's :class:`RunSummary` is
a pure function of its identity — which means it can be computed once,
stored under a content-addressed key, and served from disk forever
after.  A warm ``repro report`` resolves every cell in the parent
process with zero simulation, zero pickling and zero executor traffic.

The pieces:

* :mod:`repro.cache.keys` — the key: SHA-256 over builder identity,
  scheduler, result-defining config hash, fault-plan fingerprint and a
  schema+version stamp (stale entries self-invalidate);
* :mod:`repro.cache.serialize` — exact canonical-JSON round-trip of
  :class:`~repro.metrics.collectors.RunSummary`;
* :mod:`repro.cache.store` — the sharded on-disk store: atomic writes
  (temp file + rename), corrupted entries read as misses, hit/miss
  accounting for the CLI summary line.

Enable it with ``--cache-dir DIR`` on ``repro compare`` / ``repro
report``, or globally via ``REPRO_CACHE_DIR``; ``--no-cache`` forces
the bitwise-identical uncached path.  ``repro cache stats|prune|clear``
maintains a cache directory.
"""

from repro.cache.keys import (
    CACHE_SCHEMA,
    builder_fingerprint,
    result_key,
    scenario_key,
)
from repro.cache.serialize import summary_from_payload, summary_to_payload
from repro.cache.store import ENV_CACHE_DIR, CacheStats, ResultCache, resolve_cache

__all__ = [
    "CACHE_SCHEMA",
    "ENV_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "builder_fingerprint",
    "resolve_cache",
    "result_key",
    "scenario_key",
    "summary_from_payload",
    "summary_to_payload",
]
