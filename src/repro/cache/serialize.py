"""Round-trip a :class:`~repro.metrics.collectors.RunSummary` through JSON.

The cache stores the *exact* canonical-JSON form that
``RunSummary.to_dict(include_profile=True)`` produces — the same
serialization the JSONL traces and JSON reports use — so a cache hit
reconstructs a summary that is equal field-for-field to the fresh run
(floats survive JSON bit-exactly via ``repr`` round-tripping) and a
report rendered from cached summaries is byte-identical to one
rendered from fresh runs.

Deserialization is strict: every field the dataclasses require must be
present with a sane shape, and any :class:`KeyError` / ``TypeError``
escaping :func:`summary_from_payload` makes the store treat the entry
as corrupt (a miss), never as a partial result.  Derived keys that
``to_dict`` adds for human consumers (``total_accesses``,
``remote_ratio``, ``total_events``, ``mean_us``, ...) are properties on
the dataclasses and are deliberately ignored on the way back in.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.faults.injector import FaultStats
from repro.metrics.collectors import DomainStats, MachineStats, RunSummary
from repro.obs.profiler import PhaseStat

__all__ = ["summary_to_payload", "summary_from_payload"]

_DOMAIN_FIELDS = (
    "name",
    "num_vcpus",
    "mean_finish_time_s",
    "instructions",
    "llc_refs",
    "llc_misses",
    "local_accesses",
    "remote_accesses",
    "migrations",
    "cross_node_migrations",
)

_MACHINE_FIELDS = (
    "sim_time_s",
    "busy_time_s",
    "context_switches",
    "migrations",
    "cross_node_migrations",
    "steals_local",
    "steals_remote",
)

_FAULT_FIELDS = (
    "samples_dropped",
    "samples_noisy",
    "windows_saturated",
    "stalls_injected",
    "domain_crashes",
)


def summary_to_payload(summary: RunSummary) -> Dict[str, Any]:
    """The cacheable JSON form (profile included: hits must replay it)."""
    return summary.to_dict(include_profile=True)


def _domain_from(payload: Dict[str, Any]) -> DomainStats:
    return DomainStats(**{f: payload[f] for f in _DOMAIN_FIELDS})


def _machine_from(payload: Dict[str, Any]) -> MachineStats:
    kwargs = {f: payload[f] for f in _MACHINE_FIELDS}
    return MachineStats(overhead_s=dict(payload["overhead_s"]), **kwargs)


def _faults_from(payload: Optional[Dict[str, Any]]) -> Optional[FaultStats]:
    if payload is None:
        return None
    return FaultStats(**{f: payload[f] for f in _FAULT_FIELDS})


def _profile_from(
    payload: Optional[Dict[str, Any]],
) -> Optional[Dict[str, PhaseStat]]:
    if payload is None:
        return None
    return {
        phase: PhaseStat(
            phase=stat["phase"], calls=stat["calls"], wall_s=stat["wall_s"]
        )
        for phase, stat in payload.items()
    }


def summary_from_payload(payload: Dict[str, Any]) -> RunSummary:
    """Rebuild a :class:`RunSummary` from its ``to_dict`` form.

    Raises :class:`KeyError`/``TypeError`` on any structural mismatch;
    the store maps those to a cache miss.
    """
    return RunSummary(
        policy=payload["policy"],
        machine_stats=_machine_from(payload["machine_stats"]),
        domains={
            name: _domain_from(d) for name, d in payload["domains"].items()
        },
        fault_stats=_faults_from(payload["fault_stats"]),
        phase_profile=_profile_from(payload.get("phase_profile")),
        horizon_stats=payload.get("horizon_stats"),
    )
