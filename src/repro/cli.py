"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``compare``
    Run one workload under several schedulers and print the comparison::

        python -m repro compare soplex --schedulers credit vprobe lb
        python -m repro compare sp --work-scale 0.3 --seed 7
        python -m repro compare mcf --faults chaos --schedulers credit vprobe vprobe-h

``solo``
    The §IV-A calibration run for one application (miss rate, RPTI,
    class)::

        python -m repro solo libquantum

``report``
    Regenerate every table/figure into a directory (same as
    ``python -m repro.experiments.report_all``)::

        python -m repro report results/ --fast

``trace``
    Run one workload and export the full JSONL trace (manifest, event
    stream, window snapshots, end-of-run summary) plus the scheduler
    phase profile::

        python -m repro trace soplex --out run.jsonl
        python -m repro trace mcf --out run.jsonl --scheduler vprobe --engine reference

``validate``
    Check trace files (``.jsonl``) and report files (``.json``)
    against the shipped schemas; exits non-zero on any error::

        python -m repro validate run.jsonl compare.json

``audit``
    Fuzz the engine-parity contract: seeded random scenarios run under
    all three engines with every runtime invariant enabled, summaries
    diffed, metamorphic relations checked, failures shrunk to minimal
    pytest repros; exits non-zero on any finding::

        python -m repro audit --seeds 25
        python -m repro audit --seeds 5 --budget 120 --out audit.json

``bench``
    Re-run the committed benchmark suites and rewrite their
    ``benchmarks/BENCH_*.json`` records (requires a source checkout)::

        python -m repro bench
        python -m repro bench --suite engine

``cache``
    Inspect or maintain a result-cache directory (``--cache-dir`` or
    ``$REPRO_CACHE_DIR``)::

        python -m repro cache stats --cache-dir .repro-cache
        python -m repro cache prune
        python -m repro cache clear

``checkpoint``
    Inspect simulation checkpoint files (``.ckpt``) written by an
    interrupted run; validates schema, version and payload digest the
    same way ``validate`` checks traces and reports::

        python -m repro checkpoint inspect results/checkpoints/*.ckpt

Recovery
--------
``report`` journals per-cell outcomes to ``<outdir>/journal.jsonl``
and exits with code 75 on SIGINT/SIGTERM after flushing it (and
checkpointing any in-flight serial cell); rerunning with ``--resume``
recomputes nothing that already finished.  ``--deadline S`` quarantines
pathological cells instead of failing the report.

Caching
-------
``compare`` and ``report`` accept ``--cache-dir DIR`` (or the
``REPRO_CACHE_DIR`` environment variable) to serve previously computed
cells from a content-addressed on-disk cache; ``--no-cache`` disables
it even when the variable is set.  With neither given, nothing is
cached and results are bitwise those of the original pipeline.
"""

from __future__ import annotations

import argparse
import pathlib
from functools import partial
from typing import List, Optional

from repro.core.classify import Bounds, classify
from repro.experiments import (
    ScenarioConfig,
    compare,
    npb_scenario,
    solo_scenario,
    spec_scenario,
)
from repro.experiments.runner import run_one
from repro.experiments.scenarios import SCHEDULER_NAMES
from repro.faults.plan import FAULT_PRESETS, fault_preset
from repro.metrics.report import format_table, improvement_pct
from repro.workloads.suites import NPB_PROFILES, profile_names

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="vProbe (CLUSTER 2016) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    cmp_p = sub.add_parser("compare", help="compare schedulers on a workload")
    cmp_p.add_argument("app", help=f"one of: {', '.join(profile_names())}")
    cmp_p.add_argument(
        "--schedulers",
        nargs="+",
        default=["credit", "vprobe"],
        choices=list(SCHEDULER_NAMES) + ["vprobe-h"],
        help="schedulers to run (paired seeds)",
    )
    cmp_p.add_argument("--work-scale", type=float, default=0.15)
    cmp_p.add_argument("--seed", type=int, default=0)
    cmp_p.add_argument(
        "--faults",
        choices=sorted(FAULT_PRESETS),
        default=None,
        metavar="PRESET",
        help=(
            "inject a named fault preset into every run "
            f"(one of: {', '.join(sorted(FAULT_PRESETS))})"
        ),
    )
    cmp_p.add_argument(
        "--sample-period", type=float, default=1.0, help="vProbe sampling period (s)"
    )
    cmp_p.add_argument(
        "--engine",
        default="stacked",
        choices=["stacked", "batched", "vector", "reference"],
        help="simulator engine (results are bitwise-identical across all "
        "of them; 'stacked' advances the scheduler grid through one "
        "shared lane kernel)",
    )
    cmp_p.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (one scheduler run per cell; 1 = serial)",
    )
    cmp_p.add_argument(
        "--stack-lanes",
        type=int,
        default=None,
        metavar="N",
        help="lane cap per stacked dispatch unit (default 16; 1 disables "
        "lane stacking)",
    )
    cmp_p.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="also write the comparison as a schema-versioned JSON report",
    )
    _add_cache_flags(cmp_p)

    trace_p = sub.add_parser(
        "trace", help="run one workload and export its JSONL trace"
    )
    trace_p.add_argument("app", help=f"one of: {', '.join(profile_names())}")
    trace_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("run.jsonl"),
        help="trace output path (JSONL)",
    )
    trace_p.add_argument(
        "--scheduler",
        default="vprobe",
        choices=list(SCHEDULER_NAMES) + ["vprobe-h"],
    )
    trace_p.add_argument("--work-scale", type=float, default=0.15)
    trace_p.add_argument("--seed", type=int, default=0)
    trace_p.add_argument(
        "--interval", type=float, default=0.25, help="snapshot interval (s)"
    )
    trace_p.add_argument(
        "--engine",
        default="batched",
        choices=["batched", "vector", "reference", "stacked"],
        help="simulator engine (traces are byte-identical across all of "
        "them; a solo 'stacked' run is the batched engine)",
    )
    trace_p.add_argument(
        "--faults",
        choices=sorted(FAULT_PRESETS),
        default=None,
        metavar="PRESET",
        help="inject a named fault preset",
    )

    val_p = sub.add_parser(
        "validate", help="validate trace (.jsonl) / report (.json) files"
    )
    val_p.add_argument("files", nargs="+", type=pathlib.Path)

    audit_p = sub.add_parser(
        "audit",
        help="differential-fuzz the engines with runtime invariants on",
    )
    audit_p.add_argument(
        "--seeds", type=int, default=25, help="number of generated scenarios"
    )
    audit_p.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget in seconds; remaining seeds are skipped "
        "(and reported as skipped) once exceeded",
    )
    audit_p.add_argument(
        "--base-seed", type=int, default=0, help="first scenario seed"
    )
    audit_p.add_argument(
        "--engines",
        nargs="+",
        default=None,
        choices=["reference", "vector", "batched"],
        help="engines to diff (default: all three; first is the baseline)",
    )
    audit_p.add_argument(
        "--no-metamorphic",
        action="store_true",
        help="skip the metamorphic relations (differential only)",
    )
    audit_p.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures raw instead of shrinking them",
    )
    audit_p.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="OUT",
        help="write the repro.audit/v1 JSON report here",
    )
    audit_p.add_argument(
        "--write-repros",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="write each shrunken failure as a pytest file under DIR",
    )

    solo_p = sub.add_parser("solo", help="solo calibration run (Fig. 3)")
    solo_p.add_argument("app")
    solo_p.add_argument("--work-scale", type=float, default=0.05)

    rep_p = sub.add_parser("report", help="regenerate all tables/figures")
    rep_p.add_argument("outdir", nargs="?", default="results")
    rep_p.add_argument("--fast", action="store_true")
    rep_p.add_argument(
        "--jobs",
        type=int,
        default=None,
        help=(
            "worker processes for the comparison grids "
            "(default: one per usable core; 1 forces serial)"
        ),
    )
    rep_p.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="cells per worker submission (default: auto)",
    )
    rep_p.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay <outdir>/journal.jsonl from an interrupted run; "
            "recompute nothing that already finished"
        ),
    )
    rep_p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help=(
            "per-cell wall-clock deadline in seconds; overruns retry "
            "with backoff, then quarantine instead of failing the report"
        ),
    )
    rep_p.add_argument(
        "--deadline-strikes",
        type=int,
        default=3,
        metavar="N",
        help="attempts before an overrunning cell is quarantined (default 3)",
    )
    rep_p.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="PREFIX",
        help="run only jobs whose name starts with PREFIX (repeatable)",
    )
    rep_p.add_argument(
        "--stack-lanes",
        type=int,
        default=None,
        metavar="N",
        help="lane cap per stacked dispatch unit (default 16; 1 disables "
        "lane stacking)",
    )
    _add_cache_flags(rep_p)

    bench_p = sub.add_parser(
        "bench",
        help="run the committed benchmarks and rewrite BENCH_*.json",
    )
    bench_p.add_argument(
        "--suite",
        nargs="+",
        default=["engine", "grid", "stacked", "profiler", "audit"],
        choices=["engine", "grid", "stacked", "profiler", "audit"],
        help="which benchmark suites to run (default: all of them)",
    )

    cache_p = sub.add_parser(
        "cache", help="inspect or maintain a result-cache directory"
    )
    cache_p.add_argument(
        "action",
        choices=["stats", "prune", "clear"],
        help=(
            "stats: count entries; prune: delete stale/corrupt entries; "
            "clear: delete everything"
        ),
    )
    cache_p.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="cache directory (default: $REPRO_CACHE_DIR)",
    )

    ckpt_p = sub.add_parser(
        "checkpoint", help="inspect simulation checkpoint files"
    )
    ckpt_p.add_argument(
        "action",
        choices=["inspect"],
        help="inspect: validate header, version and payload digest",
    )
    ckpt_p.add_argument("files", nargs="+", type=pathlib.Path)

    return parser


def _add_cache_flags(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR if set)",
    )
    sub_parser.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore any cache directory, even $REPRO_CACHE_DIR",
    )


def _cmd_compare(args: argparse.Namespace) -> int:
    plan = fault_preset(args.faults) if args.faults else None
    cfg = ScenarioConfig(
        work_scale=args.work_scale,
        seed=args.seed,
        sample_period_s=args.sample_period,
        engine=args.engine,
        faults=None if plan is None or plan.is_null() else plan,
        label=f"compare {args.app}",
    )
    if args.app in NPB_PROFILES:
        builder = partial(npb_scenario, args.app)
    else:
        builder = partial(spec_scenario, args.app)
    from repro.cache.store import resolve_cache

    cache = resolve_cache(args.cache_dir, args.no_cache)
    if args.jobs > 1 or cache is not None or args.engine == "stacked":
        from repro.experiments.parallel import (
            DEFAULT_STACK_LANES,
            ParallelRunner,
        )

        runner = ParallelRunner(
            max(1, args.jobs),
            cache=cache,
            engine=args.engine,
            stack_lanes=(
                args.stack_lanes
                if args.stack_lanes is not None
                else DEFAULT_STACK_LANES
            ),
        )
        results = runner.compare(builder, cfg, args.schedulers)
        cache_hits, cache_misses = runner.cache_hits, runner.cache_misses
        retried = list(runner.retried_cells)
    else:
        results = compare(builder, cfg, args.schedulers)
        cache_hits = cache_misses = 0
        retried = []

    baseline = args.schedulers[0]
    base_time = results[baseline].domain("vm1").mean_finish_time_s
    rows = []
    for name, summary in results.items():
        vm1 = summary.domain("vm1")
        rows.append(
            (
                name,
                vm1.mean_finish_time_s,
                vm1.mean_finish_time_s / base_time,
                vm1.remote_ratio * 100.0,
                summary.machine_stats.cross_node_migrations,
                summary.machine_stats.overhead_fraction * 100.0,
            )
        )
    print(
        format_table(
            [
                "scheduler",
                "runtime (s)",
                f"vs {baseline}",
                "remote (%)",
                "cross-migr",
                "overhead (%)",
            ],
            rows,
        )
    )
    if plan is not None and not plan.is_null():
        counts = ", ".join(
            f"{name}: {s.fault_stats.total_events if s.fault_stats else 0}"
            for name, s in results.items()
        )
        print(f"\ninjected fault events ({args.faults}) — {counts}")
    if "vprobe" in results and baseline != "vprobe":
        print(
            f"\nvprobe improvement over {baseline}: "
            f"{improvement_pct(results['vprobe'].domain('vm1').mean_finish_time_s, base_time):.1f}%"
        )
    if cache is not None or retried:
        print(
            f"\ncache: {cache_hits} hits, {cache_misses} misses; "
            f"retried cells: {len(retried)}"
        )
    if args.json is not None:
        from repro.experiments.jsonreport import dump_report, report

        envelope = report(
            "compare",
            {
                "app": args.app,
                "baseline": baseline,
                "schedulers": list(args.schedulers),
                "work_scale": args.work_scale,
                "seed": args.seed,
                "sample_period_s": args.sample_period,
                "faults": args.faults,
                "cache": (
                    {"hits": cache_hits, "misses": cache_misses}
                    if cache is not None
                    else None
                ),
                "retried_cells": retried,
                "summaries": {
                    name: summary.to_dict() for name, summary in results.items()
                },
            },
        )
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(dump_report(envelope) + "\n")
        print(f"\nJSON report written to {args.json}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.scenarios import make_scheduler
    from repro.metrics.timeseries import trace_run
    from repro.obs.trace import write_trace

    plan = fault_preset(args.faults) if args.faults else None
    cfg = ScenarioConfig(
        work_scale=args.work_scale,
        seed=args.seed,
        log_events=True,
        engine=args.engine,
        faults=None if plan is None or plan.is_null() else plan,
        label=f"trace {args.app}",
    )
    if args.app in NPB_PROFILES:
        builder = partial(npb_scenario, args.app)
    else:
        builder = partial(spec_scenario, args.app)
    machine = builder(make_scheduler(args.scheduler), cfg)
    trace = trace_run(machine, interval_s=args.interval)
    lines = write_trace(machine, args.out, trace=trace, scenario=args.app)
    print(
        f"wrote {lines} trace lines to {args.out} "
        f"({len(machine.log)} events, {len(trace)} snapshots)"
    )
    if machine.profiler.enabled:
        print("\nscheduler phase profile (host wall-clock)")
        print(machine.profiler.format())
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs.schema import (
        AUDIT_SCHEMA,
        validate_audit_report,
        validate_report,
        validate_trace_file,
    )

    failures = 0
    for path in args.files:
        if path.suffix == ".jsonl":
            errors = validate_trace_file(path)
        else:
            try:
                obj = _json.loads(path.read_text())
            except (OSError, _json.JSONDecodeError) as exc:
                errors = [str(exc)]
            else:
                # Dispatch on the self-identifying schema field: audit
                # reports get the stricter audit schema, everything
                # else the report envelope.
                if isinstance(obj, dict) and obj.get("schema") == AUDIT_SCHEMA:
                    errors = validate_audit_report(obj)
                else:
                    errors = validate_report(obj)
        if errors:
            failures += 1
            print(f"{path}: INVALID")
            for err in errors:
                print(f"  {err}")
        else:
            print(f"{path}: ok")
    return 1 if failures else 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.audit import ENGINES, run_audit
    from repro.obs.schema import validate_audit_report

    engines = tuple(args.engines) if args.engines else ENGINES
    report = run_audit(
        seeds=args.seeds,
        budget_s=args.budget,
        base_seed=args.base_seed,
        engines=engines,
        metamorphic=not args.no_metamorphic,
        shrink_failures=not args.no_shrink,
        progress=print,
    )

    checked = len(report.results)
    rel_failed = sum(1 for _, m in report.metamorphic if not m.ok)
    print(
        f"\naudit: {checked}/{args.seeds} scenarios, "
        f"{len(report.failures)} differential failures, "
        f"{len(report.metamorphic)} metamorphic checks "
        f"({rel_failed} failed), {report.checks_run} invariant checks, "
        f"{report.elapsed_s:.1f}s"
    )
    if report.budget_exhausted:
        print(
            f"budget exhausted after {report.elapsed_s:.1f}s — "
            f"skipped seeds: {list(report.skipped_seeds)}"
        )
    for failure in report.failures:
        s = failure.shrunk
        print(
            f"\nFAIL seed {failure.original.scenario.seed} "
            f"[{s.kind} on {s.engine}]: {s.detail}"
        )
        print(f"  shrunken scenario: {s.scenario.to_dict()}")
    for seed, rel in report.metamorphic:
        if not rel.ok:
            print(f"\nFAIL seed {seed} [metamorphic {rel.relation}]: {rel.detail}")

    envelope = report.to_dict()
    errors = validate_audit_report(envelope)
    if errors:  # pragma: no cover - guards the report writer itself
        for err in errors:
            print(f"schema error: {err}")
        return 2
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(report.to_json() + "\n")
        print(f"\naudit report written to {args.out}")
    if args.write_repros is not None and report.failures:
        args.write_repros.mkdir(parents=True, exist_ok=True)
        header = (
            "# Auto-written by `repro audit --write-repros`.\n"
            "from repro.audit import FuzzScenario, run_differential\n\n\n"
        )
        for failure in report.failures:
            seed = failure.original.scenario.seed
            path = args.write_repros / f"test_fuzz_repro_seed_{seed}.py"
            path.write_text(header + failure.repro)
            print(f"repro written to {path}")
    return 0 if report.ok else 1


def _cmd_solo(args: argparse.Namespace) -> int:
    cfg = ScenarioConfig(work_scale=args.work_scale, seed=0)
    builder = partial(solo_scenario, args.app)
    summary = run_one(builder, "credit", cfg)
    stats = summary.domain("vm1")
    vtype = classify(stats.rpti, Bounds())
    print(
        format_table(
            ["application", "miss rate (%)", "RPTI", "class"],
            [(args.app, stats.llc_miss_rate * 100.0, stats.rpti, vtype.value)],
        )
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.cache.store import resolve_cache
    from repro.experiments.parallel import default_jobs
    from repro.experiments.report_all import regenerate_all
    from repro.recovery import (
        EXIT_RESUMABLE,
        DeadlinePolicy,
        GracefulShutdown,
        ShutdownRequested,
    )

    jobs = args.jobs if args.jobs is not None else default_jobs()
    cache = resolve_cache(args.cache_dir, args.no_cache)
    deadline = (
        DeadlinePolicy(deadline_s=args.deadline, max_strikes=args.deadline_strikes)
        if args.deadline is not None
        else None
    )
    shutdown = GracefulShutdown()
    try:
        with shutdown:
            regenerate_all(
                pathlib.Path(args.outdir),
                fast=args.fast,
                only=tuple(args.only) if args.only else None,
                jobs=max(1, jobs),
                cache=cache,
                chunksize=args.chunksize,
                resume=args.resume,
                deadline=deadline,
                shutdown=shutdown,
                stack_lanes=args.stack_lanes,
            )
    except ShutdownRequested as exc:
        print(
            f"\ninterrupted ({exc}); journal flushed — "
            f"relaunch with --resume to continue (exit {EXIT_RESUMABLE})"
        )
        return EXIT_RESUMABLE
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    """Re-run the committed benchmark suites through pytest.

    Each suite's measuring test rewrites its ``benchmarks/BENCH_*.json``
    record in place, so a successful run leaves the committed numbers
    refreshed: ``engine`` covers the reference/vector/batched per-epoch
    and cold-run comparison, ``grid`` the cache-aware report dispatch,
    ``stacked`` the lane-scaling curve of the stacked grid engine,
    ``profiler`` the always-on profiling overhead guard, ``audit`` the
    runtime-invariant and differential-fuzz overhead record.
    """
    import pytest as _pytest

    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    if not bench_dir.is_dir():
        print(
            "benchmarks/ not found next to src/ — `repro bench` needs a "
            "source checkout (the benchmark suite is not installed)"
        )
        return 2
    targets = [str(bench_dir / f"bench_{suite}.py") for suite in args.suite]
    code = _pytest.main(["-q", "--benchmark-disable", *targets])
    if code == 0:
        names = ", ".join(f"BENCH_{suite}.json" for suite in args.suite)
        print(f"rewrote {names} in {bench_dir}")
    return int(code)


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache.store import resolve_cache

    cache = resolve_cache(args.cache_dir, no_cache=False)
    if cache is None:
        print("no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR")
        return 2
    if args.action == "stats":
        print(f"{cache.root}: {cache.scan().format()}")
    elif args.action == "prune":
        stale, corrupt = cache.prune()
        print(f"{cache.root}: pruned {stale} stale, {corrupt} corrupt")
    else:  # clear
        removed = cache.clear()
        print(f"{cache.root}: removed {removed} entries")
    return 0


def _cmd_checkpoint(args: argparse.Namespace) -> int:
    """Validate checkpoint files; mirrors ``repro validate`` in spirit."""
    from repro.recovery.checkpoint import CheckpointError, inspect_checkpoint

    failures = 0
    for path in args.files:
        try:
            header = inspect_checkpoint(path, verify_payload=True)
        except (CheckpointError, OSError) as exc:
            failures += 1
            print(f"{path}: INVALID")
            print(f"  {exc}")
            continue
        print(
            f"{path}: ok — {header['policy']}/{header['engine']} "
            f"seed={header['seed']} epoch={header['epoch_index']} "
            f"t={header['sim_time_s']:.3f}s "
            f"({header['domains']} domains, {header['vcpus']} vcpus, "
            f"{header['payload_bytes']} payload bytes)"
        )
        print(f"  config_hash: {header['config_hash']}")
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "audit":
        return _cmd_audit(args)
    if args.command == "solo":
        return _cmd_solo(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "checkpoint":
        return _cmd_checkpoint(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
