"""Measurement and reporting.

Collectors aggregate a finished :class:`~repro.xen.simulator.Machine`
into per-domain statistics (the paper's metrics: execution time, total
and remote memory access counts, plus migration/overhead accounting);
the report module normalises across schedulers and renders tables.
"""

from repro.metrics.collectors import DomainStats, MachineStats, RunSummary, summarize
from repro.metrics.report import (
    format_table,
    improvement_pct,
    normalize_map,
    normalized,
)
from repro.metrics.timeseries import Snapshot, Trace, take_snapshot, trace_run

__all__ = [
    "DomainStats",
    "MachineStats",
    "RunSummary",
    "summarize",
    "normalized",
    "normalize_map",
    "improvement_pct",
    "format_table",
    "Snapshot",
    "Trace",
    "take_snapshot",
    "trace_run",
]
