"""Aggregate a finished simulation into the paper's metrics.

For each domain: mean execution time of its finite VCPUs (the paper's
"average runtime of applications in VM1"), instructions retired, LLC
references/misses, and the two headline counters of §V-A(3) — **total
memory accesses** (memory controller + LLC contention indicator) and
**remote memory accesses** (remote latency + interconnect contention
indicator).  Machine-wide: migrations, steals, context switches and
the per-source overhead budget behind Table III.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.faults.injector import FaultStats
from repro.obs.profiler import PhaseStat
from repro.xen.domain import Domain
from repro.xen.simulator import Machine

__all__ = ["DomainStats", "MachineStats", "RunSummary", "summarize"]


@dataclass(frozen=True, slots=True)
class DomainStats:
    """Per-domain aggregates at the end of a run."""

    name: str
    num_vcpus: int
    mean_finish_time_s: Optional[float]
    instructions: float
    llc_refs: float
    llc_misses: float
    local_accesses: float
    remote_accesses: float
    migrations: int
    cross_node_migrations: int

    @property
    def total_accesses(self) -> float:
        """Total DRAM accesses (the Fig. 4b/5b/6b/7b metric)."""
        return self.local_accesses + self.remote_accesses

    @property
    def remote_ratio(self) -> float:
        """Remote share of DRAM accesses (the Fig. 1 metric)."""
        total = self.total_accesses
        return self.remote_accesses / total if total > 0 else 0.0

    @property
    def llc_miss_rate(self) -> float:
        """Misses over references (the Fig. 3a metric)."""
        return self.llc_misses / self.llc_refs if self.llc_refs > 0 else 0.0

    @property
    def rpti(self) -> float:
        """LLC references per kilo-instruction (the Fig. 3b metric)."""
        if self.instructions <= 0:
            return 0.0
        return self.llc_refs / self.instructions * 1000.0

    def throughput_ops(self, instr_per_op: float) -> float:
        """Operations per second for request-driven services."""
        if self.mean_finish_time_s is None or self.mean_finish_time_s <= 0:
            return 0.0
        ops = self.instructions / instr_per_op
        return ops / self.mean_finish_time_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (derived metrics included)."""
        return {
            "name": self.name,
            "num_vcpus": self.num_vcpus,
            "mean_finish_time_s": self.mean_finish_time_s,
            "instructions": self.instructions,
            "llc_refs": self.llc_refs,
            "llc_misses": self.llc_misses,
            "local_accesses": self.local_accesses,
            "remote_accesses": self.remote_accesses,
            "migrations": self.migrations,
            "cross_node_migrations": self.cross_node_migrations,
            "total_accesses": self.total_accesses,
            "remote_ratio": self.remote_ratio,
            "llc_miss_rate": self.llc_miss_rate,
            "rpti": self.rpti,
        }


@dataclass(frozen=True, slots=True)
class MachineStats:
    """Machine-wide aggregates at the end of a run."""

    sim_time_s: float
    busy_time_s: float
    context_switches: int
    migrations: int
    cross_node_migrations: int
    steals_local: int
    steals_remote: int
    overhead_s: Dict[str, float] = field(default_factory=dict)

    @property
    def total_overhead_s(self) -> float:
        """Hypervisor overhead across all sources."""
        return sum(self.overhead_s.values())

    @property
    def overhead_fraction(self) -> float:
        """Overhead over busy time: the Table III "overhead time" %."""
        if self.busy_time_s <= 0:
            return 0.0
        return self.total_overhead_s / self.busy_time_s

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (derived overhead totals included)."""
        return {
            "sim_time_s": self.sim_time_s,
            "busy_time_s": self.busy_time_s,
            "context_switches": self.context_switches,
            "migrations": self.migrations,
            "cross_node_migrations": self.cross_node_migrations,
            "steals_local": self.steals_local,
            "steals_remote": self.steals_remote,
            "overhead_s": dict(self.overhead_s),
            "total_overhead_s": self.total_overhead_s,
            "overhead_fraction": self.overhead_fraction,
        }


@dataclass(frozen=True, slots=True)
class RunSummary:
    """Everything an experiment needs from one run.

    ``fault_stats`` is None for fault-free runs and a
    :class:`~repro.faults.injector.FaultStats` snapshot when the run
    carried a fault plan, so experiments can report injected fault
    pressure next to the metrics it perturbed.

    ``phase_profile`` carries the run's host wall-clock per scheduler
    phase (:mod:`repro.obs.profiler`); it is excluded from equality
    (``compare=False``) because wall-clock differs between otherwise
    bitwise-identical runs — the engine-parity and serial/parallel
    equality contracts compare simulated results only.

    ``horizon_stats`` carries the batched engine's horizon-length
    distribution and fusion counters
    (:meth:`~repro.xen.engine.BatchedEngine.horizon_stats`); it is None
    on the reference and vector engines and therefore also excluded
    from equality — it describes how the run was *executed*, not what
    it computed.
    """

    policy: str
    machine_stats: MachineStats
    domains: Dict[str, DomainStats]
    fault_stats: Optional[FaultStats] = None
    phase_profile: Optional[Dict[str, PhaseStat]] = field(default=None, compare=False)
    horizon_stats: Optional[Dict[str, Any]] = field(default=None, compare=False)

    def domain(self, name: str) -> DomainStats:
        """Stats for one domain, by name."""
        return self.domains[name]

    def to_dict(self, include_profile: bool = True) -> Dict[str, Any]:
        """JSON-serializable form.

        ``include_profile=False`` omits the execution-side extras — the
        wall-clock phase profile and the batched engine's horizon
        statistics — required wherever output must be identical across
        engines and hosts (the JSONL trace writer uses it).
        """
        out: Dict[str, Any] = {
            "policy": self.policy,
            "machine_stats": self.machine_stats.to_dict(),
            "domains": {name: d.to_dict() for name, d in self.domains.items()},
            "fault_stats": (
                self.fault_stats.to_dict() if self.fault_stats is not None else None
            ),
        }
        if include_profile:
            out["phase_profile"] = (
                {p: s.to_dict() for p, s in self.phase_profile.items()}
                if self.phase_profile is not None
                else None
            )
            out["horizon_stats"] = self.horizon_stats
        return out


def collect_domain(machine: Machine, domain: Domain) -> DomainStats:
    """Aggregate one domain's VCPU counters."""
    instructions = llc_refs = llc_misses = 0.0
    local = remote = 0.0
    migrations = cross = 0
    for vcpu in domain.vcpus:
        totals = machine.pmu.totals(vcpu.key)
        instructions += totals.instructions
        llc_refs += totals.llc_refs
        llc_misses += totals.llc_misses
        local += totals.local_accesses
        remote += totals.remote_accesses
        migrations += vcpu.migrations
        cross += vcpu.cross_node_migrations
    return DomainStats(
        name=domain.name,
        num_vcpus=domain.num_vcpus,
        mean_finish_time_s=domain.mean_finish_time(),
        instructions=instructions,
        llc_refs=llc_refs,
        llc_misses=llc_misses,
        local_accesses=local,
        remote_accesses=remote,
        migrations=migrations,
        cross_node_migrations=cross,
    )


def summarize(machine: Machine) -> RunSummary:
    """Collect the full summary of a finished run."""
    return RunSummary(
        policy=machine.policy.name,
        machine_stats=MachineStats(
            sim_time_s=machine.time,
            busy_time_s=machine.busy_time_s,
            context_switches=machine.context_switches,
            migrations=machine.migrations,
            cross_node_migrations=machine.cross_node_migrations,
            steals_local=machine.steals_local,
            steals_remote=machine.steals_remote,
            overhead_s=dict(machine.overhead_s),
        ),
        domains={d.name: collect_domain(machine, d) for d in machine.domains},
        fault_stats=machine.faults.stats() if machine.faults is not None else None,
        phase_profile=machine.profiler.snapshot() if machine.profiler.enabled else None,
        horizon_stats=_horizon_stats(machine),
    )


def _horizon_stats(machine: Machine) -> Optional[Dict[str, Any]]:
    """The batched engine's horizon histogram; None on other engines."""
    stats = getattr(machine._engine, "horizon_stats", None)
    return stats() if stats is not None else None
