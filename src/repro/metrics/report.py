"""Normalisation and table rendering for experiment reports.

The paper reports most results *normalised to the Credit scheduler*
(execution time, total and remote memory accesses); these helpers keep
that arithmetic in one audited place and render fixed-width ASCII
tables for the benchmark harness output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Sequence

from repro.util.validation import check_positive

__all__ = ["normalized", "normalize_map", "improvement_pct", "format_table"]


def normalized(value: float, baseline: float) -> float:
    """``value / baseline`` with a positive-baseline check."""
    check_positive(baseline, "baseline")
    if value < 0:
        raise ValueError(f"value must be >= 0, got {value}")
    return value / baseline


def normalize_map(
    values: Mapping[str, float], baseline_key: str = "credit"
) -> Dict[str, float]:
    """Normalise every entry to the baseline entry.

    Parameters
    ----------
    values:
        Metric per scheduler name.
    baseline_key:
        Which entry is the denominator (the paper uses Credit).
    """
    if baseline_key not in values:
        raise KeyError(
            f"baseline {baseline_key!r} missing; have {sorted(values)}"
        )
    base = values[baseline_key]
    return {k: normalized(v, base) for k, v in values.items()}


def improvement_pct(candidate: float, reference: float) -> float:
    """The paper's "X% improvement" for a lower-is-better metric.

    ``improvement_pct(0.548, 1.0) == 45.2`` — i.e. vProbe's normalised
    execution time of 0.548 vs Credit's 1.0 is reported as "45.2%
    performance improvement compared with the Credit scheduler".
    """
    check_positive(reference, "reference")
    if candidate < 0:
        raise ValueError(f"candidate must be >= 0, got {candidate}")
    return (1.0 - candidate / reference) * 100.0


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_fmt: str = "{:.3f}",
) -> str:
    """Render a fixed-width ASCII table.

    Floats are formatted with ``float_fmt``; everything else with
    ``str``.  Columns are sized to their widest cell.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for i, text in enumerate(row):
            widths[i] = max(widths[i], len(text))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(text.ljust(widths[i]) for i, text in enumerate(cells)).rstrip()

    sep = "  ".join("-" * w for w in widths)
    out = [line(list(headers)), sep]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
