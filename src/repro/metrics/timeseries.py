"""Time-series instrumentation: watch a run evolve window by window.

End-of-run aggregates (``collectors``) answer *who won*; traces answer
*why*: the remote-access ratio of each window shows Credit drifting and
vProbe snapping back at every sampling period, and the per-node count
of memory-intensive VCPUs makes the partitioner's balancing visible.

Usage::

    machine = spec_scenario("soplex", vprobe(), cfg)
    trace = trace_run(machine, interval_s=0.25)
    for snap in trace.snapshots:
        print(snap.time_s, snap.window_remote_ratio("vm1"))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.xen.simulator import Machine
from repro.xen.vcpu import VcpuState
from repro.util.validation import check_positive

__all__ = ["Snapshot", "Trace", "trace_run"]


@dataclass(frozen=True, slots=True)
class Snapshot:
    """Machine state at one trace point.

    Cumulative counter values are stored; window quantities are
    computed against the previous snapshot by :class:`Trace`.
    """

    time_s: float
    #: cumulative (local, remote) DRAM accesses per domain
    accesses: Dict[str, Tuple[float, float]]
    #: cumulative instructions per domain
    instructions: Dict[str, float]
    #: memory-intensive runnable VCPUs currently per node
    intensive_per_node: Tuple[int, ...]
    #: cumulative machine-wide migrations (total, cross-node)
    migrations: Tuple[int, int]
    #: cumulative hypervisor overhead seconds
    overhead_s: float


@dataclass(slots=True)
class Trace:
    """A sequence of snapshots plus window-delta helpers."""

    snapshots: List[Snapshot] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.snapshots)

    def window_remote_ratio(self, domain: str) -> List[Optional[float]]:
        """Remote share of each window's accesses for ``domain``.

        Windows with no DRAM traffic report ``None``: an idle window is
        *unknown* locality, not perfect locality, and folding it to 0.0
        would bias Fig-1-style drift curves toward zero over idle tails.
        Callers that need plain floats filter: ``[r for r in ratios if
        r is not None]``.
        """
        out: List[Optional[float]] = []
        prev: Optional[Snapshot] = None
        for snap in self.snapshots:
            if prev is None:
                prev = snap
                continue
            l0, r0 = prev.accesses.get(domain, (0.0, 0.0))
            l1, r1 = snap.accesses.get(domain, (0.0, 0.0))
            local, remote = l1 - l0, r1 - r0
            total = local + remote
            out.append(remote / total if total > 0 else None)
            prev = snap
        return out

    def window_migration_rate(self) -> List[Optional[float]]:
        """Cross-node migrations per second in each window.

        Zero-length windows (two snapshots at the same instant, e.g. a
        run that completed exactly on a snapshot boundary) report
        ``None``: a rate over no elapsed time is *unknown*, not zero —
        the same sentinel convention as :meth:`window_remote_ratio`,
        and the same "unknown ≠ zero" bias fix.  Callers needing plain
        floats filter: ``[r for r in rates if r is not None]``.
        """
        out: List[Optional[float]] = []
        prev: Optional[Snapshot] = None
        for snap in self.snapshots:
            if prev is None:
                prev = snap
                continue
            dt = snap.time_s - prev.time_s
            delta = snap.migrations[1] - prev.migrations[1]
            out.append(delta / dt if dt > 0 else None)
            prev = snap
        return out

    def node_imbalance(self) -> List[int]:
        """Spread (max - min) of memory-intensive VCPUs across nodes.

        The t=0 pre-run snapshot is excluded: before the first epoch no
        VCPU has been placed by the scheduler under study, so its spread
        reflects construction order, not scheduling behaviour.
        """
        return [
            max(s.intensive_per_node) - min(s.intensive_per_node)
            for s in self.snapshots[1:]
            if s.intensive_per_node
        ]

    def times(self) -> List[float]:
        """Snapshot timestamps."""
        return [s.time_s for s in self.snapshots]


def take_snapshot(machine: Machine) -> Snapshot:
    """Capture the current machine state."""
    accesses: Dict[str, Tuple[float, float]] = {}
    instructions: Dict[str, float] = {}
    for domain in machine.domains:
        local = remote = instr = 0.0
        for vcpu in domain.vcpus:
            totals = machine.pmu.totals(vcpu.key)
            local += totals.local_accesses
            remote += totals.remote_accesses
            instr += totals.instructions
        accesses[domain.name] = (local, remote)
        instructions[domain.name] = instr

    per_node = [0] * machine.topology.num_nodes
    for vcpu in machine.vcpus:
        if (
            vcpu.state in (VcpuState.RUNNABLE, VcpuState.RUNNING)
            and vcpu.vcpu_type.memory_intensive
            and vcpu.pcpu is not None
        ):
            per_node[machine.topology.node_of_pcpu(vcpu.pcpu)] += 1

    return Snapshot(
        time_s=machine.time,
        accesses=accesses,
        instructions=instructions,
        intensive_per_node=tuple(per_node),
        migrations=(machine.migrations, machine.cross_node_migrations),
        overhead_s=machine.total_overhead_s,
    )


def trace_run(
    machine: Machine,
    interval_s: float = 0.25,
    max_time_s: Optional[float] = None,
) -> Trace:
    """Run ``machine`` to completion, snapshotting every ``interval_s``.

    Returns the trace including a snapshot at t=0 and at the end.
    """
    check_positive(interval_s, "interval_s")
    limit = max_time_s if max_time_s is not None else machine.config.max_time_s
    trace = Trace()
    trace.snapshots.append(take_snapshot(machine))
    next_stop = interval_s
    while machine.time < limit - 1e-12:
        result = machine.run(max_time_s=min(next_stop, limit))
        trace.snapshots.append(take_snapshot(machine))
        if result.completed:
            break
        next_stop += interval_s
    return trace
