"""Generalisation tests: every mechanism beyond two sockets.

The paper's host has two nodes, but nothing in vProbe's design is
two-node specific; these tests run the full stack on a synthetic
four-node machine and check the same invariants.
"""

import pytest

from repro.core.partition import periodical_partition
from repro.core.vprobe import vprobe
from repro.hardware.topology import symmetric_topology
from repro.metrics.collectors import summarize
from repro.workloads.generators import synthetic_profile
from repro.xen.credit import CreditScheduler
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3


def four_node_machine(policy, num_vcpus=16, seed=0, profile=None):
    topo = symmetric_topology(4, 2)
    machine = Machine(
        topo, policy, SimConfig(seed=seed, sample_period_s=0.25, max_time_s=20.0)
    )
    prof = profile or synthetic_profile("llc-t", total_instructions=5e8)
    machine.add_domain(
        Domain.homogeneous("vm", 4 * GIB, place_split(num_vcpus, 4), prof, num_vcpus)
    )
    return machine


class TestFourNodePartitioning:
    def test_even_spread_over_four_nodes(self):
        machine = four_node_machine(vprobe())
        machine.run(max_time_s=0.3)
        for vcpu in machine.vcpus:
            vcpu.node_affinity = vcpu.index % 4
        decisions = periodical_partition(machine, now=0.3)
        counts = [0, 0, 0, 0]
        for d in decisions:
            counts[d.node] += 1
        assert max(counts) - min(counts) <= 1

    def test_balanced_affinities_all_local(self):
        machine = four_node_machine(vprobe())
        machine.run(max_time_s=0.3)
        for vcpu in machine.vcpus:
            vcpu.node_affinity = vcpu.index % 4
        decisions = periodical_partition(machine, now=0.3)
        assert all(d.local for d in decisions)


class TestFourNodeEndToEnd:
    def test_vprobe_completes_and_improves_locality(self):
        credit = four_node_machine(CreditScheduler(), seed=3)
        smart = four_node_machine(vprobe(), seed=3)
        credit.run()
        smart.run()
        credit_stats = summarize(credit).domain("vm")
        smart_stats = summarize(smart).domain("vm")
        assert smart_stats.mean_finish_time_s is not None
        assert smart_stats.remote_ratio < credit_stats.remote_ratio

    def test_instruction_conservation_on_four_nodes(self):
        machine = four_node_machine(vprobe(), seed=5)
        machine.run()
        stats = summarize(machine).domain("vm")
        assert stats.instructions == pytest.approx(16 * 5e8)

    def test_work_spreads_over_all_nodes(self):
        machine = four_node_machine(vprobe(), seed=1)
        machine.run(max_time_s=1.0)
        busy_per_node = [0.0] * 4
        for pcpu in machine.pcpus:
            busy_per_node[pcpu.node] += pcpu.busy_time_s
        assert all(b > 0 for b in busy_per_node)
