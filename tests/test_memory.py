"""Tests for repro.hardware.memory: latency composition and queueing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.memory import (
    BYTES_PER_MISS,
    LatencySpec,
    MemorySystem,
    queue_inflation,
)
from repro.hardware.topology import xeon_e5620


@pytest.fixture
def memsys():
    return MemorySystem(xeon_e5620())


class TestQueueInflation:
    def test_zero_load_no_inflation(self):
        assert queue_inflation(0.0) == pytest.approx(1.0)

    def test_monotone_in_utilisation(self):
        values = [queue_inflation(u) for u in (0.0, 0.3, 0.6, 0.8)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_caps_at_saturation(self):
        assert queue_inflation(1.0) == 8.0
        assert queue_inflation(5.0) == 8.0

    def test_custom_cap(self):
        assert queue_inflation(1.0, cap=4.0) == 4.0

    @given(st.floats(min_value=0, max_value=10))
    def test_bounded(self, u):
        assert 1.0 <= queue_inflation(u) <= 8.0


class TestLatencySpec:
    def test_remote_is_local_plus_extra(self):
        spec = LatencySpec(local_dram_ns=70, remote_extra_ns=50)
        assert spec.remote_dram_ns() == pytest.approx(120)

    def test_rejects_non_positive_local(self):
        with pytest.raises(ValueError):
            LatencySpec(local_dram_ns=0)


class TestMemorySystemSolve:
    def test_local_access_cheaper_than_remote(self, memsys):
        local = memsys.solve(
            {1: 1e9}, {1: 0}, {1: np.array([1.0, 0.0])}
        ).miss_penalty_ns[1]
        remote = memsys.solve(
            {1: 1e9}, {1: 0}, {1: np.array([0.0, 1.0])}
        ).miss_penalty_ns[1]
        assert remote > local

    def test_local_fraction_reported(self, memsys):
        costs = memsys.solve({1: 1e9}, {1: 0}, {1: np.array([0.7, 0.3])})
        assert costs.local_fraction[1] == pytest.approx(0.7)

    def test_imc_utilisation_accumulates_by_target_node(self, memsys):
        costs = memsys.solve(
            {1: 2e9, 2: 2e9},
            {1: 0, 2: 1},
            {1: np.array([1.0, 0.0]), 2: np.array([1.0, 0.0])},
        )
        assert costs.imc_utilisation[0] > 0
        assert costs.imc_utilisation[1] == 0

    def test_qpi_counts_only_cross_node_flows(self, memsys):
        all_local = memsys.solve({1: 2e9}, {1: 0}, {1: np.array([1.0, 0.0])})
        assert all_local.qpi_utilisation == 0
        all_remote = memsys.solve({1: 2e9}, {1: 0}, {1: np.array([0.0, 1.0])})
        assert all_remote.qpi_utilisation == pytest.approx(2e9 / 4.0e9)

    def test_qpi_contention_inflates_remote_penalty(self, memsys):
        light = memsys.solve({1: 0.1e9}, {1: 0}, {1: np.array([0.0, 1.0])})
        heavy = memsys.solve({1: 3.9e9}, {1: 0}, {1: np.array([0.0, 1.0])})
        assert heavy.miss_penalty_ns[1] > light.miss_penalty_ns[1]

    def test_imc_contention_inflates_even_local(self, memsys):
        light = memsys.solve({1: 0.1e9}, {1: 0}, {1: np.array([1.0, 0.0])})
        heavy = memsys.solve({1: 12.0e9}, {1: 0}, {1: np.array([1.0, 0.0])})
        assert heavy.miss_penalty_ns[1] > light.miss_penalty_ns[1]

    def test_mix_length_mismatch_rejected(self, memsys):
        with pytest.raises(ValueError):
            memsys.solve({1: 1e9}, {1: 0}, {1: np.array([1.0])})

    def test_negative_traffic_rejected(self, memsys):
        with pytest.raises(ValueError):
            memsys.solve({1: -1.0}, {1: 0}, {1: np.array([1.0, 0.0])})

    def test_traffic_for_includes_prefetch_overhead(self, memsys):
        traffic = memsys.traffic_for(refs_per_s=1e6, miss_rate=0.5)
        assert traffic == pytest.approx(1e6 * 0.5 * BYTES_PER_MISS)

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=1e6, max_value=5e9),
    )
    def test_penalty_between_local_and_contended_remote(self, remote_frac, traffic):
        memsys = MemorySystem(xeon_e5620())
        mix = np.array([1.0 - remote_frac, remote_frac])
        costs = memsys.solve({1: traffic}, {1: 0}, {1: mix})
        lat = memsys.latency
        lower = lat.local_dram_ns
        upper = (lat.local_dram_ns + lat.remote_extra_ns) * 8.0
        assert lower - 1e-9 <= costs.miss_penalty_ns[1] <= upper + 1e-9
