"""Tests for repro.core.vprobe: the assembled scheduler and variants."""

import pytest

from repro.core.classify import Bounds
from repro.core.vprobe import (
    VProbeParams,
    VProbeScheduler,
    load_balance_only,
    vcpu_partition_only,
    vprobe,
)
from repro.hardware.topology import xeon_e5620
from repro.workloads.generators import synthetic_profile
from repro.xen.domain import Domain
from repro.xen.memalloc import place_split
from repro.xen.simulator import Machine, SimConfig

GIB = 1024**3


def build(policy, num_vcpus=8, seed=0, sample_period=0.2, profile=None):
    machine = Machine(
        xeon_e5620(),
        policy,
        SimConfig(seed=seed, sample_period_s=sample_period, max_time_s=10.0),
    )
    prof = profile or synthetic_profile("llc-t", total_instructions=None)
    machine.add_domain(
        Domain.homogeneous("vm", 1 * GIB, place_split(num_vcpus, 2), prof, num_vcpus)
    )
    return machine


class TestVariantFactories:
    def test_names(self):
        assert vprobe().name == "vprobe"
        assert vcpu_partition_only().name == "vcpu-p"
        assert load_balance_only().name == "lb"

    def test_variant_flags(self):
        assert vcpu_partition_only().vparams.enable_numa_lb is False
        assert load_balance_only().vparams.enable_partition is False

    def test_all_collect_pmu(self):
        for policy in (vprobe(), vcpu_partition_only(), load_balance_only()):
            assert policy.collects_pmu

    def test_custom_bounds_propagate(self):
        policy = vprobe(bounds=Bounds(low=5.0, high=30.0))
        assert policy.analyzer.bounds.low == 5.0


class TestSamplePeriod:
    def test_partitioning_assigns_memory_intensive_vcpus(self):
        machine = build(vprobe())
        machine.run(max_time_s=0.5)  # two+ sampling periods
        assigned = [v for v in machine.vcpus if v.assigned_node is not None]
        assert len(assigned) == 8  # llc-t profile: everyone is intensive

    def test_partition_balances_nodes(self):
        machine = build(vprobe())
        machine.run(max_time_s=0.5)
        nodes = [v.assigned_node for v in machine.vcpus]
        assert abs(nodes.count(0) - nodes.count(1)) <= 1

    def test_lb_variant_never_partitions(self):
        machine = build(load_balance_only())
        machine.run(max_time_s=0.5)
        assert all(v.assigned_node is None for v in machine.vcpus)
        # But the analyzer still ran: pressures are known.
        assert any(v.llc_pressure > 0 for v in machine.vcpus)

    def test_partition_charges_overhead(self):
        machine = build(vprobe())
        machine.run(max_time_s=0.5)
        assert machine.overhead_s.get("partition", 0.0) > 0
        assert machine.overhead_s.get("pmu", 0.0) > 0

    def test_friendly_workload_not_partitioned(self):
        machine = build(
            vprobe(), profile=synthetic_profile("llc-fr", total_instructions=None)
        )
        machine.run(max_time_s=0.5)
        assert all(v.assigned_node is None for v in machine.vcpus)


class TestWakePlacement:
    def test_wake_stays_on_assigned_node(self):
        machine = build(vprobe())
        machine.run(max_time_s=0.3)
        policy = machine.policy
        vcpu = next(v for v in machine.vcpus if v.assigned_node is not None)
        target = policy.on_vcpu_wake(vcpu, machine.time)
        assert machine.topology.node_of_pcpu(target) == vcpu.assigned_node

    def test_wake_stays_on_current_node_without_assignment(self):
        machine = build(load_balance_only())
        machine.run(max_time_s=0.1)
        policy = machine.policy
        vcpu = machine.vcpus[0]
        node = machine.topology.node_of_pcpu(vcpu.pcpu)
        target = policy.on_vcpu_wake(vcpu, machine.time)
        assert machine.topology.node_of_pcpu(target) == node

    def test_vcpu_p_wakes_numa_blind(self):
        """Without the NUMA-aware LB, wake placement is inherited Credit."""
        machine = build(vcpu_partition_only(), num_vcpus=2)
        policy = machine.policy
        vcpu = machine.vcpus[0]
        vcpu.pcpu = 0
        machine.pcpus[0].queue.requeue_all()
        machine.pcpus[0].current = machine.vcpus[1]  # home is loaded
        target = policy.on_vcpu_wake(vcpu, 0.0)
        assert target != 0  # moved to any lighter PCPU, node-blind


class TestDynamicBoundsIntegration:
    def test_dynamic_bounds_update_over_periods(self):
        policy = VProbeScheduler(vparams=VProbeParams(dynamic_bounds=True))
        machine = build(policy)
        initial = policy.analyzer.bounds
        machine.run(max_time_s=0.5)
        assert policy.analyzer.bounds != initial

    def test_static_bounds_never_move(self):
        policy = vprobe()
        machine = build(policy)
        machine.run(max_time_s=0.5)
        assert policy.analyzer.bounds == Bounds()
